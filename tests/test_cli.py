"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fourier"])

    def test_price_requires_spot_strike(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["price", "--spot", "100"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "DSP (18-bit)" in out

    def test_ablation(self, capsys):
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "14" in out and "result only" in out

    def test_saturation(self, capsys):
        assert main(["saturation"]) == 0
        assert "IV.B FPGA" in capsys.readouterr().out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        assert "10 W" in capsys.readouterr().out

    def test_portability(self, capsys):
        assert main(["portability"]) == 0
        out = capsys.readouterr().out
        assert "Mali" in out and "C6678" in out

    def test_clsource_iv_b(self, capsys):
        assert main(["clsource", "iv_b", "--steps", "64"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void binomial_tree_iv_b" in out
        assert "#define N_STEPS 64" in out

    def test_clsource_iv_a_single(self, capsys):
        assert main(["clsource", "iv_a", "--precision", "sp"]) == 0
        out = capsys.readouterr().out
        assert "binomial_node_iv_a" in out
        assert "float" in out

    def test_price(self, capsys):
        code = main(["price", "--spot", "100", "--strike", "95",
                     "--type", "call", "--steps", "128",
                     "--platform", "cpu"])
        assert code == 0
        out = capsys.readouterr().out
        assert "price" in out and "reference" in out

    def test_price_fpga_shows_pow_error(self, capsys):
        main(["price", "--spot", "100", "--strike", "100",
              "--type", "put", "--steps", "128"])
        out = capsys.readouterr().out
        assert "altera-13.0-double" in out

    def test_bench_engine(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        code = main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", str(out_path)])
        assert code == 0
        assert "options/s" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-engine-bench/v1"

    def test_bench_greeks(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "greeks.json"
        code = main(["bench-greeks", "--options", "8", "--steps", "16",
                     "--workers", "1", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "options/s" in out and "bump passes" in out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-greeks-bench/v1"
        run = document["results"][0]["runs"][0]
        assert run["bump_passes"] == 4
        assert run["greeks_options"] == 8

    def test_bench_greeks_regression_gate(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(["bench-greeks", "--options", "8", "--steps", "16",
                     "--workers", "1", "--out", str(baseline)]) == 0
        capsys.readouterr()

        document = json.loads(baseline.read_text())
        document["results"][0]["runs"][0]["options_per_second"] *= 100.0
        baseline.write_text(json.dumps(document))
        code = main(["bench-greeks", "--options", "8", "--steps", "16",
                     "--workers", "1", "--out", str(tmp_path / "g2.json"),
                     "--check-against", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_engine_trace_and_metrics_artifacts(self, capsys,
                                                      tmp_path):
        import json

        from repro.obs.export import chunk_span_seconds
        from repro.obs.metrics import parse_prometheus
        from repro.obs.trace import max_depth

        from repro.obs.metrics import MetricsRegistry, set_registry

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        # hermetic process-wide registry: earlier tests (fault
        # injection) legitimately publish retries into the global one
        previous = set_registry(MetricsRegistry())
        try:
            code = main(["bench-engine", "--options", "12", "--steps", "16",
                         "--workers", "1", "--out", str(tmp_path / "b.json"),
                         "--trace-out", str(trace_path),
                         "--metrics-out", str(metrics_path)])
        finally:
            set_registry(previous)
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out

        document = json.loads(trace_path.read_text())
        assert document["schema"] == "repro-trace/v1"
        root = document["spans"][0]
        assert root["name"] == "engine.run"
        assert max_depth(root) >= 4
        # serial run: chunk spans tile the run span's wall clock
        assert chunk_span_seconds(root) <= root["duration_ns"] * 1e-9

        samples = parse_prometheus(metrics_path.read_text())
        assert samples["repro_engine_retries_total"] == 0
        assert samples["repro_engine_quarantined_options_total"] == 0
        assert samples["repro_engine_options_priced_total"] >= 12

    def test_obs_session(self, capsys, tmp_path):
        import json

        from repro.obs.metrics import parse_prometheus
        from repro.obs.trace import max_depth

        trace_path = tmp_path / "obs.json"
        metrics_path = tmp_path / "obs.prom"
        code = main(["obs", "--options", "6", "--steps", "16",
                     "--chunk", "3", "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run:obs.device-session" in out
        assert "queue-command" in out
        assert "timeline:" in out
        assert "repro_queue_commands_total" in out

        root = json.loads(trace_path.read_text())["spans"][0]
        assert max_depth(root) == 5  # run/group/chunk/attempt/command
        samples = parse_prometheus(metrics_path.read_text())
        assert any(name.startswith("repro_link_pcie_bytes_total")
                   for name in samples)

    def test_obs_rejects_bad_counts(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--options", "not-a-number"])

    def test_bench_engine_regression_gate(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", str(baseline)]) == 0
        capsys.readouterr()

        # an impossibly fast stored baseline must trip the gate
        document = json.loads(baseline.read_text())
        document["results"][0]["runs"][0]["options_per_second"] *= 100.0
        baseline.write_text(json.dumps(document))
        code = main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", str(tmp_path / "b2.json"),
                     "--check-against", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_serve_bench(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "service.json"
        code = main(["serve-bench", "--options", "32", "--steps", "16",
                     "--clients", "8", "--fault-seed", "101",
                     "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "coalesced" in out and "cache" in out
        assert "fault seed 101" in out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-service-bench/v2"
        assert document["stats_schema"] == "repro-service-stats/v5"
        entry = document["results"][0]
        assert entry["parity"]["bit_identical_to_direct"] is True
        assert entry["overload"]["loss_threshold"] == 0.01
        assert entry["overload"]["levels"]
        run = entry["runs"][0]
        assert run["cache_speedup"] > 1.0
        assert run["latency"]["p99_ms"] >= run["latency"]["p50_ms"] > 0.0
        assert run["service"]["requests"] == 32 + 2  # batch cold + hit

    def test_serve_bench_regression_gate(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(["serve-bench", "--options", "32", "--steps", "16",
                     "--clients", "8", "--out", str(baseline)]) == 0
        capsys.readouterr()

        document = json.loads(baseline.read_text())
        document["results"][0]["runs"][0]["options_per_second"] *= 100.0
        baseline.write_text(json.dumps(document))
        code = main(["serve-bench", "--options", "32", "--steps", "16",
                     "--clients", "8", "--out", str(tmp_path / "s2.json"),
                     "--check-against", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_serve_bench_trace_artifact(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "service-trace.json"
        code = main(["serve-bench", "--options", "16", "--steps", "16",
                     "--clients", "4", "--out", str(tmp_path / "s.json"),
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert "trace" in capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        assert document["schema"] == "repro-trace/v1"
        names = {span["name"] for span in document["spans"]}
        assert "service.enqueue" in names
        assert any(name.startswith("service.flush[") for name in names)

    def test_stream_bench(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "stream.json"
        code = main(["stream-bench", "--instruments", "6",
                     "--tick-steps", "8", "--steps", "16",
                     "--fault-seeds", "101", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tick-to-risk" in out
        assert "parity: bitwise vs oracle" in out
        assert "revaluations/s" in out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-stream-bench/v1"
        assert document["stats_schema"] == "repro-stream-stats/v7"
        entry = document["results"][0]
        assert entry["parity"]["bitwise"] is True
        assert entry["parity"]["replay"] is True
        assert entry["parity"]["fault_seeds"] == [101]
        run = entry["runs"][0]
        assert run["options_per_second"] > 0.0
        assert run["latency"]["p999_ms"] >= run["latency"]["p99_ms"] \
            >= run["latency"]["p50_ms"] > 0.0
        assert run["stream"]["schema"] == "repro-stream-stats/v7"
        assert entry["tolerance"]["suppressed_ticks"] >= 0

    def test_stream_bench_regression_gate(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(["stream-bench", "--instruments", "6",
                     "--tick-steps", "8", "--steps", "16",
                     "--fault-seeds", "--out", str(baseline)]) == 0
        capsys.readouterr()

        document = json.loads(baseline.read_text())
        document["results"][0]["runs"][0]["options_per_second"] *= 100.0
        baseline.write_text(json.dumps(document))
        code = main(["stream-bench", "--instruments", "6",
                     "--tick-steps", "8", "--steps", "16",
                     "--fault-seeds", "--out", str(tmp_path / "s2.json"),
                     "--check-against", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestSweepCommand:
    SPEC = {
        "schema": "repro-sweep-spec/v1",
        "name": "cli-tiny",
        "axes": {"steps": [8, 16]},
        "base": {"n_options": 4, "kernel": "iv_b", "reference_steps": 32},
    }

    def write_spec(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def test_run_and_noop_rerun(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "run.jsonl"
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "2 done" in out
        assert "grid complete; store fingerprint" in out
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(store)]) == 0
        assert "executed 0" in capsys.readouterr().out

    def test_limit_then_resume_matches_one_shot(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        killed, one_shot = tmp_path / "killed.jsonl", tmp_path / "one.jsonl"
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(killed), "--limit", "1"]) == 0
        assert "resume with: repro sweep resume" in capsys.readouterr().out
        assert main(["sweep", "resume", "--spec", str(spec),
                     "--store", str(killed)]) == 0
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(one_shot)]) == 0
        capsys.readouterr()

        fingerprints = []
        for store in (killed, one_shot):
            assert main(["sweep", "status", "--store", str(store),
                         "--fingerprint"]) == 0
            fingerprints.append(capsys.readouterr().out.strip())
        assert fingerprints[0] == fingerprints[1]

    def test_builtin_spec_by_name(self, capsys, tmp_path):
        store = tmp_path / "run.jsonl"
        assert main(["sweep", "run", "--spec", "steps-precision-quick",
                     "--store", str(store), "--limit", "1"]) == 0
        assert "already committed" in capsys.readouterr().out

    def test_status_counts(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "run.jsonl"
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(store), "--limit", "1"]) == 0
        capsys.readouterr()
        assert main(["sweep", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "done     1" in out
        assert "pending  1" in out
        assert "fingerprint" in out

    def test_report_is_a_pure_read(self, capsys, tmp_path):
        import json

        spec = self.write_spec(tmp_path)
        store = tmp_path / "run.jsonl"
        out_path = tmp_path / "frontier.json"
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(store)]) == 0
        capsys.readouterr()
        before = store.read_bytes()
        assert main(["sweep", "report", "--store", str(store),
                     "--out", str(out_path)]) == 0
        assert store.read_bytes() == before
        out = capsys.readouterr().out
        assert "pareto" in out.lower() or "*" in out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-sweep-frontier/v1"
        assert len(document["entries"]) == 2
        assert document["pareto_cells"]

    def test_unknown_spec_is_a_sweep_error(self, capsys, tmp_path):
        code = main(["sweep", "run", "--spec", "no-such-spec",
                     "--store", str(tmp_path / "run.jsonl")])
        assert code == 2
        assert "sweep error" in capsys.readouterr().err

    def test_mixed_store_is_refused(self, capsys, tmp_path):
        import json

        spec = self.write_spec(tmp_path)
        store = tmp_path / "run.jsonl"
        assert main(["sweep", "run", "--spec", str(spec),
                     "--store", str(store), "--limit", "1"]) == 0
        other = dict(self.SPEC, name="other",
                     base={"n_options": 5, "kernel": "iv_b",
                           "reference_steps": 32})
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other))
        capsys.readouterr()
        code = main(["sweep", "run", "--spec", str(other_path),
                     "--store", str(store)])
        assert code == 2
        assert "refusing to mix" in capsys.readouterr().err
