"""Unit tests for the named platform catalog."""

import pytest

from repro.devices import catalog
from repro.opencl import DeviceType, get_platform, get_platforms


class TestCatalogRegistration:
    def test_three_vendor_platforms(self):
        names = {p.name for p in get_platforms()}
        assert {"Altera SDK for OpenCL (simulated)",
                "NVIDIA CUDA (simulated)",
                "Intel OpenCL (simulated)"} <= names

    def test_reimport_is_idempotent(self):
        import importlib

        before = len(get_platforms())
        importlib.reload(catalog)
        assert len(get_platforms()) == before

    def test_device_types_per_vendor(self):
        assert get_platform("Altera SDK for OpenCL (simulated)").devices[0] \
            .device_type is DeviceType.ACCELERATOR
        assert get_platform("NVIDIA CUDA (simulated)").devices[0] \
            .device_type is DeviceType.GPU
        assert get_platform("Intel OpenCL (simulated)").devices[0] \
            .device_type is DeviceType.CPU

    def test_catalog_devices_carry_calibrated_models(self):
        fpga = get_platform("Altera SDK for OpenCL (simulated)").devices[0]
        # the default catalog FPGA is the kernel IV.B configuration
        assert fpga.timing_model.power_w == pytest.approx(17.0)
        assert fpga.timing_model.node_rate_per_s == pytest.approx(
            1.26e9, rel=0.01)

    def test_discovery_flow_like_a_real_host(self):
        """The standard host bootstrap: platforms -> device -> context
        -> queue, using only the public discovery API."""
        from repro.opencl import Context

        platform = get_platform("Altera SDK for OpenCL (simulated)")
        device = platform.get_devices(DeviceType.ACCELERATOR)[0]
        queue = Context(device).create_queue()
        assert queue.device is device
        assert device.get_info("CL_DEVICE_NAME").startswith("Terasic")
