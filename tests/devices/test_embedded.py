"""Unit tests for the future-work embedded targets (DSP, Mali)."""

import pytest

from repro.devices import (
    MALI_T604,
    TI_C6678,
    Precision,
    embedded_compute_model,
    embedded_device,
    fpga_compute_model,
)
from repro.devices.embedded import DSP_SCHEDULING_PENALTY
from repro.errors import DeviceModelError
from repro.opencl import DeviceType

NODES = 1024 * 1025 // 2


class TestSpecs:
    def test_c6678_datasheet(self):
        assert TI_C6678.compute_units == 8
        assert TI_C6678.clock_hz == 1.25e9
        assert TI_C6678.peak_flops("double") == pytest.approx(8 * 4 * 1.25e9)
        assert TI_C6678.peak_flops("single") == pytest.approx(8 * 16 * 1.25e9)
        assert TI_C6678.typical_power_w == 10.0  # the use case's budget

    def test_mali_datasheet(self):
        assert MALI_T604.compute_units == 4
        assert MALI_T604.peak_flops("single") == pytest.approx(128 * 533e6)
        # fp64 at quarter rate
        assert MALI_T604.peak_flops("double") == pytest.approx(
            MALI_T604.peak_flops("single") / 4)

    def test_dsp_scheduling_penalty_applied(self):
        penalised = embedded_compute_model(TI_C6678).node_rate_per_s
        from dataclasses import replace
        free = embedded_compute_model(
            replace(TI_C6678, scheduling_factor=1.0)).node_rate_per_s
        assert penalised == pytest.approx(free * DSP_SCHEDULING_PENALTY)


class TestModels:
    def test_projection_labelled(self):
        model = embedded_compute_model(MALI_T604)
        assert "projected" in model.name

    def test_precision_scaling(self):
        double = embedded_compute_model(MALI_T604, precision="double")
        single = embedded_compute_model(MALI_T604, precision="single")
        assert single.node_rate_per_s > 2 * double.node_rate_per_s

    def test_kernel_a_derated(self):
        a = embedded_compute_model(TI_C6678, "iv_a")
        b = embedded_compute_model(TI_C6678, "iv_b")
        assert a.node_rate_per_s < b.node_rate_per_s

    def test_unknown_kernel(self):
        with pytest.raises(DeviceModelError):
            embedded_compute_model(TI_C6678, "iv_x")

    def test_energy_efficiency_positioning(self):
        """Mali's 2.5 W makes it the options/J frontrunner while its
        absolute double-precision rate misses the 2000 options/s goal."""
        mali = embedded_compute_model(MALI_T604)
        fpga = fpga_compute_model("iv_b")
        assert mali.options_per_joule(NODES) > fpga.options_per_joule(NODES)
        assert mali.options_per_second(NODES) < 2000


class TestDevices:
    def test_device_factories(self):
        dsp = embedded_device(TI_C6678)
        mali = embedded_device(MALI_T604)
        assert dsp.device_type is DeviceType.ACCELERATOR
        assert mali.device_type is DeviceType.GPU
        assert dsp.compute_units == 8

    def test_devices_run_kernels(self, small_batch):
        import numpy as np
        from repro.core import HostProgramB
        from repro.finance import price_binomial

        run = HostProgramB(embedded_device(MALI_T604), 10).price(small_batch)
        expected = [price_binomial(o, 10).price for o in small_batch]
        assert np.allclose(run.prices, expected, rtol=1e-12)

    def test_mali_work_group_limit_enforced(self):
        """T604 caps work-groups at 256 — N=1024 kernel IV.B cannot
        launch unmodified, a real portability finding."""
        from repro.core import HostProgramB
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="work-group"):
            HostProgramB(embedded_device(MALI_T604), 1024)
