"""Unit tests for the PCIe link and memory-system models."""

import pytest

from repro.errors import DeviceModelError
from repro.devices import DE4_DDR2, GTX660_GDDR5, MemorySystem, PCIeLink
from repro.opencl import TransferDirection


class TestPCIeLink:
    def test_paper_lane_rates(self):
        """Section V.A: 500 MB/s/lane gen2, 985 MB/s/lane gen3."""
        de4 = PCIeLink(generation=2, lanes=4, efficiency=1.0)
        assert de4.theoretical_bandwidth_bytes_s == pytest.approx(2e9)
        gtx = PCIeLink(generation=3, lanes=16, efficiency=1.0)
        assert gtx.theoretical_bandwidth_bytes_s == pytest.approx(15.76e9)

    def test_efficiency_scales_bandwidth(self):
        link = PCIeLink(generation=2, lanes=4, efficiency=0.5)
        assert link.effective_bandwidth_bytes_s == pytest.approx(1e9)

    def test_transfer_time_formula(self):
        link = PCIeLink(generation=2, lanes=4, efficiency=1.0,
                        latency_ns=1000.0)
        t = link.transfer_ns(2_000_000, TransferDirection.DEVICE_TO_HOST)
        assert t == pytest.approx(1000.0 + 2_000_000 / 2e9 * 1e9)

    def test_device_to_device_is_latency_only(self):
        link = PCIeLink(generation=2, lanes=4, latency_ns=500.0)
        assert link.transfer_ns(10**9, TransferDirection.DEVICE_TO_DEVICE) == 500.0

    def test_validation(self):
        with pytest.raises(DeviceModelError):
            PCIeLink(generation=5, lanes=4)
        with pytest.raises(DeviceModelError):
            PCIeLink(generation=2, lanes=0)
        with pytest.raises(DeviceModelError):
            PCIeLink(generation=2, lanes=4, efficiency=0.0)
        with pytest.raises(DeviceModelError):
            PCIeLink(generation=2, lanes=4, efficiency=1.5)
        with pytest.raises(DeviceModelError):
            PCIeLink(generation=2, lanes=4, latency_ns=-1.0)

    def test_negative_bytes_rejected(self):
        link = PCIeLink(generation=2, lanes=4)
        with pytest.raises(DeviceModelError):
            link.transfer_ns(-1, TransferDirection.HOST_TO_DEVICE)


class TestMemorySystem:
    def test_paper_bandwidths(self):
        assert DE4_DDR2.peak_bandwidth_bytes_s == pytest.approx(12.75e9)
        assert GTX660_GDDR5.peak_bandwidth_bytes_s == pytest.approx(144e9)

    def test_streaming_time(self):
        mem = MemorySystem("t", 1024, 1e9, efficiency=1.0)
        assert mem.streaming_time_ns(1_000_000) == pytest.approx(1e6)

    def test_validation(self):
        with pytest.raises(DeviceModelError):
            MemorySystem("t", 0, 1e9)
        with pytest.raises(DeviceModelError):
            MemorySystem("t", 1024, 0.0)
        with pytest.raises(DeviceModelError):
            MemorySystem("t", 1024, 1e9, efficiency=2.0)
        with pytest.raises(DeviceModelError):
            MemorySystem("t", 1024, 1e9).streaming_time_ns(-5)
