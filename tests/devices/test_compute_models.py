"""Unit tests for the calibrated device compute models.

The core check: every model reproduces its Table II operating point
(options/s and options/J at N=1024) within 2% — these points are the
calibration *inputs*, so a miss means a broken formula, not a modeling
disagreement.
"""

import pytest

from repro.devices import (
    DE4_BOARD,
    GTX660_TI,
    KERNEL_A_PAPER_POINT,
    KERNEL_B_PAPER_POINT,
    XEON_X5450,
    ComputeModel,
    FpgaOperatingPoint,
    PCIeLink,
    Precision,
    cpu_compute_model,
    cpu_device,
    fpga_compute_model,
    fpga_device,
    gpu_compute_model,
    gpu_device,
)
from repro.errors import DeviceModelError
from repro.opencl import DeviceType, LaunchInfo

NODES = 1024 * 1025 // 2  # interior nodes per option at N=1024


class TestComputeModelBasics:
    def _model(self, **overrides):
        base = dict(
            name="m", node_rate_per_s=1e9, power_w=10.0,
            link=PCIeLink(generation=2, lanes=4),
        )
        base.update(overrides)
        return ComputeModel(**base)

    def test_options_per_second(self):
        model = self._model()
        assert model.options_per_second(1e6) == pytest.approx(1000.0)

    def test_options_per_joule(self):
        model = self._model()
        assert model.options_per_joule(1e6) == pytest.approx(100.0)
        assert model.energy_per_option_j(1e6) == pytest.approx(0.01)

    def test_ndrange_time_uses_work_per_item(self):
        model = self._model(launch_overhead_ns=0.0)
        launch = LaunchInfo("k", global_size=1000, local_size=100,
                            work_groups=10, work_per_item=1000.0)
        assert model.ndrange_ns(launch) == pytest.approx(1e6)  # 1e6 nodes at 1e9/s

    def test_validation(self):
        with pytest.raises(DeviceModelError):
            self._model(node_rate_per_s=0.0)
        with pytest.raises(DeviceModelError):
            self._model(power_w=-1.0)
        with pytest.raises(DeviceModelError):
            self._model(precision="half")
        with pytest.raises(DeviceModelError):
            self._model(saturation_options=0.0)

    def test_precision_check(self):
        assert Precision.check("double") == "double"
        with pytest.raises(DeviceModelError):
            Precision.check("quad")


class TestFpgaModel:
    def test_kernel_b_matches_table2(self):
        model = fpga_compute_model("iv_b")
        assert model.options_per_second(NODES) == pytest.approx(2400, rel=0.02)
        assert model.options_per_joule(NODES) == pytest.approx(140, rel=0.02)

    def test_kernel_a_compute_ceiling(self):
        """f * lanes: the dataflow pipeline itself is fast; it's the
        readback that ruins kernel IV.A (modelled in perf_model)."""
        model = fpga_compute_model("iv_a")
        assert model.node_rate_per_s == pytest.approx(98.27e6 * 6, rel=1e-6)

    def test_custom_operating_point(self):
        point = FpgaOperatingPoint(fmax_hz=100e6, parallel_lanes=4, power_w=10.0)
        model = fpga_compute_model("iv_b", operating_point=point)
        assert model.power_w == 10.0

    def test_unknown_kernel(self):
        with pytest.raises(DeviceModelError):
            fpga_compute_model("iv_c")

    def test_operating_point_validation(self):
        with pytest.raises(DeviceModelError):
            FpgaOperatingPoint(fmax_hz=0.0, parallel_lanes=4, power_w=10.0)
        with pytest.raises(DeviceModelError):
            FpgaOperatingPoint(fmax_hz=1e8, parallel_lanes=0, power_w=10.0)

    def test_paper_points(self):
        assert KERNEL_A_PAPER_POINT.fmax_hz == pytest.approx(98.27e6)
        assert KERNEL_B_PAPER_POINT.parallel_lanes == 8
        assert KERNEL_B_PAPER_POINT.power_w == 17.0

    def test_device_factory(self):
        device = fpga_device("iv_b")
        assert device.device_type is DeviceType.ACCELERATOR
        assert device.name == DE4_BOARD.name
        assert device.timing_model.power_w == pytest.approx(17.0)

    def test_saturation_at_1e5(self):
        assert fpga_compute_model("iv_b").saturation_options == 1e5


class TestGpuModel:
    def test_kernel_b_double_matches_table2(self):
        model = gpu_compute_model("iv_b", "double")
        assert model.options_per_second(NODES) == pytest.approx(8900, rel=0.02)
        assert model.options_per_joule(NODES) == pytest.approx(64, rel=0.02)

    def test_kernel_b_single_matches_table2(self):
        model = gpu_compute_model("iv_b", "single")
        assert model.options_per_second(NODES) == pytest.approx(47000, rel=0.02)
        assert model.options_per_joule(NODES) == pytest.approx(340, rel=0.03)

    def test_gpu_saturates_later_than_fpga(self):
        """Section V.C: IV.B on the GTX660 saturates at 1e6 options."""
        assert gpu_compute_model("iv_b").saturation_options == 1e6
        assert gpu_compute_model("iv_b").saturation_options > \
            fpga_compute_model("iv_b").saturation_options

    def test_peak_flops(self):
        assert GTX660_TI.peak_flops("single") == pytest.approx(960 * 980e6)
        assert GTX660_TI.peak_flops("double") == pytest.approx(120 * 980e6)

    def test_kernel_a_slower_per_node(self):
        assert gpu_compute_model("iv_a").node_rate_per_s < \
            gpu_compute_model("iv_b").node_rate_per_s

    def test_unknown_kernel(self):
        with pytest.raises(DeviceModelError):
            gpu_compute_model("iv_z")

    def test_device_factory(self):
        device = gpu_device()
        assert device.device_type is DeviceType.GPU
        assert device.compute_units == 5
        assert device.local_mem_bytes == 48 * 1024


class TestCpuModel:
    def test_double_matches_table2(self):
        model = cpu_compute_model("double")
        assert model.options_per_second(NODES) == pytest.approx(222, rel=0.01)
        assert model.options_per_joule(NODES) == pytest.approx(1.85, rel=0.01)

    def test_single_matches_table2(self):
        """The paper's (odd) single < double inversion is preserved."""
        model = cpu_compute_model("single")
        assert model.options_per_second(NODES) == pytest.approx(116, rel=0.01)
        assert model.options_per_second(NODES) < \
            cpu_compute_model("double").options_per_second(NODES)

    def test_no_saturation_ramp(self):
        assert cpu_compute_model().saturation_options == 1.0

    def test_device_factory(self):
        device = cpu_device()
        assert device.device_type is DeviceType.CPU
        assert XEON_X5450.clock_hz == 3.0e9


class TestEnergyOrdering:
    def test_paper_energy_ranking(self):
        """FPGA IV.B > GPU single > GPU double > CPU (options/J)."""
        fpga = fpga_compute_model("iv_b").options_per_joule(NODES)
        gpu_d = gpu_compute_model("iv_b", "double").options_per_joule(NODES)
        cpu = cpu_compute_model("double").options_per_joule(NODES)
        assert fpga > 2 * gpu_d          # "2 times more energy-efficient"
        assert fpga > 5 * cpu            # "more than 5 times more ... than sw"
        assert gpu_d > cpu
