"""Unit tests for the span tracer (repro.obs.trace)."""

import pickle

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    as_tracer,
    max_depth,
)


class TestSpanLifecycle:
    def test_start_end_duration(self):
        tracer = Tracer()
        span = tracer.start_span("run", "run")
        assert span.end_ns is None
        span.end()
        assert span.end_ns is not None
        assert span.duration_ns >= 0

    def test_end_is_idempotent_and_chains(self):
        span = Tracer().start_span("x", "run")
        first = span.end().end_ns
        assert span.end() is span
        assert span.end_ns == first

    def test_children_nest(self):
        tracer = Tracer()
        run = tracer.start_span("run", "run")
        group = run.child("group", "group")
        chunk = group.child("chunk", "chunk")
        assert chunk in group.children and group in run.children
        assert len(tracer) == 1
        assert sum(1 for _ in tracer.iter_spans()) == 3

    def test_set_and_annotate(self):
        span = Tracer().start_span("run", "run", kernel="iv_b")
        span.set(status="error", workers=4)
        span.annotate("retry", attempt=1)
        d = span.end().as_dict()
        assert d["attrs"]["kernel"] == "iv_b"
        assert d["attrs"]["workers"] == 4
        assert d["status"] == "error"
        assert d["annotations"][0]["message"] == "retry"
        assert d["annotations"][0]["attrs"] == {"attempt": 1}

    def test_context_manager_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start_span("run", "run"):
                raise ValueError("boom")
        d = tracer.as_dicts()[0]
        assert d["status"] == "error"
        assert d["end_ns"] is not None


class TestSerialisation:
    def test_round_trip(self):
        tracer = Tracer()
        run = tracer.start_span("run", "run", kernel="iv_b")
        run.child("group", "group", steps=64).end()
        run.annotate("note", detail="x")
        run.end()
        restored = Span.from_dict(run.as_dict())
        assert restored.as_dict() == run.as_dict()

    def test_adopt_reattaches_worker_spans(self):
        parent = Tracer().start_span("attempt", "attempt")
        worker = Tracer().start_span("worker-record", "worker", pid=123)
        worker.end()
        parent.adopt([worker.as_dict()])
        assert parent.children[0].name == "worker-record"
        assert parent.children[0].attrs["pid"] == 123

    def test_walk_covers_all(self):
        tracer = Tracer()
        run = tracer.start_span("run", "run")
        for i in range(3):
            run.child(f"c{i}", "chunk").end()
        assert sum(1 for _ in run.walk()) == 4

    def test_max_depth(self):
        tracer = Tracer()
        run = tracer.start_span("run", "run")
        run.child("g", "group").child("c", "chunk").child("a", "attempt")
        assert max_depth(run.as_dict()) == 4
        assert max_depth(tracer.start_span("solo", "run").as_dict()) == 1


class TestNullObjects:
    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer()
        assert as_tracer(real) is real

    def test_null_tracer_is_disabled_and_empty(self):
        assert not NULL_TRACER.enabled
        assert Tracer().enabled
        span = NULL_TRACER.start_span("run", "run")
        assert span is NULL_SPAN
        assert len(NULL_TRACER) == 0

    def test_null_span_absorbs_everything(self):
        span = NULL_SPAN
        assert span.child("x", "chunk") is NULL_SPAN
        assert span.set(a=1) is NULL_SPAN
        assert span.end() is NULL_SPAN
        span.annotate("whatever")
        with span:
            pass

    def test_singletons(self):
        assert isinstance(NULL_SPAN, NullSpan)
        assert isinstance(NULL_TRACER, NullTracer)


class TestSpanContext:
    def test_is_picklable(self):
        ctx = SpanContext(trace_id="trace-1-1",
                          path=("engine.run", "group[steps=8]"))
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_tracer_ids_are_unique(self):
        assert Tracer().trace_id != Tracer().trace_id
