"""Exporter tests: JSON traces, Prometheus files, rendered views."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    TRACE_SCHEMA,
    chunk_span_seconds,
    queue_spans_to_events,
    render_queue_timeline,
    render_span_tree,
    trace_document,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.trace import Tracer


def traced_run(chunks=3) -> Tracer:
    tracer = Tracer()
    run = tracer.start_span("engine.run", "run", kernel="iv_b")
    group = run.child("group[steps=8]", "group", steps=8)
    for i in range(chunks):
        chunk = group.child(f"chunk[{i * 4}+4]", "chunk", first_index=i * 4)
        chunk.child("attempt-0", "attempt", attempt=0).end()
        chunk.end()
    group.end()
    run.annotate("note")
    run.end()
    return tracer


class TestTraceDocument:
    def test_document_shape(self):
        tracer = traced_run()
        document = trace_document(tracer)
        assert document["schema"] == TRACE_SCHEMA
        assert document["trace_id"] == tracer.trace_id
        assert len(document["spans"]) == 1

    def test_write_trace_round_trips_through_json(self, tmp_path):
        path = write_trace(traced_run(), tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro-trace/v1"
        root = loaded["spans"][0]
        assert root["kind"] == "run"
        assert [c["kind"] for c in root["children"]] == ["group"]
        assert len(root["children"][0]["children"]) == 3

    def test_write_metrics_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(7)
        path = write_metrics(registry, tmp_path / "m.prom")
        assert parse_prometheus(path.read_text())["repro_test_total"] == 7


class TestRenderSpanTree:
    def test_contains_hierarchy_and_annotations(self):
        text = render_span_tree(traced_run().as_dicts()[0])
        assert "run:engine.run" in text
        assert "group:group[steps=8]" in text
        assert "chunk:chunk[0+4]" in text
        assert "attempt:attempt-0" in text
        assert "note" in text

    def test_elides_wide_sibling_runs(self):
        text = render_span_tree(traced_run(chunks=24).as_dicts()[0],
                                max_children=8)
        assert "sibling spans elided" in text
        assert text.count("chunk:") < 24


def queue_trace() -> Tracer:
    tracer = Tracer()
    run = tracer.start_span("session", "run")
    run.child("buf0", "queue-command", command="write_buffer", engine="dma",
              sim_queued_ns=0, sim_start_ns=0, sim_end_ns=100).end()
    run.child("tree", "queue-command", command="ndrange_kernel",
              engine="kernel", sim_queued_ns=0, sim_start_ns=100,
              sim_end_ns=400).end()
    run.end()
    return tracer


class TestQueueTimeline:
    def test_events_rebuilt_on_simulated_clock(self):
        events = queue_spans_to_events(queue_trace().as_dicts())
        assert [e.name for e in events] == ["buf0", "tree"]
        assert events[0].start_ns == 0 and events[0].end_ns == 100
        assert events[1].command_type.value == "ndrange_kernel"

    def test_render_reuses_gantt_lanes(self):
        text = render_queue_timeline(queue_trace().as_dicts())
        assert "dma" in text and "kernel" in text
        assert "W" in text and "K" in text

    def test_no_queue_spans_is_an_error(self):
        with pytest.raises(ReproError):
            render_queue_timeline(traced_run().as_dicts())

    def test_missing_sim_clock_is_an_error(self):
        tracer = Tracer()
        run = tracer.start_span("session", "run")
        run.child("bad", "queue-command", command="read_buffer").end()
        run.end()
        with pytest.raises(ReproError):
            queue_spans_to_events(tracer.as_dicts())


class TestChunkSpanSeconds:
    def test_sums_only_chunk_spans(self):
        root = traced_run(chunks=2).as_dicts()[0]
        group = root["children"][0]
        expected = sum(c["duration_ns"] for c in group["children"]) * 1e-9
        assert chunk_span_seconds(root) == pytest.approx(expected)
