"""The stable engine-stats schema, asserted (see docs/stats_schema.md).

Every reporting surface — ``EngineStats.as_dict``/``describe``, the
bench-engine JSON, the Prometheus export — must use exactly the
``repro.obs.keys`` names.  Renaming or reordering a key is a schema
version bump, and this file is the tripwire.
"""

import re

from repro.bench.engine_bench import run_benchmark
from repro.engine.stats import EngineStats, RunMetrics
from repro.obs import keys
from repro.obs.metrics import MetricsRegistry, parse_prometheus, set_registry


def make_stats(**overrides) -> EngineStats:
    base = dict(options=8, tree_nodes=100, groups=1, chunks=2, workers=1,
                wall_time_s=0.5, cpu_time_s=0.4, peak_tile_bytes=1024)
    base.update(overrides)
    return EngineStats(**base)


class TestStatsKeys:
    def test_schema_tag(self):
        assert keys.STATS_SCHEMA == "repro-engine-stats/v4"

    def test_v4_backend_keys_present(self):
        assert "backend" in keys.STATS_KEYS
        assert "backend_compile_seconds" in keys.STATS_KEYS
        assert "fused_greeks" in keys.STATS_KEYS
        stats = make_stats(backend="cnative", backend_compile_seconds=1.5,
                           fused_greeks=1)
        snapshot = stats.as_dict()
        assert snapshot["backend"] == "cnative"
        assert snapshot["backend_compile_seconds"] == 1.5
        assert snapshot["fused_greeks"] == 1

    def test_as_dict_keys_exact_order(self):
        assert tuple(make_stats().as_dict()) == keys.STATS_KEYS

    def test_all_keys_snake_case(self):
        for key in keys.STATS_KEYS:
            assert re.fullmatch(r"[a-z][a-z0-9_]*", key), key

    def test_describe_uses_schema_order(self):
        described = make_stats(retries=3).describe()
        described_keys = tuple(part.split("=")[0]
                               for part in described.split())
        assert described_keys == keys.STATS_KEYS
        assert "retries=3" in described

    def test_reliability_keys_are_subset(self):
        assert set(keys.RELIABILITY_KEYS) <= set(keys.STATS_KEYS)
        counters = make_stats(timeouts=2).reliability_counters
        assert tuple(counters) == keys.RELIABILITY_KEYS
        assert counters["timeouts"] == 2


class TestStatsFromRegistry:
    def test_from_run_reads_metrics(self):
        metrics = RunMetrics()
        metrics.options.inc(8)
        metrics.tree_nodes.inc(100)
        metrics.groups.inc(1)
        metrics.chunks.inc(2)
        metrics.retries.inc(3)
        stats = EngineStats.from_run(metrics, workers=1, wall_time_s=0.5,
                                     cpu_time_s=0.4, peak_tile_bytes=64)
        assert stats.options == 8
        assert stats.retries == 3
        assert stats.quarantined_options == 0

    def test_stats_to_metric_targets_exist(self):
        metrics = RunMetrics()
        for stat, metric_name in keys.STATS_TO_METRIC.items():
            assert stat in keys.STATS_KEYS
            assert metrics.registry.get(metric_name) is not None, metric_name

    def test_counters_expose_zero_samples(self):
        """A clean run still renders retries/quarantine counters as 0."""
        text = RunMetrics().registry.render_prometheus()
        samples = parse_prometheus(text)
        assert samples[keys.RETRIES_TOTAL] == 0
        assert samples[keys.QUARANTINED_OPTIONS_TOTAL] == 0
        assert samples[keys.DEGRADED_TO_SERIAL_TOTAL] == 0
        assert samples[keys.GREEKS_OPTIONS_TOTAL] == 0
        assert samples[keys.BUMP_PASSES_TOTAL] == 0


class TestBenchDocumentSchema:
    def test_runs_use_stats_keys(self):
        hermetic = MetricsRegistry()
        previous = set_registry(hermetic)
        try:
            document = run_benchmark(options_counts=(8,), steps=16,
                                     workers_settings=(1,))
        finally:
            set_registry(previous)
        assert document["stats_schema"] == keys.STATS_SCHEMA
        run = document["results"][0]["runs"][0]
        assert tuple(run) == keys.STATS_KEYS + ("speedup_vs_baseline",)


class TestSweepStatsKeys:
    def test_schema_tag(self):
        assert keys.SWEEP_STATS_SCHEMA == "repro-sweep-stats/v8"

    def test_as_dict_schema_first_then_exact_key_order(self):
        from repro.sweep.runner import SweepStats

        snapshot = SweepStats(cells=4, executed=2, done=2).as_dict()
        assert tuple(snapshot) == ("schema",) + keys.SWEEP_STATS_KEYS
        assert snapshot["schema"] == keys.SWEEP_STATS_SCHEMA
        assert snapshot["cells"] == 4

    def test_all_keys_snake_case(self):
        for key in keys.SWEEP_STATS_KEYS:
            assert re.fullmatch(r"[a-z][a-z0-9_]*", key), key

    def test_stats_to_metric_targets_are_keys(self):
        assert set(keys.SWEEP_STATS_TO_METRIC) <= set(keys.SWEEP_STATS_KEYS)
        for metric_name in keys.SWEEP_STATS_TO_METRIC.values():
            assert metric_name.startswith("repro_sweep_"), metric_name
