"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("repro_test_events_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_samples(self, registry):
        c = registry.counter("repro_test_cmds_total")
        c.inc(1, engine="dma")
        c.inc(2, engine="kernel")
        assert c.value(engine="dma") == 1
        assert c.value(engine="kernel") == 2
        assert c.total() == 3

    def test_label_order_does_not_matter(self, registry):
        c = registry.counter("repro_test_xy_total")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_cannot_decrease(self, registry):
        with pytest.raises(ReproError):
            registry.counter("repro_test_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_test_occupancy")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value() == 4.0


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        h = registry.histogram("repro_test_latency_seconds",
                               buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.cumulative_buckets() == [(0.1, 1), (1.0, 3), (math.inf, 4)]

    def test_needs_buckets(self, registry):
        with pytest.raises(ReproError):
            registry.histogram("repro_test_empty_seconds", buckets=())


class TestRegistry:
    def test_same_name_same_family(self, registry):
        assert (registry.counter("repro_test_total")
                is registry.counter("repro_test_total"))

    def test_type_conflict_raises(self, registry):
        registry.counter("repro_test_thing")
        with pytest.raises(ReproError):
            registry.gauge("repro_test_thing")

    def test_value_of_absent_metric_is_zero(self, registry):
        assert registry.value("repro_never_registered") == 0.0

    def test_merge_adds_counters_overwrites_gauges(self, registry):
        other = MetricsRegistry()
        registry.counter("repro_test_total").inc(1)
        other.counter("repro_test_total").inc(2)
        registry.gauge("repro_test_rate").set(10.0)
        other.gauge("repro_test_rate").set(99.0)
        other.histogram("repro_test_lat_seconds", buckets=(1.0,)).observe(0.5)
        registry.merge(other)
        assert registry.value("repro_test_total") == 3
        assert registry.value("repro_test_rate") == 99.0
        assert registry.get("repro_test_lat_seconds").count == 1

    def test_names_sorted(self, registry):
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert registry.names() == ["repro_a_total", "repro_b_total"]


class TestPrometheusRoundTrip:
    def test_render_and_parse(self, registry):
        registry.counter("repro_test_total", "how many").inc(
            3, command="write_buffer")
        registry.gauge("repro_test_rate").set(2400.5)
        registry.histogram("repro_test_lat_seconds",
                           buckets=(0.1, 1.0)).observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP repro_test_total how many" in text
        assert "# TYPE repro_test_total counter" in text
        assert "# TYPE repro_test_lat_seconds histogram" in text
        samples = parse_prometheus(text)
        assert samples['repro_test_total{command="write_buffer"}'] == 3
        assert samples["repro_test_rate"] == 2400.5
        assert samples['repro_test_lat_seconds_bucket{le="+Inf"}'] == 1
        assert samples["repro_test_lat_seconds_sum"] == 0.25
        assert samples["repro_test_lat_seconds_count"] == 1

    def test_label_escaping(self, registry):
        registry.counter("repro_test_total").inc(1, path='a"b\\c')
        samples = parse_prometheus(registry.render_prometheus())
        assert len(samples) == 1 and list(samples.values()) == [1]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_prometheus("repro_test_total not_a_number")

    def test_as_dict_deterministic(self, registry):
        registry.counter("repro_test_total", "h").inc(1, z="1")
        registry.counter("repro_test_total").inc(1, a="1")
        d = registry.as_dict()
        assert d["repro_test_total"]["type"] == "counter"
        assert list(d["repro_test_total"]["samples"]) == [
            '{a="1"}', '{z="1"}']


class TestProcessRegistry:
    def test_swap_and_restore(self):
        hermetic = MetricsRegistry()
        previous = set_registry(hermetic)
        try:
            assert get_registry() is hermetic
        finally:
            set_registry(previous)
        assert get_registry() is previous
