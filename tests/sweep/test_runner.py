"""SweepRunner: execution, crash-safe resume, bitwise determinism."""

import pytest

from repro.errors import SweepError
from repro.sweep import RunStore, SweepRunner, SweepSpec
from repro.sweep.runner import SweepStats

#: The transient-fault seeds the service/serve suites pin (faults must
#: heal with bitwise parity; the sweep layer inherits that contract).
FAULT_SEEDS = (101, 202, 303)


def tiny_spec(**kwargs):
    defaults = dict(
        name="tiny",
        axes={"steps": (8, 16), "kernel": ("iv_b", "reference")},
        base={"n_options": 4, "reference_steps": 32},
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestExecution:
    def test_full_grid_runs_to_done(self, tmp_path):
        spec = tiny_spec()
        stats = SweepRunner(spec, tmp_path / "run.jsonl").run()
        assert isinstance(stats, SweepStats)
        assert stats.cells == 4
        assert stats.executed == stats.done == 4
        assert stats.failed == 0
        assert stats.options == 16

    def test_rows_carry_result_fields(self, tmp_path):
        store_path = tmp_path / "run.jsonl"
        SweepRunner(tiny_spec(), store_path).run()
        for row in RunStore(store_path).latest().values():
            assert row.status == "done"
            result = row.result
            assert result["options"] == 4
            assert result["rmse"] >= 0.0
            assert result["max_abs_err"] >= result["rmse"]
            assert len(result["prices_blake2b"]) == 16
            assert set(result["modeled"]) == {
                "options_per_second", "options_per_joule", "power_w"}
            assert row.meta is not None  # volatile envelope present

    def test_rerun_of_completed_grid_is_noop(self, tmp_path):
        spec = tiny_spec()
        store_path = tmp_path / "run.jsonl"
        SweepRunner(spec, store_path).run()
        before = store_path.read_bytes()
        stats = SweepRunner(spec, store_path).run()
        assert stats.executed == 0
        assert stats.skipped == 4
        assert store_path.read_bytes() == before  # literally no append

    def test_store_of_other_spec_is_refused(self, tmp_path):
        store_path = tmp_path / "run.jsonl"
        SweepRunner(tiny_spec(), store_path).run(limit=1)
        other = tiny_spec(base={"n_options": 5, "reference_steps": 32})
        with pytest.raises(SweepError, match="refusing to mix"):
            SweepRunner(other, store_path).run()

    def test_fully_pruned_grid_is_an_error(self, tmp_path):
        spec = SweepSpec(name="t", axes={"steps": (1,)},
                         base={"kernel": "iv_b"})
        with pytest.raises(SweepError, match="no cells"):
            SweepRunner(spec, tmp_path / "run.jsonl").run()


class TestResumeDeterminism:
    def run_interrupted(self, spec, path, kill_after):
        """Run the grid in two passes: ``kill_after`` cells, then rest."""
        first = SweepRunner(spec, path).run(limit=kill_after)
        assert first.executed == kill_after
        counts = RunStore(path).counts()
        assert counts["done"] + counts["failed"] == kill_after
        assert counts["pending"] == spec_cells(spec) - kill_after
        second = SweepRunner(spec, path).run()
        assert second.skipped == kill_after
        return RunStore(path)

    def test_killed_and_resumed_store_is_bitwise_identical(self, tmp_path):
        spec = tiny_spec()
        uninterrupted = RunStore(tmp_path / "one_shot.jsonl")
        SweepRunner(spec, uninterrupted).run()
        for kill_after in (1, 2, 3):
            resumed = self.run_interrupted(
                spec, tmp_path / f"killed_{kill_after}.jsonl", kill_after)
            assert resumed.fingerprint() == uninterrupted.fingerprint()
            # row-for-row, not just digest-equal
            canonical = lambda store: sorted(
                (r.cell, r.canonical_dict())
                for r in store.latest().values())
            assert canonical(resumed) == canonical(uninterrupted)

    @pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
    def test_resume_is_bitwise_under_fault_injection(self, tmp_path,
                                                     fault_seed):
        spec = tiny_spec(
            axes={"steps": (8, 16), "fault_seed": (fault_seed,)},
            base={"n_options": 4, "kernel": "iv_b",
                  "reference_steps": 32})
        uninterrupted = RunStore(tmp_path / "one_shot.jsonl")
        SweepRunner(spec, uninterrupted).run()
        resumed = self.run_interrupted(
            spec, tmp_path / "killed.jsonl", kill_after=1)
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        for row in resumed.latest().values():
            assert row.status == "done"  # transient faults healed

    def test_interrupt_mid_append_is_recovered(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "run.jsonl"
        SweepRunner(spec, path).run(limit=2)
        # crash mid-write of the final committed row: the truncated
        # tail is dropped and that cell simply re-runs
        path.write_bytes(path.read_bytes()[:-30])
        stats = SweepRunner(spec, path).run()
        assert stats.done == 3  # the clipped cell plus the 2 never run
        uninterrupted = RunStore(tmp_path / "one_shot.jsonl")
        SweepRunner(spec, uninterrupted).run()
        assert RunStore(path).fingerprint() == uninterrupted.fingerprint()


class TestFailedCells:
    def test_invalid_cell_fails_with_typed_wire_code(self, tmp_path):
        # constraints disabled: steps=1 reaches the iv_b kernel, whose
        # request validation refuses it -> a failed row, not a crash
        spec = SweepSpec(name="t", axes={"steps": (1, 8)},
                         constraints=(),
                         base={"n_options": 4, "kernel": "iv_b"})
        store_path = tmp_path / "run.jsonl"
        stats = SweepRunner(spec, store_path).run()
        assert stats.done == 1
        assert stats.failed == 1
        latest = RunStore(store_path).latest()
        failed = [r for r in latest.values() if r.status == "failed"]
        assert len(failed) == 1
        assert failed[0].error["code"] == "bad_request"
        assert failed[0].error["message"]

    def test_failed_cells_are_not_rerun_on_resume(self, tmp_path):
        spec = SweepSpec(name="t", axes={"steps": (1, 8)},
                         constraints=(),
                         base={"n_options": 4, "kernel": "iv_b"})
        store_path = tmp_path / "run.jsonl"
        SweepRunner(spec, store_path).run()
        stats = SweepRunner(spec, store_path).run()
        assert stats.executed == 0
        assert stats.skipped == 2


def spec_cells(spec):
    return len(spec.conditions())
