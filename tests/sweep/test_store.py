"""RunStore: durability, crash tolerance, canonical fingerprints."""

import json
import math

import pytest

from repro.errors import PoisonChunkError, SweepError
from repro.sweep import ROW_SCHEMA, RunStore, SweepRow, SweepSpec


def make_row(cell="steps=16", status="done", **kwargs):
    defaults = dict(
        cell=cell,
        status=status,
        spec="abcd1234",
        condition={"steps": 16, "bump_vol": 0.1},
    )
    if status == "done":
        defaults["result"] = {"rmse": 0.25, "options": 8}
    if status == "failed":
        defaults["error"] = {"code": "poison_chunk", "message": "boom"}
    defaults.update(kwargs)
    return SweepRow(**defaults)


class TestSweepRow:
    def test_round_trip_is_bitwise(self):
        row = make_row(result={"rmse": 5e-324, "neg": -0.0,
                               "nan": float("nan"),
                               "nested": {"vals": [0.1, 1e308]}})
        rebuilt = SweepRow.from_dict(
            json.loads(json.dumps(row.to_dict())))
        assert rebuilt.result["rmse"] == 5e-324
        assert math.copysign(1.0, rebuilt.result["neg"]) == -1.0
        assert math.isnan(rebuilt.result["nan"])
        assert rebuilt.result["nested"]["vals"] == [0.1, 1e308]
        assert rebuilt.condition["bump_vol"].hex() == (0.1).hex()

    def test_schema_tag(self):
        assert make_row().to_dict()["schema"] == ROW_SCHEMA
        assert ROW_SCHEMA == "repro-sweep-row/v1"

    def test_wrong_schema_refused(self):
        document = make_row().to_dict()
        document["schema"] = "repro-sweep-row/v999"
        with pytest.raises(SweepError, match="unsupported sweep-row"):
            SweepRow.from_dict(document)

    def test_invalid_status_refused(self):
        with pytest.raises(SweepError, match="row status"):
            make_row(status="exploded", result=None)

    def test_failed_row_requires_error_code(self):
        with pytest.raises(SweepError, match="failed row needs"):
            SweepRow(cell="c", status="failed", spec="s", condition={})

    def test_non_failed_row_must_not_carry_error(self):
        with pytest.raises(SweepError, match="only failed rows"):
            SweepRow(cell="c", status="done", spec="s", condition={},
                     error={"code": "engine_error", "message": "?"})

    def test_failed_row_rebuilds_typed_exception(self):
        row = make_row(status="failed", result=None)
        exc = row.error_exception()
        assert isinstance(exc, PoisonChunkError)
        assert "boom" in str(exc)

    def test_canonical_dict_excludes_meta(self):
        row = make_row(meta={"started_at": 123.0, "host": {"cpu_count": 8}})
        assert "meta" in row.to_dict()
        assert "meta" not in row.canonical_dict()


class TestRunStore:
    def test_append_and_read_back(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        store.append(make_row(status="pending", result=None))
        store.append(make_row(status="done"))
        rows = store.rows()
        assert [r.status for r in rows] == ["pending", "done"]
        assert store.latest()["steps=16"].status == "done"

    def test_counts_are_latest_wins(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        store.append_all([
            make_row("a", "pending", result=None),
            make_row("b", "pending", result=None),
            make_row("a", "running", result=None),
            make_row("a", "done"),
        ])
        assert store.counts() == {"pending": 1, "running": 0,
                                  "done": 1, "failed": 0}
        assert store.terminal_cells() == {"a"}

    def test_missing_file_is_empty(self, tmp_path):
        store = RunStore(tmp_path / "never_written.jsonl")
        assert store.rows() == []
        assert store.counts() == {"pending": 0, "running": 0,
                                  "done": 0, "failed": 0}

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        store.append(make_row("a"))
        store.append(make_row("b"))
        text = path.read_text()
        path.write_text(text[:-20])  # crash mid-append of the last row
        assert [r.cell for r in store.rows()] == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        store.append(make_row("a"))
        store.append(make_row("b"))
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-15]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SweepError, match="line 1"):
            store.rows()

    def test_check_spec_refuses_foreign_store(self, tmp_path):
        spec = SweepSpec(name="t", axes={"steps": (16,)})
        other = SweepSpec(name="t", axes={"steps": (32,)})
        store = RunStore(tmp_path / "run.jsonl")
        store.append(make_row(spec=spec.fingerprint()))
        store.check_spec(spec)  # same grid: fine
        with pytest.raises(SweepError, match="refusing to mix"):
            store.check_spec(other)

    def test_fingerprint_covers_terminal_rows_only(self, tmp_path):
        a = RunStore(tmp_path / "a.jsonl")
        b = RunStore(tmp_path / "b.jsonl")
        a.append(make_row("x", "done"))
        # b took a different path (pending first) with different meta,
        # but the same canonical terminal row
        b.append(make_row("x", "pending", result=None))
        b.append(make_row("x", "done",
                          meta={"started_at": 999.0}))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sees_result_bits(self, tmp_path):
        a = RunStore(tmp_path / "a.jsonl")
        b = RunStore(tmp_path / "b.jsonl")
        a.append(make_row(result={"rmse": 0.25}))
        b.append(make_row(result={"rmse": 0.25000000000000006}))
        assert a.fingerprint() != b.fingerprint()

    def test_failed_rows_carry_wire_codes_through_the_file(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        store.append(make_row(status="failed", result=None))
        (row,) = store.rows()
        assert row.error["code"] == "poison_chunk"
        assert isinstance(row.error_exception(), PoisonChunkError)
