"""SweepSpec: axis crossing, constraint pruning, wire round-trips."""

import math

import pytest

from repro.errors import SweepError
from repro.sweep import (
    DEFAULT_CONSTRAINTS,
    SPEC_SCHEMA,
    SweepSpec,
    cell_id,
    decode_value,
    encode_value,
)

#: Floats with awkward bit patterns the wire codec must carry exactly.
AWKWARD_FLOATS = (
    0.0, -0.0, 5e-324, -5e-324, 1e308, -1e308,
    float("inf"), float("-inf"), float("nan"),
    0.1, 1.0 + 2 ** -52,
)


def simple_spec(**kwargs):
    defaults = dict(
        name="t",
        axes={"steps": (16, 32), "precision": ("double", "single")},
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestGridEnumeration:
    def test_full_factorial_row_major(self):
        spec = simple_spec()
        conditions = spec.conditions()
        assert len(conditions) == 4
        assert [c["steps"] for c in conditions] == [16, 16, 32, 32]
        assert [c["precision"] for c in conditions] == \
            ["double", "single"] * 2

    def test_cells_merge_base_defaults(self):
        (first, *_rest) = simple_spec().conditions()
        assert first["kernel"] == "iv_b"
        assert first["n_options"] == 32
        assert first["task"] == "price"

    def test_base_overrides_defaults_axes_override_base(self):
        spec = simple_spec(base={"n_options": 4, "kernel": "reference"})
        for condition in spec.conditions():
            assert condition["n_options"] == 4
            assert condition["kernel"] == "reference"

    def test_cell_ids_stable_and_in_axis_order(self):
        spec = simple_spec()
        cells = [c["cell"] for c in spec.conditions()]
        assert cells[0] == "steps=16,precision=double"
        assert len(set(cells)) == len(cells)

    def test_constraint_prunes_iv_b_off_crr(self):
        spec = SweepSpec(
            name="t",
            axes={"kernel": ("iv_b", "reference"),
                  "family": ("crr", "jr")},
        )
        kept = {(c["kernel"], c["family"]) for c in spec.conditions()}
        assert ("iv_b", "jr") not in kept
        assert len(kept) == 3
        assert spec.pruned_count() == 1

    def test_min_steps_constraint(self):
        spec = SweepSpec(name="t", axes={"steps": (1, 2, 16)})
        assert [c["steps"] for c in spec.conditions()] == [2, 16]

    def test_no_constraints_opt_out(self):
        spec = SweepSpec(name="t", axes={"steps": (1, 2)}, constraints=())
        assert len(spec.conditions()) == 2


class TestValidation:
    def test_unknown_axis_refused(self):
        with pytest.raises(SweepError, match="unknown sweep parameter"):
            SweepSpec(name="t", axes={"nope": (1,)})

    def test_unknown_constraint_refused(self):
        with pytest.raises(SweepError, match="unknown constraint"):
            simple_spec(constraints=("not_registered",))

    def test_wrong_value_type_refused(self):
        with pytest.raises(SweepError, match="accepts"):
            SweepSpec(name="t", axes={"steps": ("deep",)})

    def test_bool_is_not_an_int_axis_value(self):
        with pytest.raises(SweepError, match="accepts"):
            SweepSpec(name="t", axes={"steps": (True,)})

    def test_duplicate_axis_values_refused(self):
        with pytest.raises(SweepError, match="duplicate values"):
            SweepSpec(name="t", axes={"steps": (16, 16)})

    def test_axis_base_conflict_refused(self):
        with pytest.raises(SweepError, match="both an axis and a base"):
            simple_spec(base={"steps": 64})

    def test_empty_axes_refused(self):
        with pytest.raises(SweepError, match="at least one axis"):
            SweepSpec(name="t", axes={})


class TestWireForm:
    def test_schema_tag(self):
        assert simple_spec().to_dict()["schema"] == SPEC_SCHEMA
        assert SPEC_SCHEMA == "repro-sweep-spec/v1"

    def test_round_trip_preserves_fingerprint(self):
        spec = simple_spec(base={"bump_vol": 0.1, "n_options": 3})
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_wrong_schema_refused(self):
        document = simple_spec().to_dict()
        document["schema"] = "repro-sweep-spec/v999"
        with pytest.raises(SweepError, match="unsupported sweep-spec"):
            SweepSpec.from_dict(document)

    def test_hand_written_mapping_axes_accepted(self):
        # the wire form is a list of pairs; a hand-written spec file
        # may use a JSON object — same grid, same fingerprint
        document = simple_spec().to_dict()
        document["axes"] = dict(document["axes"])
        assert SweepSpec.from_dict(document) == simple_spec()

    def test_default_constraints_fill_in(self):
        document = simple_spec().to_dict()
        del document["constraints"]
        assert SweepSpec.from_dict(document).constraints == \
            DEFAULT_CONSTRAINTS

    @pytest.mark.parametrize("value", AWKWARD_FLOATS,
                             ids=[repr(v) for v in AWKWARD_FLOATS])
    def test_float_codec_is_bitwise(self, value):
        encoded = encode_value(value)
        assert set(encoded) == {"float.hex"}
        decoded = decode_value(encoded)
        if math.isnan(value):
            assert math.isnan(decoded)
        else:
            assert decoded == value
            assert math.copysign(1.0, decoded) == math.copysign(1.0, value)

    def test_float_axis_round_trips_bitwise(self):
        spec = SweepSpec(name="t", axes={"bump_vol": (0.1, 5e-324, -0.0)})
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        values = dict(rebuilt.axes)["bump_vol"]
        assert [v.hex() for v in values] == \
            [v.hex() for v in dict(spec.axes)["bump_vol"]]

    def test_unsupported_value_type_refused(self):
        with pytest.raises(SweepError, match="sweep values"):
            encode_value([1, 2])

    def test_fingerprint_changes_with_the_grid(self):
        assert simple_spec().fingerprint() != \
            simple_spec(base={"n_options": 5}).fingerprint()

    def test_cell_id_renders_floats_exactly(self):
        assert cell_id(("bump_vol",), {"bump_vol": 0.1}) == \
            f"bump_vol={(0.1).hex()}"
