"""Frontier report: Pareto marking, pure-read contract, rendering."""

import math

import pytest

from repro.errors import SweepError
from repro.sweep import (
    FRONTIER_SCHEMA,
    RunStore,
    SweepRow,
    frontier_report,
    render_frontier,
)


def done_row(cell, rmse, opts_s, opts_j, power_w=10.0, **result):
    payload = dict(
        options=8, rmse=rmse, max_abs_err=rmse * 2.0,
        prices_blake2b="00" * 8, failures=[],
        modeled={"options_per_second": opts_s,
                 "options_per_joule": opts_j,
                 "power_w": power_w},
    )
    payload.update(result)
    return SweepRow(cell=cell, status="done", spec="abcd1234",
                    condition={"steps": 16, "kernel": "iv_b",
                               "precision": "double", "family": "crr",
                               "backend": "numpy"},
                    result=payload)


def store_with(tmp_path, rows):
    store = RunStore(tmp_path / "run.jsonl")
    store.append_all(rows)
    return store


class TestPareto:
    def test_dominated_point_is_not_on_the_frontier(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("a", rmse=1e-6, opts_s=100.0, opts_j=10.0),
            # strictly worse on every objective than "a"
            done_row("b", rmse=1e-3, opts_s=50.0, opts_j=5.0),
        ])
        document = frontier_report(store)
        assert document["pareto_cells"] == ["a"]
        by_cell = {e["cell"]: e for e in document["entries"]}
        assert by_cell["a"]["pareto"] is True
        assert by_cell["b"]["pareto"] is False

    def test_trade_off_keeps_both_points(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("accurate", rmse=1e-9, opts_s=10.0, opts_j=1.0),
            done_row("fast", rmse=1e-2, opts_s=9999.0, opts_j=500.0),
        ])
        assert set(frontier_report(store)["pareto_cells"]) == \
            {"accurate", "fast"}

    def test_tie_on_all_objectives_keeps_both(self, tmp_path):
        # equal everywhere: neither dominates (domination needs a
        # strict improvement somewhere)
        store = store_with(tmp_path, [
            done_row("a", rmse=1e-6, opts_s=100.0, opts_j=10.0),
            done_row("b", rmse=1e-6, opts_s=100.0, opts_j=10.0),
        ])
        assert frontier_report(store)["pareto_cells"] == ["a", "b"]

    def test_nan_objective_ranks_worst(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("clean", rmse=1e-3, opts_s=100.0, opts_j=10.0),
            done_row("nan", rmse=float("nan"), opts_s=200.0, opts_j=20.0),
        ])
        # the NaN point survives only through its throughput edge — it
        # must not *dominate* the clean point
        assert "clean" in frontier_report(store)["pareto_cells"]

    def test_failed_cells_are_excluded(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("good", rmse=1e-6, opts_s=100.0, opts_j=10.0),
            SweepRow(cell="bad", status="failed", spec="abcd1234",
                     condition={"steps": 1},
                     error={"code": "bad_request", "message": "boom"}),
        ])
        document = frontier_report(store)
        assert [e["cell"] for e in document["entries"]] == ["good"]
        assert document["cells"]["failed"] == 1


class TestDocument:
    def test_schema_and_store_fingerprint(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("a", rmse=1e-6, opts_s=100.0, opts_j=10.0)])
        document = frontier_report(store)
        assert document["schema"] == FRONTIER_SCHEMA
        assert document["spec"] == "abcd1234"
        assert document["store_fingerprint"] == store.fingerprint()

    def test_report_is_a_pure_read(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("a", rmse=1e-6, opts_s=100.0, opts_j=10.0)])
        before = store.path.read_bytes()
        frontier_report(store)
        assert store.path.read_bytes() == before

    def test_empty_store_is_an_error(self, tmp_path):
        with pytest.raises(SweepError, match="empty run store"):
            frontier_report(RunStore(tmp_path / "never.jsonl"))

    def test_entries_carry_condition_and_metrics(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("a", rmse=0.5, opts_s=100.0, opts_j=10.0,
                     failures=[{"index": 0, "error": "EngineError",
                                "message": "x", "attempts": 2,
                                "code": "engine_error"}])])
        (entry,) = frontier_report(store)["entries"]
        assert entry["kernel"] == "iv_b"
        assert entry["precision"] == "double"
        assert entry["steps"] == 16
        assert entry["rmse"] == 0.5
        assert entry["failures"] == 1
        assert math.isfinite(entry["options_per_second"])


class TestRendering:
    def test_render_contains_cells_and_pareto_marks(self, tmp_path):
        store = store_with(tmp_path, [
            done_row("a", rmse=1e-6, opts_s=100.0, opts_j=10.0),
            done_row("b", rmse=1e-3, opts_s=50.0, opts_j=5.0),
        ])
        text = render_frontier(frontier_report(store))
        assert "a" in text and "b" in text
        assert "*" in text  # the pareto marker column
        assert "rmse" in text
