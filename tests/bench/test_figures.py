"""Unit tests for the ASCII figure renderer."""

import pytest

from repro.bench.figures import ascii_plot
from repro.errors import ReproError


class TestAsciiPlot:
    def test_basic_structure(self):
        text = ascii_plot([1, 10, 100], {"a": [1.0, 10.0, 100.0]},
                          width=20, height=5, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert sum(1 for l in lines if l.startswith("  |")) == 5
        assert any(l.startswith("  +--") for l in lines)
        assert "o = a" in lines[-1]

    def test_monotone_series_rises_left_to_right(self):
        text = ascii_plot([1, 10, 100, 1000], {"a": [1, 10, 100, 1000]},
                          width=40, height=8)
        rows = [l[3:] for l in text.splitlines() if l.startswith("  |")]
        first_col = min(i for row in rows for i, c in enumerate(row)
                        if c == "o")
        # the left-most marker sits in the bottom row
        assert rows[-1].find("o") == first_col

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_plot([1, 10], {"a": [1, 2], "b": [3, 4]})
        assert "o = a" in text and "x = b" in text

    def test_flat_series_allowed(self):
        text = ascii_plot([1, 10], {"flat": [5.0, 5.0]})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {})
        with pytest.raises(ReproError):
            ascii_plot([0, 2], {"a": [1, 2]})
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {"a": [1]})
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {"a": [1, -2]})

    def test_axis_labels_present(self):
        text = ascii_plot([1, 10], {"a": [1, 10]}, x_label="work",
                          y_label="error")
        assert "work" in text and "error" in text
