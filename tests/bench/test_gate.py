"""The shared bench envelope (repro-bench/v2) and the regression gate."""

import json

import pytest

from repro.bench.gate import (
    BENCH_ENVELOPE_SCHEMA,
    BENCH_ENVELOPE_V1,
    check_throughput_regression,
    git_revision,
    host_info,
    load_benchmark,
    make_envelope,
    write_benchmark,
)
from repro.errors import ReproError


def bench_document(rate=1000.0, **config):
    cfg = {"kernel": "iv_b", "steps": 64, "backend": "numpy"}
    cfg.update(config)
    return make_envelope(
        "repro-bench-engine/v4", "repro-stats/v5", cfg,
        results=[{"options": 16,
                  "runs": [{"workers": 1, "fused_greeks": 0,
                            "options_per_second": rate}]}])


class TestEnvelope:
    def test_make_envelope_shape(self):
        document = bench_document()
        assert document["schema"] == "repro-bench-engine/v4"
        assert document["envelope"] == BENCH_ENVELOPE_SCHEMA
        assert document["stats_schema"] == "repro-stats/v5"
        assert document["config"]["kernel"] == "iv_b"
        assert document["results"][0]["options"] == 16

    def test_extra_keys_land_top_level(self):
        document = make_envelope("s/v1", "st/v1", {}, [],
                                 scaling={"workers": 4})
        assert document["scaling"] == {"workers": 4}

    def test_host_block(self):
        host = host_info()
        assert set(host) == {"cpu_count", "platform", "python",
                             "numpy", "git"}
        assert host["cpu_count"] >= 1
        # inside this checkout the revision resolves to a hex SHA
        assert host["git"] is None or len(host["git"]) == 40

    def test_git_revision_degrades_to_none(self):
        revision = git_revision()
        assert revision is None or int(revision, 16) >= 0

    def test_harnesses_all_stamp_the_envelope(self):
        # the four harness modules must build documents through
        # make_envelope, not private copies of the scaffolding
        import repro.bench.engine_bench as engine_bench
        import repro.bench.greeks_bench as greeks_bench
        import repro.bench.service_bench as service_bench
        import repro.bench.stream_bench as stream_bench
        for module in (engine_bench, greeks_bench, service_bench,
                       stream_bench):
            assert module.make_envelope is make_envelope
            assert module.write_benchmark is write_benchmark


class TestLoad:
    def test_write_load_round_trip(self, tmp_path):
        document = bench_document()
        path = write_benchmark(document, tmp_path / "bench.json")
        assert load_benchmark(path) == document

    def test_pre_envelope_file_is_tagged_v1(self, tmp_path):
        legacy = {"schema": "repro-bench-engine/v3", "results": []}
        path = tmp_path / "old.json"
        path.write_text(json.dumps(legacy))
        loaded = load_benchmark(path)
        assert loaded["envelope"] == BENCH_ENVELOPE_V1
        assert loaded["schema"] == "repro-bench-engine/v3"

    def test_v2_file_keeps_its_envelope(self, tmp_path):
        path = write_benchmark(bench_document(), tmp_path / "new.json")
        assert load_benchmark(path)["envelope"] == BENCH_ENVELOPE_SCHEMA

    def test_non_object_document_refused(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ReproError, match="JSON object"):
            load_benchmark(path)

    def test_shipped_baselines_still_load(self):
        # the quick baselines in benchmarks/ predate the envelope; the
        # v1 shim must keep every one of them loadable
        from pathlib import Path
        baselines = sorted(
            Path(__file__).resolve().parents[2].glob(
                "benchmarks/BENCH_*.json"))
        for path in baselines:
            loaded = load_benchmark(path)
            assert loaded["envelope"] in (BENCH_ENVELOPE_V1,
                                          BENCH_ENVELOPE_SCHEMA)


class TestRegressionGate:
    def test_equal_documents_pass(self):
        assert check_throughput_regression(bench_document(),
                                           bench_document()) == []

    def test_small_dip_passes(self):
        current = bench_document(rate=750.0)
        assert check_throughput_regression(current,
                                           bench_document(1000.0)) == []

    def test_large_regression_fails(self):
        current = bench_document(rate=500.0)
        failures = check_throughput_regression(current,
                                               bench_document(1000.0))
        assert len(failures) == 1
        assert "below" in failures[0]

    def test_config_mismatch_is_not_comparable(self):
        failures = check_throughput_regression(
            bench_document(), bench_document(steps=128))
        assert len(failures) == 1
        assert "not comparable" in failures[0]

    def test_unmatched_keys_are_skipped(self):
        baseline = bench_document()
        baseline["results"][0]["options"] = 9999  # different batch size
        assert check_throughput_regression(bench_document(),
                                           baseline) == []
