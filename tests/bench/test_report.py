"""Unit tests for the one-shot report generator."""

import pytest

from repro.bench.report import REPORT_SECTIONS, ReportSection, generate_report


@pytest.fixture(scope="module")
def fast_sections():
    """Cheap subset (skips the N=1024 accuracy batches)."""
    return tuple(s for s in REPORT_SECTIONS
                 if s.experiment_id in ("E1", "E6", "E7", "E9", "E11"))


def test_report_structure(fast_sections):
    report = generate_report(accuracy_options=5, sections=fast_sections)
    assert report.startswith("# Reproduction report")
    for section in fast_sections:
        assert f"## {section.experiment_id} — {section.title}" in report
        assert section.paper_anchor in report
    # rendered tables are fenced
    assert report.count("```") == 2 * len(fast_sections)


def test_sections_carry_experiment_ids():
    ids = [s.experiment_id for s in REPORT_SECTIONS]
    assert ids == sorted(ids, key=lambda e: int(e[1:]))
    assert "E2" in ids and "E10" in ids


def test_custom_section():
    section = ReportSection("E99", "custom", "nowhere", lambda n: f"n={n}")
    report = generate_report(accuracy_options=7, sections=(section,))
    assert "n=7" in report
    assert "E99 — custom" in report


def test_report_contains_paper_numbers(fast_sections):
    report = generate_report(accuracy_options=5, sections=fast_sections)
    assert "98.27" in report   # Table I clock
    assert "14" in report      # the ablation factor
