"""Unit tests for the de Schryver benchmark methodology."""

import numpy as np
import pytest

from repro.bench.methodology import (
    CRR_BINOMIAL_MODEL,
    AcceleratorBenchmark,
    PricingProblem,
    Solution,
)
from repro.api import price
from repro.core import BinomialAccelerator
from repro.errors import ReproError
from repro.finance import generate_batch

STEPS = 64


@pytest.fixture(scope="module")
def workload():
    return generate_batch(n_options=6, seed=2).options


@pytest.fixture(scope="module")
def problem(workload):
    return PricingProblem(
        name="test problem", options=workload, steps=STEPS,
        max_rmse=1e-6, max_power_w=100.0, min_options_per_second=10.0,
    )


def exact_solution(name="exact", rate=1000.0, power=10.0):
    return Solution(
        name=name,
        price_fn=lambda options, steps: price(options, steps=steps).prices,
        options_per_second=rate,
        power_w=power,
    )


def noisy_solution(noise=1e-3, rate=1e6, power=50.0):
    def fn(options, steps):
        return price(options, steps=steps).prices + noise

    return Solution(name="noisy", price_fn=fn,
                    options_per_second=rate, power_w=power)


class TestProblemValidation:
    def test_needs_workload(self):
        with pytest.raises(ReproError):
            PricingProblem(name="p", options=())

    def test_positive_rmse(self, workload):
        with pytest.raises(ReproError):
            PricingProblem(name="p", options=workload, max_rmse=0.0)


class TestEvaluation:
    def test_exact_solution_feasible(self, problem):
        bench = AcceleratorBenchmark(problem)
        ev = bench.evaluate(exact_solution())
        assert ev.rmse == 0.0
        assert ev.feasible
        assert ev.joules_per_option == pytest.approx(10.0 / 1000.0)

    def test_accuracy_gate(self, problem):
        bench = AcceleratorBenchmark(problem)
        ev = bench.evaluate(noisy_solution(noise=1e-2))
        assert not ev.meets_accuracy
        assert not ev.feasible

    def test_power_gate(self, problem):
        bench = AcceleratorBenchmark(problem)
        ev = bench.evaluate(exact_solution(power=500.0))
        assert ev.meets_accuracy
        assert not ev.meets_power

    def test_throughput_gate(self, problem):
        bench = AcceleratorBenchmark(problem)
        ev = bench.evaluate(exact_solution(rate=1.0))
        assert not ev.meets_throughput

    def test_shape_mismatch_rejected(self, problem):
        bench = AcceleratorBenchmark(problem)
        bad = Solution(name="bad",
                       price_fn=lambda options, steps: np.zeros(2),
                       options_per_second=100.0, power_w=10.0)
        with pytest.raises(ReproError, match="prices"):
            bench.evaluate(bad)

    def test_energy_accounting(self, problem):
        bench = AcceleratorBenchmark(problem)
        ev = bench.evaluate(exact_solution(rate=100.0, power=20.0))
        assert ev.time_s == pytest.approx(len(problem.options) / 100.0)
        assert ev.energy_j == pytest.approx(ev.time_s * 20.0)


class TestRanking:
    def test_feasible_first_then_joules(self, problem):
        bench = AcceleratorBenchmark(problem)
        solutions = [
            exact_solution("slow-efficient", rate=100.0, power=1.0),   # 10 mJ
            exact_solution("fast-hungry", rate=10_000.0, power=90.0),  # 9 mJ
            noisy_solution(),                                          # infeasible
        ]
        ranking = bench.rank(solutions)
        assert [e.solution.name for e in ranking] == [
            "fast-hungry", "slow-efficient", "noisy"]

    def test_report_renders(self, problem):
        bench = AcceleratorBenchmark(problem)
        text = bench.report(bench.rank([exact_solution(), noisy_solution()]))
        assert "de Schryver" in text
        assert "mJ/option" in text
        assert "no (accuracy)" in text


class TestAcceleratorAdapter:
    def test_from_accelerator(self, problem):
        acc = BinomialAccelerator(platform="cpu", kernel="reference",
                                  steps=STEPS)
        solution = Solution.from_accelerator(acc, name="cpu ref")
        bench = AcceleratorBenchmark(problem, CRR_BINOMIAL_MODEL)
        ev = bench.evaluate(solution)
        assert ev.rmse < 1e-12  # the reference software IS the reference
        assert solution.power_w == pytest.approx(120.0)


class TestConstraintScenarios:
    def test_workstation_budget_eliminates_everything(self, workload):
        """Under the strict 10 W workstation budget no Table II
        configuration is feasible — the paper's unresolved problem,
        expressed in the benchmark's own terms."""
        strict = PricingProblem(
            name="strict workstation", options=workload, steps=STEPS,
            max_rmse=1e-4, max_power_w=10.0, min_options_per_second=10.0,
        )
        bench = AcceleratorBenchmark(strict)
        evaluations = bench.rank([
            exact_solution("fpga-like", rate=2400.0, power=17.0),
            exact_solution("gpu-like", rate=8900.0, power=140.0),
        ])
        assert not any(e.feasible for e in evaluations)
        assert all(not e.meets_power for e in evaluations)

    def test_relaxed_accuracy_admits_noisy_solutions(self, workload):
        relaxed = PricingProblem(
            name="relaxed", options=workload, steps=STEPS,
            max_rmse=1e-1, min_options_per_second=10.0,
        )
        bench = AcceleratorBenchmark(relaxed)
        ev = bench.evaluate(noisy_solution(noise=1e-2))
        assert ev.meets_accuracy
