"""Tests for the experiment drivers and the published-data tables."""

import numpy as np
import pytest

from repro.bench import (
    accuracy_experiment,
    published,
    readback_ablation,
    render_comparison,
    render_table,
    saturation_sweep,
    table1,
    table2,
    volatility_curve_usecase,
)
from repro.bench.experiments import energy_workarounds


class TestPublishedData:
    def test_table2_internal_consistency(self):
        """options/J ~= options/s / TDP for the measured columns."""
        powers = {"FPGA (DE4)": {"Kernel IV.A": 15.0, "Kernel IV.B": 17.0},
                  "GPU (GTX660 Ti)": 140.0, "Xeon X5450 (1 core)": 120.0}
        for col in published.TABLE2:
            if col.options_per_joule is None:
                continue
            if "FPGA" in col.platform:
                power = powers["FPGA (DE4)"][col.label]
            else:
                power = powers[col.platform]
            implied = col.options_per_second / power
            assert implied == pytest.approx(col.options_per_joule, rel=0.20), col

    def test_tree_nodes_consistency(self):
        """nodes/s ~= options/s * N(N+1)/2 for the paper's own rows."""
        nodes = 1024 * 1025 / 2
        for col in published.TABLE2[:7]:
            implied = col.options_per_second * nodes
            assert implied == pytest.approx(col.tree_nodes_per_second,
                                            rel=0.12), col

    def test_table1_keys(self):
        assert set(published.TABLE1) == {"iv_a", "iv_b"}


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), ((1, 2), (30, 4)))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_comparison_ratio(self):
        text = render_comparison("t", ("x",), {"x": 10.0}, {"x": 11.0})
        assert "1.10x" in text


class TestDrivers:
    def test_table1_driver(self):
        result = table1()
        assert set(result.compiled) == {"iv_a", "iv_b"}
        assert "Table I" in result.rendered
        assert result.compiled["iv_a"].resources.fits()

    def test_table2_driver_small(self):
        result = table2(accuracy_options=10, steps=128)
        assert len(result.rows) == 9  # 7 measured + 2 literature
        assert result.rows[-1].label.startswith("[10]")
        assert "Table II" in result.rendered
        # FPGA IV.B row shows the pow defect even at reduced size
        fpga_b = result.rows[2]
        assert fpga_b.rmse_display != "0"

    def test_saturation_driver(self):
        result = saturation_sweep(workloads=(100, 100_000, 10_000_000),
                                  steps=1024)
        fpga = result.series["IV.B FPGA"]
        assert fpga[0] < fpga[1] < fpga[2]
        gpu = result.series["IV.B GPU double"]
        # GPU saturates later: at 1e5 it is further from its peak
        assert gpu[1] / gpu[2] < fpga[1] / fpga[2]

    def test_readback_driver(self):
        result = readback_ablation()
        assert result.speedup_gpu == pytest.approx(14.4, rel=0.1)
        assert result.gpu_full == pytest.approx(58.4, rel=0.05)
        assert result.fpga_result_only > result.fpga_full

    def test_accuracy_driver_small(self):
        result = accuracy_experiment(n_options=10, steps=256)
        assert result.rmses["IV.B FPGA double (flawed pow)"] > \
            result.rmses["IV.B GPU double (exact pow)"]
        assert result.rmses["IV.A (host leaves, exact)"] < 1e-10
        assert result.classes["IV.B GPU double (exact pow)"] == "0"

    def test_energy_driver(self):
        result = energy_workarounds()
        assert result.budget_point.power_w == pytest.approx(10.0, abs=0.05)
        powers = [p.power_w for p in result.points]
        assert powers == sorted(powers, reverse=True)

    def test_usecase_driver_small(self):
        result = volatility_curve_usecase(n_strikes=3, steps=64)
        assert result.max_vol_error < 0.01
        assert result.meets_throughput
        assert result.modeled_time_s < 1.0
        assert result.total_engine_evaluations >= 3
