"""Tests for the repro.api front door and the deprecation shims."""

import numpy as np
import pytest

import repro
from repro import PriceResult, price
from repro.core.accelerator import BinomialAccelerator
from repro.core.batch_sim import simulate_kernel_b_batch
from repro.engine import ALWAYS, EngineConfig, FaultKind, FaultPlan
from repro.engine.engine import PricingEngine
from repro.errors import FinanceError, ReproError
from repro.finance import generate_batch
from repro.finance.binomial import price_binomial_batch
from repro.finance import price_binomial

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=12, seed=99).options)


class TestEngineRoute:
    def test_default_route_is_engine(self, batch):
        result = price(batch, steps=STEPS)
        assert isinstance(result, PriceResult)
        assert result.route == "engine"
        assert result.stats is not None and result.modeled is None
        assert result.stats.options == len(batch)
        assert len(result) == len(batch)
        assert result.options_per_second == result.stats.options_per_second

    def test_reference_kernel_matches_scalar_pricer(self, batch):
        prices = price(batch, steps=STEPS).prices
        expected = [price_binomial(o, STEPS).price for o in batch]
        assert np.allclose(prices, expected, rtol=1e-12, atol=1e-12)

    def test_iv_b_kernel_matches_simulator(self, batch):
        result = price(batch, steps=STEPS, kernel="iv_b")
        assert np.array_equal(result.prices,
                              simulate_kernel_b_batch(batch, STEPS))

    def test_workers_shorthand(self, batch):
        result = price(batch, steps=STEPS, workers=2)
        assert result.stats.workers == 2

    def test_config_and_workers_conflict(self, batch):
        with pytest.raises(ReproError):
            price(batch, steps=STEPS, workers=2,
                  config=EngineConfig(workers=2))

    def test_empty_batch(self):
        result = price([], steps=STEPS)
        assert len(result) == 0 and result.route == "engine"
        assert result.options_per_second is None

    def test_single_precision(self, batch):
        single = price(batch, steps=STEPS, kernel="iv_b",
                       precision="single").prices
        double = price(batch, steps=STEPS, kernel="iv_b").prices
        assert not np.array_equal(single, double)

    def test_strict_reraises_original_exception(self, batch):
        bad = batch[:4]
        plan = FaultPlan.single(1, FaultKind.RAISE, attempts=ALWAYS, seed=0)
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(backoff_base_s=0.0,
                                               max_retries=1),
                           faults=plan) as engine:
            result = engine.run(bad, STEPS)
        # the engine quarantines; the strict façade on the same input
        # class re-raises instead (here via invalid market data, which
        # the façade cannot pre-screen)
        assert len(result.failures) == 1

    @staticmethod
    def _poison(batch, index):
        """Swap in an Option whose NaN spot bypassed construction
        validation, the way a row deserialised from a feed would."""
        from repro.finance import ExerciseStyle, Option, OptionType

        bad = object.__new__(Option)
        fields = dict(spot=float("nan"), strike=100.0, rate=0.02,
                      volatility=0.3, maturity=1.0,
                      option_type=OptionType.PUT,
                      exercise=ExerciseStyle.AMERICAN, dividend_yield=0.0)
        for name, value in fields.items():
            object.__setattr__(bad, name, value)
        poisoned = list(batch)
        poisoned[index] = bad
        return poisoned

    def test_strict_raises_on_bad_market_data(self, batch):
        with pytest.raises(FinanceError):
            price(self._poison(batch, 3), steps=STEPS, kernel="iv_b")

    def test_non_strict_returns_nan_plus_records(self, batch):
        result = price(self._poison(batch, 3), steps=STEPS, kernel="iv_b",
                       strict=False)
        assert np.isnan(result.prices[3])
        assert len(result.failures) == 1
        assert result.failures[0].index == 3
        clean = np.delete(result.prices, 3)
        assert np.all(np.isfinite(clean))


class TestAcceleratorRoute:
    def test_fpga_device(self, batch):
        result = price(batch, steps=STEPS, device="fpga")
        assert result.route == "accelerator"
        assert result.modeled is not None and result.stats is None
        assert result.modeled.energy_joules > 0
        assert result.options_per_second == result.modeled.options_per_second

    def test_cpu_device_defaults_to_reference(self, batch):
        result = price(batch, steps=STEPS, device="cpu")
        expected = [price_binomial(o, STEPS).price for o in batch]
        assert np.allclose(result.prices, expected, rtol=1e-12, atol=1e-12)

    def test_existing_accelerator_not_closed(self, batch):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                  steps=STEPS)
        try:
            first = price(batch, steps=STEPS, device=acc)
            second = price(batch, steps=STEPS, device=acc)  # still usable
            assert np.array_equal(first.prices, second.prices)
        finally:
            acc.close()

    def test_unknown_device_rejected(self, batch):
        with pytest.raises(ReproError):
            price(batch, steps=STEPS, device="asic")

    def test_per_option_steps_rejected(self, batch):
        with pytest.raises(ReproError):
            price(batch, steps=[STEPS] * len(batch), device="fpga")


class TestPackageSurface:
    def test_price_exported_at_top_level(self):
        assert repro.price is price
        assert repro.PriceResult is PriceResult
        assert "price" in repro.__all__

    def test_migration_table_in_docstring(self):
        import repro.api
        assert "price_binomial_batch" in repro.api.__doc__
        assert "Migration" in repro.api.__doc__


class TestRemovedWrappers:
    def test_price_binomial_batch_is_a_raising_stub(self, batch):
        with pytest.raises(ReproError, match="removed in repro 2.0"):
            price_binomial_batch(batch, steps=STEPS)

    def test_stub_accepts_any_legacy_signature(self, batch):
        # every historical calling convention hits the migration
        # message, never a TypeError about unexpected arguments
        for kwargs in ({"workers": 2}, {"dtype": np.float32}, {}):
            with pytest.raises(ReproError, match="repro.price"):
                price_binomial_batch(batch, steps=STEPS, **kwargs)

    def test_facade_covers_legacy_precisions(self, batch):
        double = price(batch, steps=STEPS).prices
        single = price(batch, steps=STEPS, precision="single").prices
        assert double.shape == single.shape == (len(batch),)
        assert np.all(np.isfinite(double))


class TestPricingRequest:
    def _request(self, batch, **overrides):
        from repro.api import PricingRequest
        kwargs = dict(options=tuple(batch), steps=STEPS, kernel="iv_b")
        kwargs.update(overrides)
        return PricingRequest(**kwargs)

    def test_canonical_fields(self, batch):
        request = self._request(batch)
        assert len(request) == len(batch)
        assert request.steps_per_option() == tuple([STEPS] * len(batch))
        assert request.batch_key == ("iv_b", "double", "crr", "auto",
                                     "price")

    def test_greeks_key_includes_bumps(self, batch):
        request = self._request(batch, task="greeks", bump_vol=2e-3)
        assert request.batch_key[-2:] == (2e-3, 1e-4)

    def test_batch_key_includes_backend(self, batch):
        pinned = self._request(batch, backend="numpy")
        assert pinned.batch_key == ("iv_b", "double", "crr", "numpy",
                                    "price")
        assert pinned.batch_key != self._request(batch).batch_key

    def test_per_option_steps(self, batch):
        depths = tuple(range(2, 2 + len(batch)))
        request = self._request(batch, steps=depths)
        assert request.steps_per_option() == depths

    @pytest.mark.parametrize("overrides", [
        {"options": ()},
        {"kernel": "nope"},
        {"task": "nope"},
        {"steps": 1},                       # iv_b needs >= 2
        {"task": "greeks", "steps": 2},     # greeks needs >= 3
        {"steps": (16,)},                   # length mismatch
        {"workers": 0},
        {"backend": "nope"},
        {"task": "greeks_fused"},           # internal scheduling shape
        {"task": "greeks", "bump_vol": 0.0},
        {"kernel": "iv_b", "family": "jarrow-rudd"},
        {"family": "nope"},
        {"deadline_ms": 0.0},
        {"deadline_ms": -5.0},
        {"priority": "urgent"},
    ])
    def test_validation(self, batch, overrides):
        with pytest.raises(ReproError):
            self._request(batch, **overrides)

    def test_delivery_knobs_stay_out_of_batch_key(self, batch):
        # deadline and priority shape delivery, never the numbers —
        # requests differing only there must coalesce together
        plain = self._request(batch)
        urgent = self._request(batch, deadline_ms=250.0, priority="high")
        assert plain.batch_key == urgent.batch_key

    def test_run_request_matches_price(self, batch):
        from repro.api import run_request
        from repro.engine.engine import PricingEngine

        request = self._request(batch)
        with PricingEngine(kernel="iv_b") as engine:
            result = run_request(engine, request)
        assert np.array_equal(result.prices,
                              price(batch, steps=STEPS, kernel="iv_b").prices)


class TestResultHierarchy:
    def test_shared_batch_result_base(self, batch):
        from repro import BatchResult, GreeksResult, ServiceResult
        from repro.api import greeks

        assert issubclass(PriceResult, BatchResult)
        assert issubclass(GreeksResult, BatchResult)
        assert issubclass(ServiceResult, BatchResult)

        priced = price(batch, steps=STEPS)
        bumped = greeks(batch, steps=STEPS)
        for result in (priced, bumped):
            assert isinstance(result, BatchResult)
            assert len(result) == len(batch)
            assert result.failures == ()
            assert result.options_per_second > 0

    def test_greeks_columns(self, batch):
        from repro.api import greeks

        result = greeks(batch, steps=STEPS, kernel="iv_b")
        for column in ("delta", "gamma", "theta", "vega", "rho"):
            assert getattr(result, column).shape == (len(batch),)


class TestSharedEngines:
    def test_repeat_calls_reuse_one_engine(self, batch):
        from repro.api import _shared_engines, close_shared_engines

        close_shared_engines()
        price(batch, steps=STEPS, kernel="iv_b")
        engines = dict(_shared_engines)
        price(batch, steps=STEPS, kernel="iv_b")
        assert dict(_shared_engines) == engines  # no rebuild
        assert close_shared_engines() == 1
        assert not _shared_engines

    def test_closed_shared_engine_is_rebuilt(self, batch):
        from repro.api import _shared_engines, close_shared_engines

        close_shared_engines()
        first = price(batch, steps=STEPS, kernel="iv_b").prices
        for engine, _lock in _shared_engines.values():
            engine.close()
        second = price(batch, steps=STEPS, kernel="iv_b").prices
        assert np.array_equal(first, second)
        close_shared_engines()

    def test_caller_engine_route(self, batch):
        from repro.api import greeks
        from repro.engine.engine import PricingEngine

        with PricingEngine(kernel="iv_b") as engine:
            result = price(batch, steps=STEPS, engine=engine)
            again = greeks(batch, steps=STEPS, engine=engine)
            assert not engine.closed  # the facade borrows, never closes
        assert np.array_equal(result.prices,
                              price(batch, steps=STEPS, kernel="iv_b").prices)
        assert again.delta is not None

    def test_engine_conflicts_with_config(self, batch):
        from repro.engine.engine import PricingEngine

        with PricingEngine(kernel="iv_b") as engine:
            with pytest.raises(ReproError):
                price(batch, steps=STEPS, engine=engine, workers=2)

    def test_close_shared_engines_is_registered_atexit(self):
        # a fresh interpreter, so the import-time registration is
        # observable without reloading repro.api in this process
        import os
        import subprocess
        import sys

        code = (
            "import atexit\n"
            "names = []\n"
            "real = atexit.register\n"
            "def spy(fn, *args, **kwargs):\n"
            "    names.append(getattr(fn, '__name__', '?'))\n"
            "    return real(fn, *args, **kwargs)\n"
            "atexit.register = spy\n"
            "import repro.api\n"
            "assert 'close_shared_engines' in names, names\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              env=dict(os.environ), capture_output=True,
                              text=True)
        assert proc.returncode == 0, proc.stderr

    def test_manual_close_is_idempotent_with_atexit(self, batch):
        from repro.api import _shared_engines, close_shared_engines

        close_shared_engines()
        price(batch, steps=STEPS, kernel="iv_b")
        assert close_shared_engines() == 1
        # the second (atexit-time) invocation finds nothing and is a
        # clean no-op — double shutdown must never raise
        assert close_shared_engines() == 0
        assert not _shared_engines
