"""Shared fixtures for the repro test suite."""

import pytest

from repro.finance import ExerciseStyle, Option, OptionType, generate_batch
from repro.opencl import Context, Device, DeviceType


@pytest.fixture
def put_option():
    """An at-the-money American put (early exercise matters)."""
    return Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.30,
                  maturity=1.0, option_type=OptionType.PUT,
                  exercise=ExerciseStyle.AMERICAN)


@pytest.fixture
def call_option():
    """An in-the-money American call (no dividends: equals European)."""
    return Option(spot=100.0, strike=95.0, rate=0.04, volatility=0.25,
                  maturity=0.75, option_type=OptionType.CALL,
                  exercise=ExerciseStyle.AMERICAN)


@pytest.fixture
def euro_put():
    return Option(spot=100.0, strike=110.0, rate=0.02, volatility=0.20,
                  maturity=0.5, option_type=OptionType.PUT,
                  exercise=ExerciseStyle.EUROPEAN)


@pytest.fixture
def small_batch():
    """Five deterministic synthetic options."""
    return list(generate_batch(n_options=5, seed=42).options)


@pytest.fixture
def toy_device():
    """A generic simulated device with zero-cost timing."""
    return Device("toy", DeviceType.ACCELERATOR, compute_units=2,
                  max_work_group_size=256, local_mem_bytes=64 * 1024)


@pytest.fixture
def toy_context(toy_device):
    return Context(toy_device)
