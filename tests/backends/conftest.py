"""Hermetic environment for the backend suite.

``REPRO_BACKEND`` deliberately overrides every in-code backend choice —
that is its job — so an ambient value (e.g. CI pinning tier-1 to the
NumPy path) would silently rewrite the explicit pins these tests are
about.  Strip it here; the tests that exercise the override itself set
it back via ``monkeypatch``.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_backend_override(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
