"""The legacy batch entry points are gone: the raising stubs name the
replacement, and the replacement produces the same values the wrappers
used to delegate to."""

import numpy as np
import pytest

import repro
from repro.core.accelerator import BinomialAccelerator
from repro.errors import ReproError
from repro.finance import generate_batch
from repro.finance.binomial import price_binomial_batch

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=6, seed=77).options)


class TestPriceBinomialBatch:
    def test_stub_raises_and_names_replacement(self, batch):
        with pytest.raises(ReproError, match=r"removed in repro 2\.0"):
            price_binomial_batch(batch, steps=STEPS)
        with pytest.raises(ReproError, match=r"repro\.price"):
            price_binomial_batch(batch, steps=STEPS)

    def test_stub_still_importable_from_finance(self):
        # the import path survives removal so stragglers hit the
        # migration message, not an ImportError
        assert repro.finance.price_binomial_batch is price_binomial_batch

    def test_replacement_covers_the_old_contract(self, batch):
        result = repro.price(batch, steps=STEPS)
        assert result.prices.shape == (len(batch),)
        assert np.all(np.isfinite(result.prices))


class TestAcceleratorPriceBatch:
    def test_stub_raises_and_names_replacement(self, batch):
        accelerator = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                          steps=STEPS)
        try:
            with pytest.raises(ReproError, match=r"removed in repro 2\.0"):
                accelerator.price_batch(batch)
            with pytest.raises(ReproError, match=r"device=<accelerator>"):
                accelerator.price_batch(batch)
            # the replacement runs on the same accelerator instance
            modeled = repro.price(batch, steps=STEPS,
                                  device=accelerator).modeled
        finally:
            accelerator.close()
        np.testing.assert_array_equal(
            modeled.prices,
            repro.price(batch, steps=STEPS, device="fpga").prices)
