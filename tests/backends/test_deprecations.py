"""The legacy entry points warn, name their replacement and the
removal release, and still delegate to the engine path bit-for-bit."""

import numpy as np
import pytest

import repro
from repro.core.accelerator import BinomialAccelerator
from repro.finance import generate_batch
from repro.finance.binomial import price_binomial_batch

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=6, seed=77).options)


class TestPriceBinomialBatch:
    def test_warning_names_removal_release(self, batch):
        with pytest.warns(DeprecationWarning,
                          match=r"removed in repro 2\.0"):
            price_binomial_batch(batch, steps=STEPS)

    def test_warning_names_replacement(self, batch):
        with pytest.warns(DeprecationWarning, match=r"repro\.api\.price"):
            legacy = price_binomial_batch(batch, steps=STEPS)
        np.testing.assert_array_equal(
            legacy, repro.price(batch, steps=STEPS).prices)


class TestAcceleratorPriceBatch:
    def test_warning_names_removal_release(self, batch):
        accelerator = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                          steps=STEPS)
        try:
            with pytest.warns(DeprecationWarning,
                              match=r"removed in repro 2\.0"):
                legacy = accelerator.price_batch(batch)
            with pytest.warns(DeprecationWarning,
                              match=r"device=<accelerator>"):
                accelerator.price_batch(batch)
        finally:
            accelerator.close()
        np.testing.assert_array_equal(
            legacy.prices,
            repro.price(batch, steps=STEPS, device="fpga").prices)
