"""Backend selection: registry semantics, env override, config wiring."""

import numpy as np
import pytest

from repro.backends import (
    AUTO_ORDER,
    BACKENDS,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.backends.numba_backend import NumbaBackend
from repro.engine import EngineConfig, PricingEngine
from repro.errors import BackendUnavailableError, EngineError, ReproError
from repro.finance import generate_batch

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=6, seed=5).options)


class TestRegistry:
    def test_numpy_always_available(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert not backend.compiled
        assert "numpy" in available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown backend"):
            get_backend("opencl")

    def test_get_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_auto_prefers_the_fastest_available(self):
        resolved = resolve_backend("auto")
        assert resolved.name == available_backends()[0]
        assert tuple(AUTO_ORDER)[-1] == "numpy"  # the floor

    def test_numba_unavailable_raises_with_install_hint(self):
        if NumbaBackend.available():
            pytest.skip("numba importable in this environment")
        with pytest.raises(BackendUnavailableError,
                           match=r"repro\[compiled\]"):
            get_backend("numba")

    def test_env_override_beats_requested_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend("auto").name == "numpy"
        # the operator's override also beats an explicit program choice
        for requested in available_backends():
            assert resolve_backend(requested).name == "numpy"

    def test_env_override_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fpga")
        with pytest.raises(ReproError, match="unknown backend"):
            resolve_backend("auto")

    def test_blank_env_override_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert resolve_backend("numpy").name == "numpy"


class TestEngineWiring:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(EngineError, match="backend"):
            EngineConfig(backend="opencl")

    def test_config_accepts_every_registry_name(self):
        for name in BACKENDS:
            assert EngineConfig(backend=name).backend == name

    def test_engine_construction_fails_fast_when_unavailable(self):
        if NumbaBackend.available():
            pytest.skip("numba importable in this environment")
        with pytest.raises(BackendUnavailableError):
            PricingEngine(kernel="iv_b",
                          config=EngineConfig(backend="numba"))

    def test_stats_and_describe_carry_backend_identity(self, batch):
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(backend="numpy")) as engine:
            assert "backend=numpy" in engine.describe()
            result = engine.run(batch, STEPS)
        assert result.stats.backend == "numpy"
        assert result.stats.backend_compile_seconds == 0.0
        assert result.stats.as_dict()["backend"] == "numpy"

    def test_env_override_reaches_the_engine(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        with PricingEngine(kernel="iv_b") as engine:  # config says auto
            result = engine.run(batch, STEPS)
        assert result.stats.backend == "numpy"

    def test_auto_engine_matches_pinned_numpy(self, batch):
        """Whatever auto resolves to, the numbers are the NumPy bits."""
        with PricingEngine(kernel="iv_b") as engine:
            auto = engine.run(batch, STEPS)
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(backend="numpy")) as engine:
            pinned = engine.run(batch, STEPS)
        np.testing.assert_array_equal(auto.prices, pinned.prices)


class TestRequestWiring:
    def test_request_rejects_unknown_backend(self, batch):
        from repro.api import PricingRequest

        with pytest.raises(ReproError):
            PricingRequest(options=tuple(batch), steps=STEPS,
                           kernel="iv_b", backend="opencl")

    def test_price_facade_accepts_backend(self, batch):
        import repro

        pinned = repro.price(batch, steps=STEPS, kernel="iv_b",
                             backend="numpy")
        default = repro.price(batch, steps=STEPS, kernel="iv_b")
        assert pinned.stats.backend == "numpy"
        np.testing.assert_array_equal(pinned.prices, default.prices)
