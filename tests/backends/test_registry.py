"""Backend selection: registry semantics, env override, config wiring."""

import warnings

import numpy as np
import pytest

from repro.backends import (
    AUTO_ORDER,
    BACKENDS,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.backends.numba_backend import NumbaBackend
from repro.engine import EngineConfig, PricingEngine
from repro.errors import BackendUnavailableError, EngineError, ReproError
from repro.finance import generate_batch

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=6, seed=5).options)


class TestRegistry:
    def test_numpy_always_available(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert not backend.compiled
        assert "numpy" in available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown backend"):
            get_backend("opencl")

    def test_get_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_auto_prefers_the_fastest_available(self):
        resolved = resolve_backend("auto")
        assert resolved.name == available_backends()[0]
        assert tuple(AUTO_ORDER)[-1] == "numpy"  # the floor

    def test_numba_unavailable_raises_with_install_hint(self):
        if NumbaBackend.available():
            pytest.skip("numba importable in this environment")
        with pytest.raises(BackendUnavailableError,
                           match=r"repro\[compiled\]"):
            get_backend("numba")

    def test_env_override_beats_requested_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend("auto").name == "numpy"
        # the operator's override also beats an explicit program choice
        for requested in available_backends():
            assert resolve_backend(requested).name == "numpy"

    def test_env_override_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fpga")
        with pytest.raises(ReproError, match="unknown backend"):
            resolve_backend("auto")

    def test_blank_env_override_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert resolve_backend("numpy").name == "numpy"


class TestEngineWiring:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(EngineError, match="backend"):
            EngineConfig(backend="opencl")

    def test_config_accepts_every_registry_name(self):
        for name in BACKENDS:
            assert EngineConfig(backend=name).backend == name

    def test_engine_construction_fails_fast_when_unavailable(self):
        if NumbaBackend.available():
            pytest.skip("numba importable in this environment")
        with pytest.raises(BackendUnavailableError):
            PricingEngine(kernel="iv_b",
                          config=EngineConfig(backend="numba"))

    def test_stats_and_describe_carry_backend_identity(self, batch):
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(backend="numpy")) as engine:
            assert "backend=numpy" in engine.describe()
            result = engine.run(batch, STEPS)
        assert result.stats.backend == "numpy"
        assert result.stats.backend_compile_seconds == 0.0
        assert result.stats.as_dict()["backend"] == "numpy"

    def test_env_override_reaches_the_engine(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        with PricingEngine(kernel="iv_b") as engine:  # config says auto
            result = engine.run(batch, STEPS)
        assert result.stats.backend == "numpy"

    def test_auto_engine_matches_pinned_numpy(self, batch):
        """Whatever auto resolves to, the numbers are the NumPy bits."""
        with PricingEngine(kernel="iv_b") as engine:
            auto = engine.run(batch, STEPS)
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(backend="numpy")) as engine:
            pinned = engine.run(batch, STEPS)
        np.testing.assert_array_equal(auto.prices, pinned.prices)


class TestRequestWiring:
    def test_request_rejects_unknown_backend(self, batch):
        from repro.api import PricingRequest

        with pytest.raises(ReproError):
            PricingRequest(options=tuple(batch), steps=STEPS,
                           kernel="iv_b", backend="opencl")

    def test_price_facade_accepts_backend(self, batch):
        import repro

        pinned = repro.price(batch, steps=STEPS, kernel="iv_b",
                             backend="numpy")
        default = repro.price(batch, steps=STEPS, kernel="iv_b")
        assert pinned.stats.backend == "numpy"
        np.testing.assert_array_equal(pinned.prices, default.prices)


class TestAutoFallbackHardening:
    """Satellite: a broken cnative toolchain must degrade *loudly*.

    ``auto`` has to land on NumPy when the compiler cannot produce a
    library, emit one RuntimeWarning per process, and bump the
    ``repro_backend_fallback_total`` counter — never raise, never
    silently pretend the fast path existed.
    """

    @pytest.fixture()
    def pristine_registry(self, monkeypatch, tmp_path):
        """Sabotage-safe registry: no caches, no on-disk .so, no numba.

        The compiled-library disk cache would mask a broken compiler
        (a prior good build satisfies the lookup without ever running
        ``cc``), so the cache root is pointed at an empty tmp dir; the
        per-process instance/failure/warned caches are snapshotted and
        restored so sabotage never leaks into other tests.
        """
        from repro.backends import registry

        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        saved = (dict(registry._instances), dict(registry._failures),
                 set(registry._fallbacks_warned))
        registry._instances.clear()
        registry._failures.clear()
        registry._fallbacks_warned.clear()
        yield registry
        registry._instances.clear()
        registry._failures.clear()
        registry._fallbacks_warned.clear()
        registry._instances.update(saved[0])
        registry._failures.update(saved[1])
        registry._fallbacks_warned.update(saved[2])

    def test_sabotaged_compiler_falls_back_to_numpy_with_warning(
            self, monkeypatch, pristine_registry):
        from repro.obs.keys import BACKEND_FALLBACK_TOTAL
        from repro.obs.metrics import get_registry

        monkeypatch.setenv("REPRO_CC", "false")  # exits 1 on any input
        before = get_registry().counter(BACKEND_FALLBACK_TOTAL).value(
            backend="cnative")
        with pytest.warns(RuntimeWarning, match="cnative.*unavailable"):
            backend = resolve_backend("auto")
        assert backend.name == "numpy"
        after = get_registry().counter(BACKEND_FALLBACK_TOTAL).value(
            backend="cnative")
        assert after == before + 1

    def test_fallback_warns_once_but_counts_every_resolution(
            self, monkeypatch, pristine_registry):
        from repro.obs.keys import BACKEND_FALLBACK_TOTAL
        from repro.obs.metrics import get_registry

        monkeypatch.setenv("REPRO_CC", "false")
        before = get_registry().counter(BACKEND_FALLBACK_TOTAL).value(
            backend="cnative")
        with pytest.warns(RuntimeWarning):
            resolve_backend("auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            resolve_backend("auto")
        after = get_registry().counter(BACKEND_FALLBACK_TOTAL).value(
            backend="cnative")
        assert after == before + 2

    def test_nonexistent_compiler_path_is_wrapped_not_raised(
            self, monkeypatch, pristine_registry):
        # an OSError from subprocess (missing binary) must surface as
        # BackendUnavailableError for the pinned path and as a clean
        # numpy fallback for auto
        monkeypatch.setenv("REPRO_CC", "/nonexistent/bin/cc-rot13")
        with pytest.raises(BackendUnavailableError, match="could not run"):
            get_backend("cnative")
        pristine_registry._failures.clear()
        with pytest.warns(RuntimeWarning):
            assert resolve_backend("auto").name == "numpy"
