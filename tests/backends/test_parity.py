"""Cross-backend bitwise parity: the KernelBackend contract.

The compiled roll loop (``cnative``) re-expresses the NumPy reference
path's per-element operation sequence as a scalar C loop compiled with
``-ffp-contract=off`` and no fast-math, so every elementwise op runs
in the same order on the same IEEE doubles/singles.  That licenses the
contract this file sweeps: **prices and captured levels are bitwise
identical** across backends for every kernel x family x exercise x
precision x depth combination the engine supports — not "close", the
same bits.  The result cache relies on it (backend is excluded from
the content key), so a single ULP here is a correctness bug, not a
tolerance question.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.cnative import CNativeBackend
from repro.core.batch_sim import (
    simulate_kernel_a_batch,
    simulate_kernel_b_batch,
)
from repro.core.faithful_math import EXACT_DOUBLE, EXACT_SINGLE
from repro.finance import ExerciseStyle, generate_batch
from repro.finance.lattice import LatticeFamily

requires_cnative = pytest.mark.skipif(
    not CNativeBackend.available(),
    reason="no C toolchain for the cnative backend")

SIMULATORS = {
    "iv_a": simulate_kernel_a_batch,
    "iv_b": simulate_kernel_b_batch,
}

# kernel IV.B hard-requires CRR (device pow leaves exploit u*d = 1);
# kernel IV.A prices every family from host-built leaves
KERNEL_FAMILIES = (
    ("iv_a", LatticeFamily.CRR),
    ("iv_a", LatticeFamily.JARROW_RUDD),
    ("iv_a", LatticeFamily.TIAN),
    ("iv_b", LatticeFamily.CRR),
)

PROFILES = (EXACT_DOUBLE, EXACT_SINGLE)
DEPTHS = (8, 64, 512)


def batch_for(exercise: ExerciseStyle):
    return list(generate_batch(n_options=12, seed=1402,
                               exercise=exercise).options)


@requires_cnative
class TestPriceParity:
    @pytest.mark.parametrize("kernel,family", KERNEL_FAMILIES)
    @pytest.mark.parametrize("exercise", (ExerciseStyle.EUROPEAN,
                                          ExerciseStyle.AMERICAN))
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("steps", DEPTHS)
    def test_prices_bitwise_equal(self, kernel, family, exercise, profile,
                                  steps):
        batch = batch_for(exercise)
        simulate = SIMULATORS[kernel]
        reference = simulate(batch, steps, profile, family,
                             backend=get_backend("numpy"))
        compiled = simulate(batch, steps, profile, family,
                            backend=get_backend("cnative"))
        np.testing.assert_array_equal(compiled, reference)
        assert np.all(np.isfinite(reference))

    @pytest.mark.parametrize("kernel,family", KERNEL_FAMILIES)
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("steps", DEPTHS)
    def test_captured_levels_bitwise_equal(self, kernel, family, profile,
                                           steps):
        """The greeks inputs (level-1/2 value rows) match bit for bit
        too — delta/gamma/theta are derived from these captures, so
        level parity is what makes greeks backend-independent."""
        batch = batch_for(ExerciseStyle.AMERICAN)
        simulate = SIMULATORS[kernel]
        ref = simulate(batch, steps, profile, family,
                       capture_levels=True, backend=get_backend("numpy"))
        cn = simulate(batch, steps, profile, family,
                      capture_levels=True, backend=get_backend("cnative"))
        for name, a, b in zip(("prices", "level1", "level2"), cn, ref):
            np.testing.assert_array_equal(a, b, err_msg=name)


@requires_cnative
class TestEngineAndGreeksParity:
    def test_engine_run_bitwise_equal(self):
        from repro.engine import EngineConfig, PricingEngine

        batch = batch_for(ExerciseStyle.AMERICAN)
        prices = {}
        for backend in ("numpy", "cnative"):
            with PricingEngine(kernel="iv_b",
                               config=EngineConfig(backend=backend)) as eng:
                result = eng.run(batch, 64)
            assert result.stats.backend == backend
            prices[backend] = result.prices
        np.testing.assert_array_equal(prices["cnative"], prices["numpy"])

    def test_fused_greeks_bitwise_equal_across_backends(self):
        """The 1e-12 allowance in the issue is for *reordered* bump
        arithmetic; the fused schedule preserves columnwise op order,
        so in practice the parity is exact and asserted as such."""
        import repro
        from repro.engine import EngineConfig

        batch = batch_for(ExerciseStyle.AMERICAN)
        runs = {
            backend: repro.greeks(batch, steps=64, kernel="iv_b",
                                  config=EngineConfig(backend=backend))
            for backend in ("numpy", "cnative")
        }
        for field in ("prices", "delta", "gamma", "theta", "vega", "rho"):
            np.testing.assert_array_equal(
                getattr(runs["cnative"], field),
                getattr(runs["numpy"], field), err_msg=field)


@requires_cnative
class TestFaultInjectionBackendIndependence:
    """Reliability is scheduled on option indices, never on backend
    internals: the same seeded fault plan must retry/quarantine the
    same options and leave the same bits behind on every backend."""

    SEEDS = (101, 202, 303)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transient_faults_heal_identically(self, seed):
        from repro.engine import EngineConfig, PricingEngine
        from repro.engine.faults import FaultPlan

        batch = batch_for(ExerciseStyle.AMERICAN)
        outcomes = {}
        for backend in ("numpy", "cnative"):
            plan = FaultPlan.random(seed, len(batch))
            with PricingEngine(
                    kernel="iv_b", faults=plan,
                    config=EngineConfig(backend=backend,
                                        backoff_base_s=0.0)) as eng:
                result = eng.run(batch, 64)
            assert not result.failures  # transient: must heal on retry
            outcomes[backend] = result
        assert (outcomes["cnative"].stats.retries
                == outcomes["numpy"].stats.retries > 0)
        np.testing.assert_array_equal(outcomes["cnative"].prices,
                                      outcomes["numpy"].prices)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_permanent_faults_quarantine_identically(self, seed):
        from repro.engine import ALWAYS, EngineConfig, PricingEngine
        from repro.engine.faults import FaultKind, FaultPlan

        batch = batch_for(ExerciseStyle.AMERICAN)
        outcomes = {}
        for backend in ("numpy", "cnative"):
            plan = FaultPlan.random(seed, len(batch),
                                    kinds=(FaultKind.NAN,),
                                    attempts=ALWAYS)
            with PricingEngine(
                    kernel="iv_b", faults=plan,
                    config=EngineConfig(backend=backend, max_retries=1,
                                        backoff_base_s=0.0)) as eng:
                outcomes[backend] = eng.run(batch, 64)
        numpy_run, cnative_run = outcomes["numpy"], outcomes["cnative"]
        assert [f.index for f in cnative_run.failures] \
            == [f.index for f in numpy_run.failures]
        assert len(numpy_run.failures) > 0
        np.testing.assert_array_equal(
            np.isnan(cnative_run.prices), np.isnan(numpy_run.prices))
        mask = ~np.isnan(numpy_run.prices)
        np.testing.assert_array_equal(cnative_run.prices[mask],
                                      numpy_run.prices[mask])
