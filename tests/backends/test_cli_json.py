"""``--out -``: the bench commands as machine-readable producers.

With ``--out -`` the benchmark document must be the *only* bytes on
stdout — narration moves to stderr — so ``python -m repro bench-engine
--out - | jq`` works without scraping.  These tests parse stdout with
a plain ``json.loads``; any stray narration line fails them.
"""

import json

import pytest

from repro.cli import main


class TestStdoutDocuments:
    def test_bench_engine_stdout_is_pure_json(self, capsys):
        code = main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", "-"])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)  # whole stream, not a slice
        assert document["schema"] == "repro-engine-bench/v1"
        assert document["config"]["backend"] == "numpy"
        run = document["results"][0]["runs"][0]
        assert run["backend"] == "numpy"
        assert run["backend_compile_seconds"] == 0.0
        # narration still happens, on the other stream
        assert "options/s" in captured.err
        assert "<stdout>" in captured.err

    def test_bench_greeks_stdout_is_pure_json(self, capsys):
        code = main(["bench-greeks", "--options", "8", "--steps", "16",
                     "--workers", "1", "--out", "-"])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["schema"] == "repro-greeks-bench/v1"
        schedules = {run["fused_greeks"]
                     for run in document["results"][0]["runs"]}
        assert schedules == {0, 1}
        fused = [run for run in document["results"][0]["runs"]
                 if run["fused_greeks"]]
        assert all("fused_speedup_vs_five_pass" in run for run in fused)
        assert "five-pass" in captured.err and "fused" in captured.err

    def test_serve_bench_stdout_is_pure_json(self, capsys):
        code = main(["serve-bench", "--options", "16", "--steps", "16",
                     "--clients", "4", "--out", "-"])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["schema"] == "repro-service-bench/v2"
        assert document["config"]["backend"] == "numpy"
        assert document["results"][0]["runs"][0]["backend"] == "numpy"
        assert "coalesced" in captured.err

    def test_regression_gate_messages_stay_off_stdout(self, capsys,
                                                      tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", str(baseline)]) == 0
        capsys.readouterr()

        document = json.loads(baseline.read_text())
        document["results"][0]["runs"][0]["options_per_second"] *= 100.0
        baseline.write_text(json.dumps(document))
        code = main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--out", "-",
                     "--check-against", str(baseline)])
        assert code == 1
        captured = capsys.readouterr()
        json.loads(captured.out)  # still parses despite the failure
        assert "REGRESSION" in captured.err


class TestBackendFlag:
    def test_unknown_backend_rejected_by_argparse(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-engine", "--backend", "fpga"])

    def test_backend_flag_reaches_the_document(self, capsys):
        from repro.backends.cnative import CNativeBackend

        if not CNativeBackend.available():
            pytest.skip("no C toolchain for the cnative backend")
        code = main(["bench-engine", "--options", "12", "--steps", "16",
                     "--workers", "1", "--backend", "cnative",
                     "--out", "-"])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["config"]["backend"] == "cnative"
        assert document["results"][0]["runs"][0]["backend"] == "cnative"
