"""Property-based tests for the OpenCL executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opencl import (
    Buffer,
    Context,
    Device,
    DeviceType,
    LocalMemory,
    execute_ndrange,
)


def _device():
    return Device("prop", DeviceType.ACCELERATOR, max_work_group_size=128,
                  local_mem_bytes=64 * 1024)


@st.composite
def ndrange_shapes(draw):
    local = draw(st.integers(min_value=1, max_value=16))
    groups = draw(st.integers(min_value=1, max_value=8))
    return groups * local, local


@settings(max_examples=40, deadline=None)
@given(ndrange_shapes())
def test_every_work_item_executes_exactly_once(shape):
    global_size, local_size = shape
    device = _device()
    context = Context(device)
    counts = context.create_buffer(global_size)

    def bump(wi, out):
        gid = wi.get_global_id()
        out[gid] = out[gid] + 1.0

    kernel = context.create_program({"bump": bump}).create_kernel("bump")
    kernel.set_args(counts)
    execute_ndrange(kernel, global_size, local_size, device)
    assert np.array_equal(counts._host_read(), np.ones(global_size))


@settings(max_examples=30, deadline=None)
@given(ndrange_shapes(), st.integers(min_value=1, max_value=5))
def test_barrier_rounds_counted(shape, n_barriers):
    global_size, local_size = shape
    device = _device()
    context = Context(device)
    out = context.create_buffer(1)

    def kern(wi, sink):
        for _ in range(n_barriers):
            yield wi.barrier()
        sink[0] = 1.0

    kernel = context.create_program({"kern": kern}).create_kernel("kern")
    kernel.set_args(out)
    stats = execute_ndrange(kernel, global_size, local_size, device)
    assert stats.barriers_per_group == n_barriers


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=2, max_value=16),
       st.integers(min_value=0, max_value=1000))
def test_group_local_sums_are_isolated(groups, local_size, seed):
    """Per-group local accumulation equals a numpy groupwise sum."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(-1, 1, groups * local_size)
    device = _device()
    context = Context(device)
    buf = context.create_buffer_from(data)
    sums = context.create_buffer(groups)

    def group_sum(wi, src, scratch, out):
        lid = wi.get_local_id()
        scratch[lid] = src[wi.get_global_id()]
        yield wi.barrier()
        if lid == 0:
            total = 0.0
            for i in range(wi.get_local_size()):
                total += scratch[i]
            out[wi.get_group_id()] = total

    kernel = context.create_program({"gs": group_sum}).create_kernel("gs")
    kernel.set_args(buf, LocalMemory(local_size), sums)
    execute_ndrange(kernel, groups * local_size, local_size, device)
    expected = data.reshape(groups, local_size).sum(axis=1)
    assert np.allclose(sums._host_read(), expected, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=10))
def test_ledger_totals_are_sums(sizes):
    device = _device()
    context = Context(device)
    queue = context.create_queue()
    total = 0
    for size in sizes:
        buf = Buffer.allocate(size)
        queue.enqueue_write_buffer(buf, np.zeros(size))
        total += size * 8
    assert queue.transfers.total_bytes() == total
    assert queue.transfers.count() == len(sizes)
