"""Unit tests for multi-dimensional NDRanges."""

import numpy as np
import pytest

from repro.errors import InvalidWorkGroupError, OpenCLError
from repro.opencl import Context, Device, DeviceType, LocalMemory, execute_ndrange


@pytest.fixture
def device():
    return Device("2d", DeviceType.ACCELERATOR, max_work_group_size=64)


@pytest.fixture
def context(device):
    return Context(device)


def make_kernel(context, func):
    return context.create_program({"k": func}).create_kernel("k")


class TestIndexing2D:
    def test_global_ids_cover_the_grid(self, context, device):
        out = context.create_buffer((4, 6))

        def mark(wi, grid):
            grid[wi.get_global_id(0), wi.get_global_id(1)] = (
                wi.get_global_id(0) * 10 + wi.get_global_id(1)
            )

        kernel = make_kernel(context, mark).set_args(out)
        stats = execute_ndrange(kernel, (4, 6), (2, 3), device)
        expected = np.add.outer(np.arange(4) * 10, np.arange(6))
        assert np.array_equal(out._host_read().reshape(4, 6), expected)
        assert stats.launch.global_size == 24
        assert stats.launch.work_groups == 4

    def test_group_and_local_decomposition(self, context, device):
        records = []

        def probe(wi, sink):
            records.append((wi.get_group_id(0), wi.get_group_id(1),
                            wi.get_local_id(0), wi.get_local_id(1)))
            sink[0] = 1.0

        kernel = make_kernel(context, probe).set_args(context.create_buffer(1))
        execute_ndrange(kernel, (4, 4), (2, 2), device)
        assert len(records) == 16
        for g0, g1, l0, l1 in records:
            assert 0 <= g0 < 2 and 0 <= g1 < 2
            assert 0 <= l0 < 2 and 0 <= l1 < 2

    def test_work_dim_and_size_queries(self, context, device):
        seen = {}

        def probe(wi, sink):
            seen["dim"] = wi.get_work_dim()
            seen["gs"] = (wi.get_global_size(0), wi.get_global_size(1))
            seen["ng"] = (wi.get_num_groups(0), wi.get_num_groups(1))
            sink[0] = 1.0

        kernel = make_kernel(context, probe).set_args(context.create_buffer(1))
        execute_ndrange(kernel, (6, 4), (3, 2), device)
        assert seen["dim"] == 2
        assert seen["gs"] == (6, 4)
        assert seen["ng"] == (2, 2)

    def test_out_of_range_dim_rejected(self, context, device):
        def probe(wi, sink):
            wi.get_global_id(2)

        kernel = make_kernel(context, probe).set_args(context.create_buffer(1))
        with pytest.raises(OpenCLError, match="dimension"):
            execute_ndrange(kernel, (2, 2), (1, 1), device)

    def test_1d_kernels_unchanged(self, context, device):
        """1-D launches keep the scalar attribute shorthand."""
        def scale(wi, data):
            data[wi.global_id] = wi.global_id + wi.local_size

        buf = context.create_buffer(8)
        kernel = make_kernel(context, scale).set_args(buf)
        execute_ndrange(kernel, 8, 4, device)
        assert np.array_equal(buf._host_read(), np.arange(8) + 4.0)


class TestValidation2D:
    def _noop(self, context):
        def noop(wi, sink):
            sink[0] = 1.0
        return make_kernel(context, noop).set_args(context.create_buffer(1))

    def test_dimensionality_mismatch(self, context, device):
        with pytest.raises(InvalidWorkGroupError, match="dimensionality"):
            execute_ndrange(self._noop(context), (4, 4), 2, device)

    def test_per_dimension_divisibility(self, context, device):
        with pytest.raises(InvalidWorkGroupError):
            execute_ndrange(self._noop(context), (4, 5), (2, 2), device)

    def test_group_product_limit(self, context, device):
        with pytest.raises(InvalidWorkGroupError, match="exceeds device"):
            execute_ndrange(self._noop(context), (16, 16), (16, 16), device)

    def test_too_many_dimensions(self, context, device):
        with pytest.raises(InvalidWorkGroupError, match="1-3"):
            execute_ndrange(self._noop(context), (2, 2, 2, 2), (1, 1, 1, 1),
                            device)


class TestKernelBAs2D:
    def test_kernel_b_expressed_as_2d_launch(self, context, device):
        """Kernel IV.B's natural shape: global (Nop, N), local (1, N) —
        one work-group per option, a row of work-items per group.
        Prices must match the 1-D formulation bit for bit."""
        from repro.core import simulate_kernel_b_batch
        from repro.core.kernel_b import build_params_b
        from repro.finance import generate_batch
        from repro.opencl import MemFlag

        steps = 8
        options = list(generate_batch(n_options=3, seed=44).options)
        params = context.create_buffer_from(build_params_b(options, steps),
                                            flags=MemFlag.READ_ONLY)
        results = context.create_buffer(len(options))

        def tree_2d(wi, p, out, v_row):
            k = wi.get_local_id(1)
            group = wi.get_group_id(0)
            s0, up, down = p[group, 0], p[group, 1], p[group, 2]
            rp, rq = p[group, 3], p[group, 4]
            strike, sign = p[group, 5], p[group, 6]
            s = s0 * up ** (steps - 2 * k)
            payoff = sign * (s - strike)
            v_row[k] = payoff if payoff > 0.0 else 0.0
            if k == steps - 1:
                s_last = s0 * up ** (-steps)
                pl = sign * (s_last - strike)
                v_row[steps] = pl if pl > 0.0 else 0.0
            yield wi.barrier()
            for t in range(steps - 1, -1, -1):
                value = 0.0
                if k <= t:
                    s = down * s
                    cont = rp * v_row[k] + rq * v_row[k + 1]
                    intr = sign * (s - strike)
                    value = cont if cont > intr else intr
                yield wi.barrier()
                if k <= t:
                    v_row[k] = value
                yield wi.barrier()
            if k == 0:
                out[group] = v_row[0]

        kernel = make_kernel(context, tree_2d)
        kernel.set_args(params, results, LocalMemory(steps + 1))
        queue = context.create_queue()
        queue.enqueue_nd_range_kernel(kernel, (len(options), steps),
                                      (1, steps))
        prices, _ = queue.enqueue_read_buffer(results)
        assert np.array_equal(prices, simulate_kernel_b_batch(options, steps))
