"""Unit tests for the dual-engine (overlap) queue timing discipline."""

import numpy as np
import pytest

from repro.opencl import Context, Device, DeviceType, MemFlag


class TenNsPerByteAndKernel:
    """Deterministic timing: 1 ns/byte transfers, 1000 ns kernels."""

    def transfer_ns(self, nbytes, direction):
        return float(nbytes)

    def ndrange_ns(self, launch):
        return 1000.0


def make_queue(overlap):
    device = Device("ov", DeviceType.ACCELERATOR,
                    timing_model=TenNsPerByteAndKernel(),
                    max_work_group_size=64)
    return Context(device).create_queue(overlap=overlap)


def scale_kernel(context, buf):
    def scale(wi, data, factor):
        gid = wi.get_global_id()
        data[gid] = data[gid] * factor

    kernel = context.create_program({"s": scale}).create_kernel("s")
    kernel.set_args(buf, 2.0)
    return kernel


class TestIndependentCommandsOverlap:
    def test_transfer_rides_dma_while_kernel_computes(self):
        queue = make_queue(overlap=True)
        a = queue.context.create_buffer(8)       # kernel's buffer
        b = queue.context.create_buffer(100)     # unrelated upload
        kernel = scale_kernel(queue.context, a)

        queue.enqueue_nd_range_kernel(kernel, 8, 4)       # kernel: 0..1000
        event = queue.enqueue_write_buffer(b, np.zeros(100))  # dma: 0..800
        assert event.start_ns == 0.0                      # overlapped
        assert queue.finish() == 1000.0                   # max of engines

    def test_serial_queue_serialises_the_same_commands(self):
        queue = make_queue(overlap=False)
        a = queue.context.create_buffer(8)
        b = queue.context.create_buffer(100)
        kernel = scale_kernel(queue.context, a)
        queue.enqueue_nd_range_kernel(kernel, 8, 4)
        event = queue.enqueue_write_buffer(b, np.zeros(100))
        assert event.start_ns == 1000.0
        assert queue.finish() == 1800.0


class TestHazardsSerialise:
    def test_raw_read_waits_for_kernel(self):
        queue = make_queue(overlap=True)
        buf = queue.context.create_buffer(8)
        kernel = scale_kernel(queue.context, buf)
        queue.enqueue_nd_range_kernel(kernel, 8, 4)   # writes buf: 0..1000
        _, event = queue.enqueue_read_buffer(buf)
        assert event.start_ns == 1000.0               # RAW hazard

    def test_war_write_waits_for_kernel_reads(self):
        queue = make_queue(overlap=True)
        readonly = queue.context.create_buffer_from(np.zeros(8),
                                                    flags=MemFlag.READ_ONLY)
        out = queue.context.create_buffer(8)

        def copy(wi, src, dst):
            gid = wi.get_global_id()
            dst[gid] = src[gid]

        kernel = queue.context.create_program({"c": copy}).create_kernel("c")
        kernel.set_args(readonly, out)
        queue.enqueue_nd_range_kernel(kernel, 8, 4)   # reads readonly
        event = queue.enqueue_write_buffer(readonly, np.ones(8))
        assert event.start_ns == 1000.0               # WAR hazard

    def test_two_transfers_share_the_dma_engine(self):
        queue = make_queue(overlap=True)
        a = queue.context.create_buffer(50)
        b = queue.context.create_buffer(50)
        queue.enqueue_write_buffer(a, np.zeros(50))   # dma 0..400
        event = queue.enqueue_write_buffer(b, np.zeros(50))
        assert event.start_ns == 400.0                # same engine


class TestSynchronisation:
    def test_queue_barrier_joins_engines(self):
        queue = make_queue(overlap=True)
        a = queue.context.create_buffer(8)
        kernel = scale_kernel(queue.context, a)
        queue.enqueue_nd_range_kernel(kernel, 8, 4)   # kernel busy to 1000
        queue.enqueue_barrier()
        b = queue.context.create_buffer(10)
        event = queue.enqueue_write_buffer(b, np.zeros(10))
        assert event.start_ns == 1000.0               # barrier synced dma

    def test_wait_list_constrains_start(self):
        queue = make_queue(overlap=True)
        a = queue.context.create_buffer(8)
        b = queue.context.create_buffer(10)
        kernel = scale_kernel(queue.context, a)
        kernel_event = queue.enqueue_nd_range_kernel(kernel, 8, 4)
        event = queue.enqueue_write_buffer(b, np.zeros(10),
                                           wait_for=[kernel_event])
        assert event.start_ns == 1000.0

    def test_reset_clears_engine_state(self):
        queue = make_queue(overlap=True)
        buf = queue.context.create_buffer(8)
        queue.enqueue_write_buffer(buf, np.zeros(8))
        queue.reset_clock()
        event = queue.enqueue_write_buffer(buf, np.zeros(8))
        assert event.start_ns == 0.0


class TestKernelAOverlapAnalysis:
    def test_overlap_cannot_rescue_kernel_a(self):
        """The sharp version of the paper's Section V.C diagnosis:
        even with a DMA engine free to overlap ("Memory operations and
        work-items executions are overlapped with one another"), kernel
        IV.A barely gains — every batch's write -> kernel -> readback
        chains through the *same* ping-pong buffers, so the data
        hazards serialise the pipeline regardless of engine count.  The
        fix has to be structural (kernel IV.B / the modified readback),
        not a smarter runtime."""
        from repro.core import HostProgramA
        from repro.devices import fpga_device
        from repro.finance import generate_batch

        batch = list(generate_batch(n_options=5, seed=31).options)
        serial = HostProgramA(fpga_device("iv_a"), 12).price(batch)
        overlapped = HostProgramA(fpga_device("iv_a"), 12,
                                  overlap=True).price(batch)
        assert np.array_equal(serial.prices, overlapped.prices)
        assert overlapped.simulated_time_s <= serial.simulated_time_s
        gain = 1.0 - overlapped.simulated_time_s / serial.simulated_time_s
        assert gain < 0.05
