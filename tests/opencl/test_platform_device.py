"""Unit tests for platforms, devices, context and program objects."""

import numpy as np
import pytest

from repro.errors import DeviceModelError, OpenCLError
from repro.opencl import (
    Context,
    Device,
    DeviceType,
    LaunchInfo,
    MemFlag,
    Platform,
    ZeroTimingModel,
    clear_platforms,
    get_platform,
    get_platforms,
    register_platform,
)


class TestDevice:
    def test_defaults(self):
        device = Device("d", DeviceType.GPU)
        assert device.compute_units == 1
        assert device.double_precision

    def test_validation(self):
        with pytest.raises(DeviceModelError):
            Device("d", DeviceType.GPU, compute_units=0)
        with pytest.raises(DeviceModelError):
            Device("d", DeviceType.GPU, max_work_group_size=0)
        with pytest.raises(DeviceModelError):
            Device("d", DeviceType.GPU, global_mem_bytes=0)

    def test_timing_model_protocol_enforced(self):
        with pytest.raises(DeviceModelError):
            Device("d", DeviceType.GPU, timing_model=object())

    def test_zero_timing_model(self):
        model = ZeroTimingModel()
        assert model.transfer_ns(1000, None) == 0.0
        assert model.ndrange_ns(LaunchInfo("k", 8, 4, 2)) == 0.0

    def test_repr_readable(self, toy_device):
        text = repr(toy_device)
        assert "toy" in text and "CUs=2" in text

    def test_get_info_queries(self, toy_device):
        assert toy_device.get_info("CL_DEVICE_NAME") == "toy"
        assert toy_device.get_info("CL_DEVICE_MAX_COMPUTE_UNITS") == 2
        assert toy_device.get_info("CL_DEVICE_MAX_WORK_GROUP_SIZE") == 256
        assert "fp64" in toy_device.get_info("CL_DEVICE_EXTENSIONS")

    def test_get_info_unknown_key(self, toy_device):
        with pytest.raises(DeviceModelError, match="unknown device-info"):
            toy_device.get_info("CL_DEVICE_VENDOR_ID")

    def test_paper_devices_report_their_specs(self):
        from repro.devices import fpga_device, gpu_device

        fpga = fpga_device("iv_b")
        assert fpga.get_info("CL_DEVICE_GLOBAL_MEM_SIZE") == 2 * 1024**3
        gpu = gpu_device("iv_b")
        assert gpu.get_info("CL_DEVICE_MAX_COMPUTE_UNITS") == 5  # SMX count
        assert gpu.get_info("CL_DEVICE_LOCAL_MEM_SIZE") == 48 * 1024


class TestPlatformRegistry:
    def setup_method(self):
        clear_platforms()

    def teardown_method(self):
        clear_platforms()

    def test_register_and_get(self, toy_device):
        platform = Platform("test", "vendor", (toy_device,))
        register_platform(platform)
        assert get_platform("test") is platform

    def test_duplicate_replace_control(self, toy_device):
        platform = Platform("dup", "vendor", (toy_device,))
        register_platform(platform)
        register_platform(platform)  # replace allowed by default
        with pytest.raises(OpenCLError):
            register_platform(platform, replace=False)

    def test_unknown_platform(self, toy_device):
        register_platform(Platform("known", "vendor", (toy_device,)))
        with pytest.raises(OpenCLError, match="known"):
            get_platform("other")

    def test_empty_registry_loads_catalog(self):
        clear_platforms()
        platforms = get_platforms()
        names = {p.name for p in platforms}
        assert any("Altera" in n for n in names)
        assert any("NVIDIA" in n for n in names)
        assert any("Intel" in n for n in names)

    def test_device_type_filter(self):
        clear_platforms()
        for platform in get_platforms():
            for device in platform.get_devices(DeviceType.GPU):
                assert device.device_type is DeviceType.GPU


class TestContext:
    def test_requires_device(self):
        with pytest.raises(OpenCLError):
            Context([])

    def test_single_device_shortcut(self, toy_device):
        ctx = Context(toy_device)
        assert ctx.device is toy_device

    def test_buffer_tracking_and_release(self, toy_context):
        buf = toy_context.create_buffer(16)
        assert toy_context.total_allocated_bytes() == 128
        toy_context.release(buf)
        assert toy_context.total_allocated_bytes() == 0
        with pytest.raises(OpenCLError):
            toy_context.release(buf)

    def test_global_memory_limit(self):
        small = Device("small", DeviceType.ACCELERATOR,
                       global_mem_bytes=1024)
        ctx = Context(small)
        ctx.create_buffer(100)  # 800 bytes
        with pytest.raises(OpenCLError, match="global memory"):
            ctx.create_buffer(100)

    def test_queue_device_must_belong(self, toy_context):
        other = Device("other", DeviceType.CPU)
        with pytest.raises(OpenCLError):
            toy_context.create_queue(other)

    def test_create_buffer_from(self, toy_context):
        buf = toy_context.create_buffer_from(np.arange(3.0),
                                             flags=MemFlag.READ_ONLY)
        assert buf.flags & MemFlag.READ_ONLY
        assert np.array_equal(buf._host_read(), np.arange(3.0))


class TestProgram:
    def test_build_log(self, toy_context):
        def plain(wi, a):
            pass

        def barriered(wi, a):
            yield wi.barrier()

        program = toy_context.create_program({"p": plain, "b": barriered})
        assert "p: 1 args, plain" in program.build_log
        assert "barrier-capable" in program.build_log
        assert set(program.kernel_names) == {"p", "b"}

    def test_empty_program_rejected(self, toy_context):
        with pytest.raises(OpenCLError):
            toy_context.create_program({})

    def test_zero_param_kernel_rejected(self, toy_context):
        with pytest.raises(OpenCLError, match="context"):
            toy_context.create_program({"bad": lambda: None})

    def test_unknown_kernel_name(self, toy_context):
        program = toy_context.create_program({"k": lambda wi: None})
        with pytest.raises(OpenCLError, match="no kernel"):
            program.create_kernel("other")

    def test_non_callable_rejected(self, toy_context):
        with pytest.raises(OpenCLError):
            toy_context.create_program({"k": 42})


class TestKernelArgs:
    def _kernel(self, context):
        def k(wi, a, b, c):
            pass
        return context.create_program({"k": k}).create_kernel("k")

    def test_arg_names(self, toy_context):
        kernel = self._kernel(toy_context)
        assert kernel.arg_names == ("a", "b", "c")
        assert kernel.num_args == 3

    def test_set_args_count_mismatch(self, toy_context):
        from repro.errors import InvalidArgumentError
        with pytest.raises(InvalidArgumentError):
            self._kernel(toy_context).set_args(1.0)

    def test_set_arg_index_bounds(self, toy_context):
        from repro.errors import InvalidArgumentError
        kernel = self._kernel(toy_context)
        with pytest.raises(InvalidArgumentError):
            kernel.set_arg(3, 1.0)

    def test_local_mem_bytes(self, toy_context):
        from repro.opencl import LocalMemory
        kernel = self._kernel(toy_context)
        kernel.set_args(LocalMemory(4), LocalMemory(8), 1.0)
        assert kernel.local_mem_bytes() == 96
