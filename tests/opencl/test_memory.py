"""Unit tests for simulated device memory objects."""

import numpy as np
import pytest

from repro.errors import MemoryError_, OpenCLError
from repro.opencl import Buffer, LocalMemory, MemFlag


class TestBufferConstruction:
    def test_allocate_zero_initialised(self):
        buf = Buffer.allocate(8)
        assert buf.size == 8
        assert np.all(buf._host_read() == 0.0)

    def test_from_array_copies(self):
        src = np.arange(4.0)
        buf = Buffer.from_array(src)
        src[0] = 99.0
        assert buf._host_read()[0] == 0.0  # deep copy, not a view

    def test_from_array_sets_copy_flag(self):
        buf = Buffer.from_array(np.zeros(2))
        assert buf.flags & MemFlag.COPY_HOST_PTR

    def test_geometry(self):
        buf = Buffer.allocate((3, 4), dtype=np.float32)
        assert buf.shape == (3, 4)
        assert buf.size == 12
        assert buf.nbytes == 48
        assert len(buf) == 3

    def test_unique_ids(self):
        a, b = Buffer.allocate(1), Buffer.allocate(1)
        assert a.id != b.id


class TestHostAccess:
    def test_write_then_read(self):
        buf = Buffer.allocate(6)
        buf._host_write(np.array([1.0, 2.0]), offset=2)
        out = buf._host_read(offset=2, count=2)
        assert np.array_equal(out, [1.0, 2.0])

    def test_write_out_of_bounds(self):
        buf = Buffer.allocate(4)
        with pytest.raises(MemoryError_):
            buf._host_write(np.zeros(3), offset=2)
        with pytest.raises(MemoryError_):
            buf._host_write(np.zeros(1), offset=-1)

    def test_read_out_of_bounds(self):
        buf = Buffer.allocate(4)
        with pytest.raises(MemoryError_):
            buf._host_read(offset=3, count=2)

    def test_transfer_counters(self):
        buf = Buffer.allocate(4)
        buf._host_write(np.zeros(4))
        buf._host_read()
        assert buf.bytes_written_from_host == 32
        assert buf.bytes_read_to_host == 32

    def test_dtype_coercion_on_write(self):
        buf = Buffer.allocate(2, dtype=np.float32)
        buf._host_write(np.array([1.5, 2.5], dtype=np.float64))
        assert buf._host_read().dtype == np.float32


class TestBufferView:
    def test_read_write_counting(self):
        buf = Buffer.from_array(np.arange(8.0))
        view = buf.view()
        _ = view[3]
        view[4] = 10.0
        assert buf.device_reads == 1
        assert buf.device_writes == 1
        assert buf._host_read()[4] == 10.0

    def test_slice_access_counts_elements(self):
        buf = Buffer.from_array(np.arange(8.0))
        view = buf.view()
        _ = view[0:4]
        assert buf.device_reads == 4

    def test_write_only_blocks_reads(self):
        buf = Buffer.allocate(4, flags=MemFlag.WRITE_ONLY)
        view = buf.view()
        view[0] = 1.0  # writes fine
        with pytest.raises(OpenCLError, match="WRITE_ONLY"):
            _ = view[0]

    def test_read_only_blocks_writes(self):
        buf = Buffer.from_array(np.arange(4.0), flags=MemFlag.READ_ONLY)
        view = buf.view()
        assert view[1] == 1.0
        with pytest.raises(OpenCLError, match="READ_ONLY"):
            view[0] = 5.0

    def test_shape_passthrough(self):
        buf = Buffer.allocate((2, 3))
        assert buf.view().shape == (2, 3)
        assert len(buf.view()) == 2


class TestLocalMemory:
    def test_scalar_shape(self):
        lm = LocalMemory(5)
        assert lm.shape == (5,)
        assert lm.nbytes == 40

    def test_dtype(self):
        lm = LocalMemory(4, dtype=np.float32)
        assert lm.nbytes == 16

    def test_materialise_fresh_arrays(self):
        lm = LocalMemory(3)
        a = lm.materialise()
        b = lm.materialise()
        a[0] = 7.0
        assert b[0] == 0.0  # independent per work-group

    def test_tuple_shape(self):
        lm = LocalMemory((2, 4))
        assert lm.materialise().shape == (2, 4)
