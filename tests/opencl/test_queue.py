"""Unit tests for the command queue, events and transfer ledger."""

import numpy as np
import pytest

from repro.errors import OpenCLError
from repro.opencl import (
    CommandQueue,
    CommandType,
    Context,
    Device,
    DeviceType,
    LaunchInfo,
    TransferDirection,
)


class FixedRateTiming:
    """1 GB/s transfers, 1 us per launch: easy numbers to assert on."""

    def transfer_ns(self, nbytes, direction):
        return nbytes  # 1 byte per ns == 1 GB/s

    def ndrange_ns(self, launch):
        return 1000.0


@pytest.fixture
def timed_device():
    return Device("timed", DeviceType.ACCELERATOR, timing_model=FixedRateTiming(),
                  max_work_group_size=64)


@pytest.fixture
def timed_queue(timed_device):
    return Context(timed_device).create_queue()


def _scale_kernel(context):
    def scale(wi, data, factor):
        gid = wi.get_global_id()
        data[gid] = data[gid] * factor

    return context.create_program({"scale": scale}).create_kernel("scale")


class TestClock:
    def test_write_advances_clock_by_bytes(self, timed_queue):
        buf = timed_queue.context.create_buffer(16)
        timed_queue.enqueue_write_buffer(buf, np.zeros(16))
        assert timed_queue.clock_ns == 16 * 8

    def test_kernel_advances_clock(self, timed_queue):
        kernel = _scale_kernel(timed_queue.context)
        buf = timed_queue.context.create_buffer(8)
        kernel.set_args(buf, 2.0)
        timed_queue.enqueue_nd_range_kernel(kernel, 8, 4)
        assert timed_queue.clock_ns == 1000.0

    def test_commands_accumulate_in_order(self, timed_queue):
        buf = timed_queue.context.create_buffer(4)
        timed_queue.enqueue_write_buffer(buf, np.zeros(4))  # 32 ns
        timed_queue.enqueue_read_buffer(buf)                # 32 ns
        assert timed_queue.finish() == 64.0
        assert timed_queue.clock_s == pytest.approx(64e-9)

    def test_reset_clock(self, timed_queue):
        buf = timed_queue.context.create_buffer(4)
        timed_queue.enqueue_write_buffer(buf, np.zeros(4))
        timed_queue.reset_clock()
        assert timed_queue.clock_ns == 0.0
        assert len(timed_queue.events) == 0
        assert len(timed_queue.transfers) == 0


class TestEvents:
    def test_event_timestamps(self, timed_queue):
        buf = timed_queue.context.create_buffer(8)
        event = timed_queue.enqueue_write_buffer(buf, np.zeros(8))
        assert event.start_ns == 0.0
        assert event.end_ns == 64.0
        assert event.duration_ns == 64.0
        assert event.duration_ms == pytest.approx(64e-6)

    def test_event_types_recorded(self, timed_queue):
        buf = timed_queue.context.create_buffer(4)
        timed_queue.enqueue_write_buffer(buf, np.zeros(4))
        timed_queue.enqueue_read_buffer(buf)
        timed_queue.enqueue_marker("sync")
        types = [e.command_type for e in timed_queue.events]
        assert types == [CommandType.WRITE_BUFFER, CommandType.READ_BUFFER,
                         CommandType.MARKER]

    def test_profiling_disabled_keeps_clock(self, timed_device):
        queue = Context(timed_device).create_queue(profiling=False)
        buf = queue.context.create_buffer(4)
        queue.enqueue_write_buffer(buf, np.zeros(4))
        assert queue.events == []
        assert queue.clock_ns == 32.0

    def test_kernel_event_info(self, timed_queue):
        kernel = _scale_kernel(timed_queue.context)
        buf = timed_queue.context.create_buffer(8)
        kernel.set_args(buf, 3.0)
        event = timed_queue.enqueue_nd_range_kernel(kernel, 8, 4)
        assert event.info["global_size"] == 8
        assert event.info["local_size"] == 4
        assert event.info["work_groups"] == 2


class TestTransfers:
    def test_ledger_directions(self, timed_queue):
        buf = timed_queue.context.create_buffer(8)
        timed_queue.enqueue_write_buffer(buf, np.zeros(8))
        timed_queue.enqueue_read_buffer(buf, 0, 4)
        ledger = timed_queue.transfers
        assert ledger.total_bytes(TransferDirection.HOST_TO_DEVICE) == 64
        assert ledger.total_bytes(TransferDirection.DEVICE_TO_HOST) == 32
        assert ledger.total_bytes() == 96
        assert ledger.count(TransferDirection.HOST_TO_DEVICE) == 1

    def test_transfer_times(self, timed_queue):
        buf = timed_queue.context.create_buffer(8)
        timed_queue.enqueue_write_buffer(buf, np.zeros(8))
        assert timed_queue.transfer_time_ns() == 64.0
        assert timed_queue.kernel_time_ns() == 0.0

    def test_read_returns_data(self, timed_queue):
        buf = timed_queue.context.create_buffer_from(np.arange(4.0))
        data, event = timed_queue.enqueue_read_buffer(buf, offset=1, count=2)
        assert np.array_equal(data, [1.0, 2.0])
        assert event.info["bytes"] == 16


class TestCopyBuffer:
    def test_copy_moves_data_on_device(self, timed_queue):
        src = timed_queue.context.create_buffer_from(np.arange(4.0))
        dst = timed_queue.context.create_buffer(4)
        timed_queue.enqueue_copy_buffer(src, dst)
        assert np.array_equal(dst._host_read(), np.arange(4.0))

    def test_size_mismatch(self, timed_queue):
        src = timed_queue.context.create_buffer(4)
        dst = timed_queue.context.create_buffer(8)
        with pytest.raises(OpenCLError):
            timed_queue.enqueue_copy_buffer(src, dst)


class TestWaitListsAndFill:
    def test_wait_list_accepted(self, timed_queue):
        buf = timed_queue.context.create_buffer(4)
        first = timed_queue.enqueue_write_buffer(buf, np.zeros(4))
        data, second = timed_queue.enqueue_read_buffer(buf, wait_for=[first])
        assert second.start_ns >= first.end_ns  # in-order guarantee

    def test_wait_list_validated(self, timed_queue):
        buf = timed_queue.context.create_buffer(4)
        with pytest.raises(OpenCLError, match="wait list"):
            timed_queue.enqueue_write_buffer(buf, np.zeros(4),
                                             wait_for=["not-an-event"])

    def test_event_wait_returns_complete(self, timed_queue):
        from repro.opencl import EventStatus
        buf = timed_queue.context.create_buffer(4)
        event = timed_queue.enqueue_write_buffer(buf, np.zeros(4))
        assert event.wait().status is EventStatus.COMPLETE

    def test_fill_buffer(self, timed_queue):
        buf = timed_queue.context.create_buffer(6)
        timed_queue.enqueue_fill_buffer(buf, -1.0)
        assert np.array_equal(buf._host_read(), np.full(6, -1.0))

    def test_fill_charges_pattern_not_buffer(self, timed_queue):
        big = timed_queue.context.create_buffer(10_000)
        before = timed_queue.clock_ns
        timed_queue.enqueue_fill_buffer(big, 0.0)
        assert timed_queue.clock_ns - before == 8.0  # one f64 pattern

    def test_queue_barrier_recorded(self, timed_queue):
        event = timed_queue.enqueue_barrier()
        assert event.command_type is CommandType.MARKER
        assert event.duration_ns == 0.0


class TestAutoLocalSize:
    def test_none_local_size_picks_divisor(self, timed_queue):
        kernel = _scale_kernel(timed_queue.context)
        buf = timed_queue.context.create_buffer(12)
        kernel.set_args(buf, 1.0)
        event = timed_queue.enqueue_nd_range_kernel(kernel, 12)
        assert 12 % event.info["local_size"] == 0
