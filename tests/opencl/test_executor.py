"""Unit tests for the NDRange executor and barrier semantics."""

import numpy as np
import pytest

from repro.errors import (
    BarrierDivergenceError,
    InvalidArgumentError,
    InvalidWorkGroupError,
    OpenCLError,
)
from repro.opencl import (
    Buffer,
    Context,
    Device,
    DeviceType,
    LocalMemory,
    execute_ndrange,
)


def make_kernel(context, func, name="k"):
    return context.create_program({name: func}).create_kernel(name)


class TestIndexing:
    def test_all_ids_consistent(self, toy_context, toy_device):
        records = []

        def probe(wi, out):
            records.append((
                wi.get_global_id(), wi.get_local_id(), wi.get_group_id(),
                wi.get_local_size(), wi.get_global_size(), wi.get_num_groups(),
            ))
            out[wi.get_global_id()] = wi.get_global_id()

        buf = toy_context.create_buffer(12)
        kernel = make_kernel(toy_context, probe).set_args(buf)
        execute_ndrange(kernel, 12, 4, toy_device)

        assert len(records) == 12
        for gid, lid, grp, lsize, gsize, ngroups in records:
            assert gid == grp * 4 + lid
            assert lsize == 4 and gsize == 12 and ngroups == 3
        assert np.array_equal(buf._host_read(), np.arange(12.0))

    def test_multidim_queries_rejected(self, toy_context, toy_device):
        def probe(wi, out):
            wi.get_global_id(1)

        kernel = make_kernel(toy_context, probe).set_args(
            toy_context.create_buffer(1))
        with pytest.raises(OpenCLError):
            execute_ndrange(kernel, 1, 1, toy_device)


class TestShapeValidation:
    def _noop_kernel(self, context):
        def noop(wi, out):
            out[0] = 1.0
        return make_kernel(context, noop).set_args(context.create_buffer(1))

    def test_nondividing_local_size(self, toy_context, toy_device):
        with pytest.raises(InvalidWorkGroupError):
            execute_ndrange(self._noop_kernel(toy_context), 10, 4, toy_device)

    def test_zero_sizes(self, toy_context, toy_device):
        with pytest.raises(InvalidWorkGroupError):
            execute_ndrange(self._noop_kernel(toy_context), 0, 1, toy_device)

    def test_local_size_over_device_limit(self, toy_context, toy_device):
        kernel = self._noop_kernel(toy_context)
        too_big = toy_device.max_work_group_size * 2
        with pytest.raises(InvalidWorkGroupError):
            execute_ndrange(kernel, too_big, too_big, toy_device)

    def test_local_memory_over_device_limit(self, toy_context, toy_device):
        def kern(wi, scratch):
            yield wi.barrier()

        over = toy_device.local_mem_bytes // 8 + 1
        kernel = make_kernel(toy_context, kern).set_args(LocalMemory(over))
        with pytest.raises(InvalidWorkGroupError, match="local memory"):
            execute_ndrange(kernel, 4, 4, toy_device)

    def test_unset_args_rejected(self, toy_context, toy_device):
        def kern(wi, a, b):
            pass

        kernel = make_kernel(toy_context, kern)
        kernel.set_arg(0, 1.0)
        with pytest.raises(InvalidArgumentError, match="unset"):
            execute_ndrange(kernel, 4, 4, toy_device)


class TestBarriers:
    def test_barrier_ordering_visible(self, toy_context, toy_device):
        """Writes before a barrier are visible to all items after it."""

        def rotate(wi, data, scratch):
            lid = wi.get_local_id()
            scratch[lid] = data[wi.get_global_id()]
            yield wi.barrier()
            # read the neighbour's value written before the barrier
            data[wi.get_global_id()] = scratch[(lid + 1) % wi.get_local_size()]

        buf = toy_context.create_buffer_from(np.arange(8.0))
        kernel = make_kernel(toy_context, rotate).set_args(buf, LocalMemory(4))
        execute_ndrange(kernel, 8, 4, toy_device)
        expected = [1, 2, 3, 0, 5, 6, 7, 4]
        assert np.array_equal(buf._host_read(), expected)

    def test_tree_reduction(self, toy_context, toy_device):
        def reduce_kernel(wi, data, scratch, result):
            lid = wi.get_local_id()
            scratch[lid] = data[wi.get_global_id()]
            yield wi.barrier()
            stride = wi.get_local_size() // 2
            while stride > 0:
                if lid < stride:
                    scratch[lid] += scratch[lid + stride]
                yield wi.barrier()
                stride //= 2
            if lid == 0:
                result[wi.get_group_id()] = scratch[0]

        data = toy_context.create_buffer_from(np.arange(32.0))
        result = toy_context.create_buffer(4)
        kernel = make_kernel(toy_context, reduce_kernel)
        kernel.set_args(data, LocalMemory(8), result)
        stats = execute_ndrange(kernel, 32, 8, toy_device)
        expected = np.arange(32.0).reshape(4, 8).sum(axis=1)
        assert np.array_equal(result._host_read(), expected)
        assert stats.barriers_per_group == 4  # 1 init + 3 strides

    def test_divergence_detected(self, toy_context, toy_device):
        def bad(wi, out):
            if wi.get_local_id() == 0:
                yield wi.barrier()
            out[wi.get_global_id()] = 1.0

        kernel = make_kernel(toy_context, bad).set_args(
            toy_context.create_buffer(4))
        with pytest.raises(BarrierDivergenceError):
            execute_ndrange(kernel, 4, 4, toy_device)

    def test_unequal_barrier_counts_detected(self, toy_context, toy_device):
        def bad(wi, out):
            yield wi.barrier()
            if wi.get_local_id() < 2:
                yield wi.barrier()

        kernel = make_kernel(toy_context, bad).set_args(
            toy_context.create_buffer(4))
        with pytest.raises(BarrierDivergenceError):
            execute_ndrange(kernel, 4, 4, toy_device)


class TestLocalMemoryIsolation:
    def test_groups_get_fresh_local_memory(self, toy_context, toy_device):
        """Local data must not leak between work-groups."""

        def leak_probe(wi, out, scratch):
            lid = wi.get_local_id()
            if lid == 0:
                out[wi.get_group_id()] = scratch[1]  # must read 0.0
            yield wi.barrier()
            scratch[lid] = 99.0

        out = toy_context.create_buffer(4)
        kernel = make_kernel(toy_context, leak_probe).set_args(
            out, LocalMemory(2))
        execute_ndrange(kernel, 8, 2, toy_device)
        assert np.array_equal(out._host_read(), np.zeros(4))


class TestLaunchStats:
    def test_work_per_item_metadata(self, toy_context, toy_device):
        from repro.opencl import kernel_metadata

        @kernel_metadata(work_per_item=lambda g, l: 17.0)
        def weighted(wi, out):
            out[0] = 1.0

        kernel = make_kernel(toy_context, weighted).set_args(
            toy_context.create_buffer(1))
        stats = execute_ndrange(kernel, 8, 4, toy_device)
        assert stats.launch.work_per_item == 17.0
        assert stats.launch.work_groups == 2

    def test_barrier_totals(self, toy_context, toy_device):
        def two_barriers(wi, out):
            yield wi.barrier()
            yield wi.barrier()
            out[0] = 1.0

        kernel = make_kernel(toy_context, two_barriers).set_args(
            toy_context.create_buffer(1))
        stats = execute_ndrange(kernel, 8, 4, toy_device)
        assert stats.barriers_per_group == 2
        assert stats.launch.barriers == 2 * 8  # per-item waits
