"""Unit tests for sub-buffers and map/unmap."""

import numpy as np
import pytest

from repro.errors import MemoryError_, OpenCLError
from repro.opencl import Buffer, Context, Device, DeviceType, MemFlag


class TestSubBuffer:
    def test_shares_storage_with_parent(self):
        parent = Buffer.from_array(np.arange(10.0))
        sub = parent.create_sub_buffer(2, 4)
        sub._host_write(np.array([99.0]), offset=0)
        assert parent._host_read()[2] == 99.0
        parent._host_write(np.array([-1.0]), offset=3)
        assert sub._host_read()[1] == -1.0

    def test_geometry(self):
        parent = Buffer.allocate(10)
        sub = parent.create_sub_buffer(2, 4)
        assert sub.size == 4
        assert sub.nbytes == 32
        assert "[2:6]" in sub.name
        assert sub.parent is parent

    def test_bounds_checked(self):
        parent = Buffer.allocate(10)
        with pytest.raises(MemoryError_):
            parent.create_sub_buffer(8, 4)
        with pytest.raises(MemoryError_):
            parent.create_sub_buffer(-1, 2)
        with pytest.raises(MemoryError_):
            parent.create_sub_buffer(0, 0)

    def test_narrowed_flags(self):
        parent = Buffer.allocate(8)
        sub = parent.create_sub_buffer(0, 4, flags=MemFlag.READ_ONLY)
        view = sub.view()
        with pytest.raises(OpenCLError):
            view[0] = 1.0
        # parent stays writable
        parent.view()[0] = 1.0

    def test_own_counters(self):
        parent = Buffer.from_array(np.arange(8.0))
        sub = parent.create_sub_buffer(0, 4)
        _ = sub.view()[1]
        assert sub.device_reads == 1
        assert parent.device_reads == 0

    def test_kernel_can_use_sub_buffer(self, toy_context, toy_device):
        parent = toy_context.create_buffer_from(np.arange(8.0))
        sub = parent.create_sub_buffer(4, 4)

        def double(wi, data):
            gid = wi.get_global_id()
            data[gid] = 2.0 * data[gid]

        kernel = toy_context.create_program({"d": double}).create_kernel("d")
        kernel.set_args(sub)
        toy_context.create_queue().enqueue_nd_range_kernel(kernel, 4, 4)
        assert np.array_equal(parent._host_read(),
                              [0, 1, 2, 3, 8, 10, 12, 14])


class TestMapUnmap:
    @pytest.fixture
    def queue(self, toy_context):
        return toy_context.create_queue()

    def test_read_map(self, queue):
        buf = queue.context.create_buffer_from(np.arange(6.0))
        mapped, event = queue.enqueue_map_buffer(buf)
        assert np.array_equal(mapped, np.arange(6.0))
        assert event.info["map"]
        queue.enqueue_unmap(buf, mapped)  # read map: free unmap

    def test_write_map_round_trip(self, queue):
        buf = queue.context.create_buffer(4)
        mapped, _ = queue.enqueue_map_buffer(buf, write=True)
        mapped[:] = [1.0, 2.0, 3.0, 4.0]
        queue.enqueue_unmap(buf, mapped)
        assert np.array_equal(buf._host_read(), [1.0, 2.0, 3.0, 4.0])

    def test_read_map_does_not_write_back(self, queue):
        buf = queue.context.create_buffer_from(np.arange(4.0))
        mapped, _ = queue.enqueue_map_buffer(buf, write=False)
        mapped[:] = 0.0
        queue.enqueue_unmap(buf, mapped)
        assert np.array_equal(buf._host_read(), np.arange(4.0))

    def test_unmap_unknown_region_rejected(self, queue):
        buf = queue.context.create_buffer(4)
        with pytest.raises(OpenCLError, match="never mapped"):
            queue.enqueue_unmap(buf, np.zeros(4))

    def test_unmap_wrong_buffer_rejected(self, queue):
        a = queue.context.create_buffer(4)
        b = queue.context.create_buffer(4)
        mapped, _ = queue.enqueue_map_buffer(a)
        with pytest.raises(OpenCLError, match="wrong buffer"):
            queue.enqueue_unmap(b, mapped)

    def test_map_charged_like_a_read(self, toy_context):
        class ByteRate:
            def transfer_ns(self, nbytes, direction):
                return float(nbytes)

            def ndrange_ns(self, launch):
                return 0.0

        device = Device("t", DeviceType.ACCELERATOR, timing_model=ByteRate())
        queue = Context(device).create_queue()
        buf = queue.context.create_buffer(8)
        queue.enqueue_map_buffer(buf)
        assert queue.clock_ns == 64.0
