"""Service robustness: deadlines, cancellation, shedding, health.

The serving contract under stress, deterministic by construction:
where a test needs the coalescer to be mid-flush it blocks the flush
on an event instead of racing timers, and where chaos drives the
health machinery the schedules come from a frozen
:class:`~repro.service.ChaosPlan`.
"""

import threading
import time

import numpy as np
import pytest

import repro.service.service as service_module
from repro.api import PricingRequest
from repro.errors import (
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.finance import generate_batch
from repro.service import (
    ChaosPlan,
    HealthPolicy,
    HealthState,
    PricingService,
    ServiceConfig,
)

STEPS = 16
KERNEL = "iv_b"
WAIT = 10.0


@pytest.fixture(scope="module")
def batch():
    return tuple(generate_batch(n_options=12, seed=33).options)


def _request(options, **overrides):
    kwargs = dict(options=tuple(options), steps=STEPS, kernel=KERNEL,
                  backend="numpy")
    kwargs.update(overrides)
    return PricingRequest(**kwargs)


class _BlockedFlush:
    """Hold the coalescer inside ``_flush`` until released."""

    def __init__(self, service):
        self.entered = threading.Event()
        self.release = threading.Event()
        original = service._flush

        def blocked(bucket, reason):
            self.entered.set()
            assert self.release.wait(WAIT)
            original(bucket, reason)

        service._flush = blocked


class TestDeadlines:
    def test_in_bucket_expiry_without_engine_work(self, batch):
        # the bucket would wait 10s; a 1 ms budget must expire first,
        # before any flush claims an engine
        config = ServiceConfig(max_wait_ms=10_000.0)
        with PricingService(config) as service:
            future = service.submit(_request(batch[:2], deadline_ms=1.0))
            with pytest.raises(DeadlineExceededError, match="expired"):
                future.result(timeout=WAIT)
            deadline = time.monotonic() + WAIT
            while (service.stats().deadline_expired == 0
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            stats = service.close()
        assert stats.deadline_expired == 1
        assert stats.flushes == 0  # no engine work was spent on it

    def test_in_queue_expiry_while_coalescer_is_busy(self, batch):
        config = ServiceConfig(max_wait_ms=0.0)
        service = PricingService(config)
        try:
            gate = _BlockedFlush(service)
            filler = service.submit(_request(batch[:1]))
            assert gate.entered.wait(WAIT)
            # queued behind the blocked flush with a budget already spent
            doomed = service.submit(_request(batch[1:3], deadline_ms=5.0))
            time.sleep(0.02)
            gate.release.set()
            with pytest.raises(DeadlineExceededError,
                               match="in the admission queue"):
                doomed.result(timeout=WAIT)
            assert filler.result(timeout=WAIT).prices.shape == (1,)
        finally:
            stats = service.close()
        assert stats.deadline_expired == 1
        assert stats.flushes == 1  # only the filler reached an engine

    def test_live_deadline_bounds_the_flush_chunk_timeout(self, batch,
                                                          monkeypatch):
        seen = {}
        original = service_module.run_request

        def spy(engine, request, deadline_s=None):
            seen["deadline_s"] = deadline_s
            return original(engine, request, deadline_s=deadline_s)

        monkeypatch.setattr(service_module, "run_request", spy)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            result = service.submit(
                _request(batch[:2], deadline_ms=5_000.0)).result(timeout=WAIT)
        assert result.prices.shape == (2,)
        assert seen["deadline_s"] is not None
        assert 0.0 < seen["deadline_s"] <= 5.0

    def test_no_deadline_propagates_none(self, batch, monkeypatch):
        seen = {}
        original = service_module.run_request

        def spy(engine, request, deadline_s=None):
            seen["deadline_s"] = deadline_s
            return original(engine, request, deadline_s=deadline_s)

        monkeypatch.setattr(service_module, "run_request", spy)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            service.submit(_request(batch[:2])).result(timeout=WAIT)
        assert seen["deadline_s"] is None

    def test_deadline_is_a_delivery_knob_not_identity(self, batch):
        plain = _request(batch[:2])
        tight = _request(batch[:2], deadline_ms=60_000.0, priority="high")
        from repro.service import request_key
        assert request_key(plain) == request_key(tight)
        assert plain.batch_key == tight.batch_key


class TestCancellation:
    def test_cancel_before_flush_is_honoured(self, batch):
        config = ServiceConfig(max_wait_ms=10_000.0)
        with PricingService(config) as service:
            future = service.submit(_request(batch[:2]))
            assert future.cancel()
            assert service.drain(timeout_s=WAIT)
            assert future.cancelled()
            assert service.stats().cancelled == 1
            assert service.stats().flushes == 0

    def test_cancelled_primary_promotes_its_follower(self, batch):
        config = ServiceConfig(max_wait_ms=10_000.0)
        with PricingService(config) as service:
            primary = service.submit(_request(batch[:3]))
            follower = service.submit(_request(batch[:3]))
            assert service.stats().inflight_joins == 1
            assert primary.cancel()
            assert service.drain(timeout_s=WAIT)
            result = follower.result(timeout=WAIT)
            stats = service.close()
        assert result.prices.shape == (3,)
        assert primary.cancelled()
        assert stats.cancelled == 1
        assert stats.flushes == 1  # the computation still ran, once


class TestPriorityShedding:
    def test_high_priority_sheds_the_oldest_normal_entry(self, batch):
        config = ServiceConfig(max_wait_ms=0.0, max_queue=3)
        service = PricingService(config)
        try:
            gate = _BlockedFlush(service)
            filler = service.submit(_request(batch[:1]))
            assert gate.entered.wait(WAIT)
            normals = [service.submit(_request(batch[i:i + 1]))
                       for i in range(1, 4)]  # queue now full
            high = service.submit(_request(batch[4:5], priority="high"))
            # the oldest normal entry carried the overload error away
            with pytest.raises(ServiceOverloadedError, match="shed"):
                normals[0].result(timeout=WAIT)
            # a normal submit against the still-full queue is rejected
            with pytest.raises(ServiceOverloadedError, match="full"):
                service.submit(_request(batch[5:6]))
            gate.release.set()
            for future in (filler, high, *normals[1:]):
                assert future.result(timeout=WAIT).prices.shape == (1,)
        finally:
            stats = service.close()
        assert stats.shed == 1
        assert stats.rejected == 1

    def test_high_priority_with_nothing_to_shed_is_rejected(self, batch):
        config = ServiceConfig(max_wait_ms=0.0, max_queue=2)
        service = PricingService(config)
        try:
            gate = _BlockedFlush(service)
            filler = service.submit(_request(batch[:1]))
            assert gate.entered.wait(WAIT)
            highs = [service.submit(_request(batch[i:i + 1], priority="high"))
                     for i in range(1, 3)]  # queue full of high entries
            with pytest.raises(ServiceOverloadedError,
                               match="no normal-priority entries"):
                service.submit(_request(batch[3:4], priority="high"))
            gate.release.set()
            for future in (filler, *highs):
                assert future.result(timeout=WAIT).prices.shape == (1,)
        finally:
            stats = service.close()
        assert stats.shed == 0
        assert stats.rejected == 1


class TestHealthAndSupervision:
    def test_flush_failures_degrade_then_unhealthy(self, batch):
        # every merged flush fails; individual re-runs still answer, so
        # callers see correct prices while health walks to UNHEALTHY
        config = ServiceConfig(
            max_wait_ms=0.0,
            chaos=ChaosPlan(seed=7, fail_every=1),
            health=HealthPolicy(unhealthy_consecutive_failures=3),
        )
        direct = []
        states = []
        with PricingService(config) as service:
            for i in range(3):
                request = _request(batch[i:i + 2])
                result = service.submit(request).result(timeout=WAIT)
                direct.append(result.prices)
                states.append(service.health().state)
            assert not service.ready
            report = service.health()
            stats = service.close()
        assert states[0] is HealthState.DEGRADED
        assert states[-1] is HealthState.UNHEALTHY
        assert report.failures == 3
        assert stats.health == "unhealthy"
        assert stats.health_transitions >= 2
        # parity under chaos is the acceptance suite's job; here the
        # shapes confirm every caller still got an answer
        assert all(p.shape == (2,) for p in direct)

    def test_wedge_restarts_engine_until_budget_exhausted(self, batch):
        config = ServiceConfig(
            max_wait_ms=0.0,
            chaos=ChaosPlan(seed=7, wedge_every=1),
            health=HealthPolicy(restart_limit=1, restart_backoff_s=0.0),
        )
        with PricingService(config) as service:
            first = service.submit(_request(batch[:2])).result(timeout=WAIT)
            assert service.stats().engine_restarts == 1
            # second wedge finds the budget spent: pinned UNHEALTHY
            second = service.submit(_request(batch[2:4])).result(timeout=WAIT)
            assert not service.ready
            report = service.health()
            # still answering while unhealthy (honest unreadiness, not
            # an outage) — and no further restarts are attempted
            third = service.submit(_request(batch[4:6])).result(timeout=WAIT)
            stats = service.close()
        assert first.prices.shape == second.prices.shape == (2,)
        assert third.prices.shape == (2,)
        assert report.restart_budget_exhausted
        assert report.state is HealthState.UNHEALTHY
        assert stats.engine_restarts == 1
        assert stats.health == "unhealthy"

    def test_restart_backoff_is_slept(self, batch, monkeypatch):
        slept = []
        monkeypatch.setattr(service_module.time, "sleep",
                            lambda s: slept.append(s))
        config = ServiceConfig(
            max_wait_ms=0.0,
            chaos=ChaosPlan(seed=7, wedge_every=1),
            health=HealthPolicy(restart_limit=2, restart_backoff_s=0.01),
        )
        with PricingService(config) as service:
            service.submit(_request(batch[:1])).result(timeout=WAIT)
            service.submit(_request(batch[1:2])).result(timeout=WAIT)
        assert 0.01 in slept  # first restart: base backoff
        assert 0.02 in slept  # second restart: doubled

    def test_ready_reflects_open_and_health(self, batch):
        service = PricingService(ServiceConfig(max_wait_ms=1.0))
        assert service.ready
        service.close()
        assert not service.ready


class TestDrain:
    def test_drain_flushes_partial_buckets_and_stays_open(self, batch):
        config = ServiceConfig(max_wait_ms=60_000.0)
        with PricingService(config) as service:
            futures = [service.submit(_request(batch[i:i + 1]))
                       for i in range(3)]
            assert service.drain(timeout_s=WAIT)
            assert all(future.done() for future in futures)
            assert not service.closed
            # still serving after the quiesce checkpoint
            late = service.submit(_request(batch[4:6]))
            assert service.drain(timeout_s=WAIT)
            late_result = late.result(timeout=WAIT)
            stats = service.close()
        assert late_result.prices.shape == (2,)
        assert stats.flush_drain >= 1
        prices = np.array([f.result().prices[0] for f in futures])
        assert np.all(np.isfinite(prices))

    def test_drain_on_closed_service_is_true(self):
        service = PricingService()
        service.close()
        assert service.drain(timeout_s=1.0)

    def test_drain_timeout_returns_false(self, batch):
        service = PricingService(ServiceConfig(max_wait_ms=0.0))
        try:
            gate = _BlockedFlush(service)
            future = service.submit(_request(batch[:1]))
            assert gate.entered.wait(WAIT)
            assert service.drain(timeout_s=0.05) is False
            gate.release.set()
            assert future.result(timeout=WAIT).prices.shape == (1,)
            assert service.drain(timeout_s=WAIT)
        finally:
            service.close()


class TestValidation:
    def test_deadline_must_be_positive(self, batch):
        with pytest.raises(Exception, match="deadline_ms"):
            _request(batch[:1], deadline_ms=0.0)

    def test_priority_must_be_known(self, batch):
        with pytest.raises(Exception, match="priority"):
            _request(batch[:1], priority="urgent")

    def test_health_policy_validation(self):
        with pytest.raises(ServiceError):
            HealthPolicy(window=0)
        with pytest.raises(ServiceError):
            HealthPolicy(degraded_failure_rate=1.5)
        with pytest.raises(ServiceError):
            HealthPolicy(restart_limit=-1)

    def test_chaos_plan_validation(self):
        with pytest.raises(ServiceError):
            ChaosPlan(stall_every=-1)
        with pytest.raises(ServiceError):
            ChaosPlan(stall_s=-0.1)


class _FlushDepthProbe:
    """Block the first flush; record the queue-depth gauge at the
    entry of every later flush.

    The gauge contract is that it reflects the *current* queue depth
    at every transition, so a flush — which runs strictly after its
    entries were dequeued — must always observe the post-dequeue
    value.
    """

    def __init__(self, service):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.depths = []
        self._service = service
        self._first = True
        original = service._flush

        def wrapped(bucket, reason):
            if self._first:
                self._first = False
                self.entered.set()
                assert self.release.wait(WAIT)
            else:
                self.depths.append(service.metrics.queue_depth.value())
            original(bucket, reason)

        service._flush = wrapped


class TestQueueDepthGauge:
    def test_gauge_current_at_flush_entry(self, batch):
        # max_batch=1: every request full-flushes inside the dequeue
        # loop, i.e. *before* any end-of-loop bookkeeping could paper
        # over a stale gauge.
        config = ServiceConfig(max_wait_ms=10_000.0, max_batch=1)
        service = PricingService(config)
        try:
            probe = _FlushDepthProbe(service)
            filler = service.submit(_request(batch[:1]))
            assert probe.entered.wait(WAIT)
            # The coalescer is pinned inside the filler's flush, so
            # these two sit in the queue untouched.
            second = service.submit(_request(batch[1:2]))
            third = service.submit(_request(batch[2:3]))
            assert service.metrics.queue_depth.value() == 2.0
            probe.release.set()
            for future in (filler, second, third):
                future.result(timeout=WAIT)
            # By the time either follow-up flush started, both entries
            # had been dequeued: the gauge must have said 0, not the
            # last submit-time snapshot.
            assert probe.depths == [0.0, 0.0]
        finally:
            service.close()

    def test_gauge_returns_to_zero_after_drain(self, batch):
        # Exercise the transitions that bypass a plain dequeue: a shed
        # (removed by a high-priority put), a caller-side cancel and an
        # in-queue deadline expiry all must leave the gauge honest.
        config = ServiceConfig(max_wait_ms=10_000.0, max_queue=2)
        service = PricingService(config)
        try:
            gate = _BlockedFlush(service)
            filler = service.submit(_request(batch[:1]))
            assert gate.entered.wait(WAIT)
            shed_me = service.submit(_request(batch[1:2]))
            cancel_me = service.submit(
                _request(batch[2:3], deadline_ms=1.0))
            assert service.metrics.queue_depth.value() == 2.0
            high = service.submit(
                _request(batch[3:4], priority="high"))
            with pytest.raises(ServiceOverloadedError):
                shed_me.result(timeout=WAIT)
            # One shed out, one high-priority in: still exactly two.
            assert service.metrics.queue_depth.value() == 2.0
            cancel_me.cancel()
            gate.release.set()
            filler.result(timeout=WAIT)
            # drain() flushes the high entry's bucket (its 10 s
            # coalescing window would otherwise still be open).
            assert service.drain(timeout_s=WAIT)
            high.result(timeout=WAIT)
            assert service.metrics.queue_depth.value() == 0.0
        finally:
            service.close()


class TestPostFlushDeadlineSymmetry:
    def test_primary_expires_when_flush_outlives_deadline(
            self, batch, monkeypatch):
        # The flush computes the answer in time but delivery is late:
        # the primary (claimed at flush) must get the same post-flush
        # deadline check as a joined follower would.
        real_run = service_module.run_request

        def slow_run(engine, request, deadline_s=None):
            result = real_run(engine, request, deadline_s=deadline_s)
            time.sleep(0.12)
            return result

        monkeypatch.setattr(service_module, "run_request", slow_run)
        with PricingService(ServiceConfig(max_wait_ms=0.0)) as service:
            future = service.submit(_request(batch[:2], deadline_ms=60.0))
            with pytest.raises(DeadlineExceededError,
                               match="flush was executing"):
                future.result(timeout=WAIT)
            deadline = time.monotonic() + WAIT
            while (service.stats().deadline_expired == 0
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            stats = service.close()
        assert stats.deadline_expired == 1
        # Engine work *was* spent — enforcement is post-flush, unlike
        # the pre-flush expiry path which costs no flush at all.
        assert stats.flushes == 1
