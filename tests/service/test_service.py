"""Tests for the PricingService: coalescing, caching, scoping, lifecycle."""

import threading

import numpy as np
import pytest

import repro.api as api
from repro.api import PricingRequest, ServiceResult
from repro.engine.engine import PricingEngine
from repro.errors import (
    FinanceError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.finance import ExerciseStyle, Option, OptionType, generate_batch
from repro.obs import keys as obs_keys
from repro.service import PricingService, ServiceConfig, ServiceStats

STEPS = 16
KERNEL = "iv_b"
WAIT = 10.0  # future.result timeout — generous, never reached when green


@pytest.fixture(scope="module")
def batch():
    return tuple(generate_batch(n_options=8, seed=21).options)


@pytest.fixture(scope="module")
def direct_prices(batch):
    with PricingEngine(kernel=KERNEL) as engine:
        return engine.run(list(batch), STEPS).prices


def _single_requests(batch, **overrides):
    kwargs = dict(steps=STEPS, kernel=KERNEL)
    kwargs.update(overrides)
    return [PricingRequest(options=(option,), **kwargs) for option in batch]


def _poison_option():
    """An Option whose NaN spot bypassed construction validation."""
    bad = object.__new__(Option)
    fields = dict(spot=float("nan"), strike=100.0, rate=0.02,
                  volatility=0.3, maturity=1.0,
                  option_type=OptionType.PUT,
                  exercise=ExerciseStyle.AMERICAN, dividend_yield=0.0)
    for name, value in fields.items():
        object.__setattr__(bad, name, value)
    return bad


class TestCoalescing:
    def test_full_flush_merges_the_bucket(self, batch, direct_prices):
        config = ServiceConfig(max_batch=len(batch), max_wait_ms=5000.0)
        with PricingService(config) as service:
            futures = [service.submit(request)
                       for request in _single_requests(batch)]
            results = [future.result(timeout=WAIT) for future in futures]
            stats = service.stats()
        prices = np.array([result.prices[0] for result in results])
        assert np.array_equal(prices, direct_prices)
        assert stats.flushes == stats.flush_full == 1
        assert stats.mean_flush_options == len(batch)
        for result in results:
            assert isinstance(result, ServiceResult)
            assert result.route == "service"
            assert result.batch_options == len(batch)
            assert not result.cache_hit

    def test_deadline_flush_releases_underfull_bucket(self, batch,
                                                      direct_prices):
        config = ServiceConfig(max_batch=10_000, max_wait_ms=20.0)
        with PricingService(config) as service:
            futures = [service.submit(request)
                       for request in _single_requests(batch[:4])]
            results = [future.result(timeout=WAIT) for future in futures]
            stats = service.stats()
        prices = np.array([result.prices[0] for result in results])
        assert np.array_equal(prices, direct_prices[:4])
        assert stats.flush_deadline >= 1 and stats.flush_full == 0

    def test_close_drains_partial_buckets(self, batch, direct_prices):
        config = ServiceConfig(max_batch=10_000, max_wait_ms=60_000.0)
        service = PricingService(config)
        futures = [service.submit(request)
                   for request in _single_requests(batch)]
        stats = service.close()
        prices = np.array([future.result(timeout=WAIT).prices[0]
                           for future in futures])
        assert np.array_equal(prices, direct_prices)
        assert stats.flush_drain >= 1

    def test_mixed_depths_share_a_bucket(self, batch):
        # steps is not part of batch_key: one flush covers both depths
        config = ServiceConfig(max_batch=len(batch), max_wait_ms=5000.0)
        shallow = _single_requests(batch[:4], steps=STEPS)
        deep = _single_requests(batch[4:], steps=STEPS * 2)
        with PricingService(config) as service:
            futures = [service.submit(request)
                       for request in shallow + deep]
            results = [future.result(timeout=WAIT) for future in futures]
            stats = service.stats()
        assert stats.flushes == 1
        with PricingEngine(kernel=KERNEL) as engine:
            expected = engine.run(
                list(batch), [STEPS] * 4 + [STEPS * 2] * 4).prices
        prices = np.array([result.prices[0] for result in results])
        assert np.array_equal(prices, expected)


class TestCache:
    def test_identical_request_is_a_hit(self, batch, direct_prices):
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            cold = service.submit(request).result(timeout=WAIT)
            hit = service.submit(request).result(timeout=WAIT)
            stats = service.stats()
        assert not cold.cache_hit and hit.cache_hit
        assert hit.batch_options == 0 and hit.wait_s == 0.0
        assert np.array_equal(cold.prices, direct_prices)
        assert np.array_equal(hit.prices, direct_prices)
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_rate == 0.5
        assert stats.cache_bytes > 0

    def test_cached_arrays_are_read_only(self, batch):
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            service.submit(request).result(timeout=WAIT)
            hit = service.submit(request).result(timeout=WAIT)
        with pytest.raises(ValueError):
            hit.prices[0] = 0.0

    def test_zero_budget_disables_caching(self, batch):
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL)
        config = ServiceConfig(max_wait_ms=1.0, cache_bytes=0)
        with PricingService(config) as service:
            first = service.submit(request).result(timeout=WAIT)
            second = service.submit(request).result(timeout=WAIT)
            stats = service.stats()
        assert not first.cache_hit and not second.cache_hit
        assert stats.cache_hits == 0 and stats.cache_misses == 2

    def test_identical_inflight_request_joins(self, batch, direct_prices):
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL)
        config = ServiceConfig(max_batch=10_000, max_wait_ms=250.0)
        with PricingService(config) as service:
            first = service.submit(request)
            second = service.submit(request)  # still buckets: joins
            primary = first.result(timeout=WAIT)
            follower = second.result(timeout=WAIT)
            stats = service.stats()
        assert stats.inflight_joins == 1
        assert stats.flushes == 1  # one execution served both futures
        assert not primary.cache_hit and follower.cache_hit
        assert np.array_equal(primary.prices, direct_prices)
        assert np.array_equal(follower.prices, direct_prices)


class TestGreeks:
    def test_greeks_match_the_direct_facade(self, batch):
        expected = api.greeks(list(batch), steps=STEPS, kernel=KERNEL)
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL,
                                 task="greeks")
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            cold = service.submit(request).result(timeout=WAIT)
            hit = service.submit(request).result(timeout=WAIT)
        assert hit.cache_hit
        for column in ("prices", "delta", "gamma", "theta", "vega", "rho"):
            assert np.array_equal(getattr(cold, column),
                                  getattr(expected, column)), column
            assert np.array_equal(getattr(hit, column),
                                  getattr(expected, column)), column

    def test_different_bumps_do_not_share_results(self, batch):
        base = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL,
                              task="greeks")
        bumped = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL,
                                task="greeks", bump_vol=5e-3)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            first = service.submit(base).result(timeout=WAIT)
            second = service.submit(bumped).result(timeout=WAIT)
        assert not second.cache_hit
        assert not np.array_equal(first.vega, second.vega)


class TestFailureScoping:
    def test_poisoned_request_fails_alone(self, batch, direct_prices):
        requests = _single_requests(batch, strict=False)
        poisoned = PricingRequest(options=(_poison_option(),), steps=STEPS,
                                  kernel=KERNEL, strict=False)
        config = ServiceConfig(max_batch=len(batch) + 1, max_wait_ms=5000.0)
        with PricingService(config) as service:
            futures = [service.submit(request) for request in requests]
            bad_future = service.submit(poisoned)
            results = [future.result(timeout=WAIT) for future in futures]
            bad = bad_future.result(timeout=WAIT)
        # the poisoned request sees its own NaN + record, index-local
        assert np.isnan(bad.prices[0])
        assert len(bad.failures) == 1 and bad.failures[0].index == 0
        # every coalesced neighbour is clean and bitwise-correct
        for result, expected in zip(results, direct_prices):
            assert not result.failures
            assert result.prices[0] == expected

    def test_strict_caller_gets_the_exception(self, batch):
        clean = _single_requests(batch[:2])
        poisoned = PricingRequest(options=(_poison_option(),), steps=STEPS,
                                  kernel=KERNEL, strict=True)
        config = ServiceConfig(max_batch=3, max_wait_ms=5000.0)
        with PricingService(config) as service:
            futures = [service.submit(request) for request in clean]
            bad_future = service.submit(poisoned)
            for future in futures:
                assert not future.result(timeout=WAIT).failures
            with pytest.raises(FinanceError):
                bad_future.result(timeout=WAIT)

    def test_failed_slices_are_never_cached(self, batch):
        poisoned = PricingRequest(options=(_poison_option(),), steps=STEPS,
                                  kernel=KERNEL, strict=False)
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            first = service.submit(poisoned).result(timeout=WAIT)
            second = service.submit(poisoned).result(timeout=WAIT)
            stats = service.stats()
        assert first.failures and second.failures
        assert not second.cache_hit
        assert stats.cache_hits == 0


class TestAdmission:
    def test_overload_rejects_with_backpressure_error(self, batch):
        config = ServiceConfig(max_batch=1, max_wait_ms=0.0, max_queue=1)
        service = PricingService(config)
        started, release = threading.Event(), threading.Event()
        original = service._flush

        def slow_flush(bucket, reason):
            started.set()
            release.wait(WAIT)
            original(bucket, reason)

        service._flush = slow_flush
        try:
            requests = _single_requests(batch[:3])
            first = service.submit(requests[0])
            assert started.wait(WAIT)  # coalescer is now parked in a flush
            second = service.submit(requests[1])  # fills the queue
            with pytest.raises(ServiceOverloadedError):
                service.submit(requests[2])
        finally:
            release.set()
        assert np.isfinite(first.result(timeout=WAIT).prices[0])
        assert np.isfinite(second.result(timeout=WAIT).prices[0])
        stats = service.close()
        assert stats.rejected == 1
        assert stats.requests == 3  # the rejected submit was still counted

    def test_submit_after_close_is_refused(self, batch):
        service = PricingService()
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(PricingRequest(options=batch[:1], steps=STEPS,
                                          kernel=KERNEL))

    def test_submit_rejects_non_requests(self):
        with PricingService() as service:
            with pytest.raises(ServiceError, match="PricingRequest"):
                service.submit({"spot": 100.0})


class TestLifecycle:
    def test_close_is_idempotent_and_freezes_stats(self, batch):
        service = PricingService(ServiceConfig(max_wait_ms=1.0))
        request = PricingRequest(options=batch, steps=STEPS, kernel=KERNEL)
        service.submit(request).result(timeout=WAIT)
        first = service.close()
        second = service.close()
        assert service.closed
        assert first is second is service.stats()

    def test_stats_schema_is_stable(self, batch):
        with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
            request = PricingRequest(options=batch, steps=STEPS,
                                     kernel=KERNEL)
            service.submit(request).result(timeout=WAIT)
            stats = service.close()
        snapshot = stats.as_dict()
        assert tuple(snapshot) == obs_keys.SERVICE_STATS_KEYS
        assert obs_keys.SERVICE_STATS_SCHEMA == "repro-service-stats/v5"
        assert snapshot["requests"] == 1 and snapshot["options"] == len(batch)
        assert "requests=1" in stats.describe()

    def test_close_publishes_into_the_process_registry(self, batch):
        from repro.obs import get_registry
        from repro.obs.metrics import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry())
        try:
            with PricingService(ServiceConfig(max_wait_ms=1.0)) as service:
                request = PricingRequest(options=batch, steps=STEPS,
                                         kernel=KERNEL)
                service.submit(request).result(timeout=WAIT)
            published = get_registry().value(
                obs_keys.SERVICE_REQUESTS_TOTAL)
        finally:
            set_registry(previous)
        assert published == 1

    def test_empty_stats_are_all_zero(self):
        stats = PricingService().close()
        assert stats == ServiceStats()
        assert stats.cache_hit_rate == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"max_queue": 0},
        {"cache_bytes": -1},
        {"workers": 0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)

    def test_workers_and_engine_config_conflict(self):
        from repro.engine import EngineConfig
        with pytest.raises(ServiceError, match="not both"):
            ServiceConfig(workers=2, engine_config=EngineConfig(workers=2))
