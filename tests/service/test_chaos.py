"""Chaos acceptance suite for the pricing service.

Drives a mixed request stream through a service whose config carries a
seeded :class:`~repro.service.ChaosPlan` — coalescer stalls, injected
flush failures, engine wedges, cache bit-flips and eviction storms all
firing on deterministic schedules — and asserts the serving contract
holds anyway:

* every admitted future resolves, with a result or a *typed* service
  error — nothing hangs, nothing leaks;
* every successful result is **bitwise identical** to a chaos-free
  run of the same request (corrupted cache entries are detected by
  checksum and recomputed, never served);
* the coalescer thread and every engine the service owned are gone
  after ``close()``.

Seeds come from ``REPRO_CHAOS_SEED`` when set (the CI chaos matrix
runs one seed per job) and default to all three CI seeds locally.
Pacing note: no ``pytest-timeout`` markers here — the plugin is an
optional CI dependency; CI passes ``--timeout`` on the command line.
"""

import os
import threading

import numpy as np
import pytest

from repro.api import PricingRequest
from repro.errors import ChaosInjectedError, ServiceError
from repro.finance import generate_batch
from repro.service import ChaosPlan, HealthPolicy, PricingService, ServiceConfig

STEPS = 16
KERNEL = "iv_b"
WAIT = 30.0
ROUNDS = 3

_env_seed = os.environ.get("REPRO_CHAOS_SEED", "").strip()
SEEDS = [int(_env_seed)] if _env_seed else [101, 202, 303]


@pytest.fixture(scope="module")
def options():
    return tuple(generate_batch(n_options=24, seed=77).options)


def _workload(options, round_index: int):
    """One round's request list: varied sizes, duplicates, one greeks.

    Rounds shift their slice window so each round's content is fresh
    (not a pure cache hit), while duplicates *within* a round exercise
    in-flight dedup under chaos.
    """
    base = round_index * 5
    requests = []
    for width, repeat in ((1, 2), (2, 1), (3, 2), (4, 1)):
        lo = (base + width) % (len(options) - width)
        request = PricingRequest(options=options[lo:lo + width],
                                 steps=STEPS, kernel=KERNEL,
                                 backend="numpy", strict=False)
        requests.extend([request] * repeat)
    lo = (base + 7) % (len(options) - 2)
    requests.append(PricingRequest(options=options[lo:lo + 2], steps=STEPS,
                                   kernel=KERNEL, backend="numpy",
                                   task="greeks", strict=False))
    return requests


def _payload(request, result):
    """Comparable tuple of every numeric column a request resolves to."""
    columns = [np.asarray(result.prices)]
    if request.task == "greeks":
        columns.extend(np.asarray(getattr(result, name))
                       for name in ("delta", "gamma", "theta", "vega", "rho"))
    return columns


@pytest.fixture(scope="module")
def baseline(options):
    """Chaos-free reference results, keyed by (round, request index)."""
    reference = {}
    with PricingService(ServiceConfig(max_batch=8, max_wait_ms=1.0)) as calm:
        for round_index in range(ROUNDS + 1):
            for i, request in enumerate(_workload(options, round_index)):
                result = calm.submit(request).result(timeout=WAIT)
                reference[(round_index, i)] = _payload(request, result)
    return reference


class TestChaosAcceptance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_future_resolves_and_parity_holds(self, options, baseline,
                                                    seed):
        plan = ChaosPlan.random(seed)
        assert plan.active()
        config = ServiceConfig(
            max_batch=8, max_wait_ms=1.0,
            chaos=plan,
            # generous restart budget: the wedge schedule may fire many
            # times across rounds and exhaustion pins UNHEALTHY (its
            # own test); here the supervisor machinery should keep up
            health=HealthPolicy(restart_limit=64, restart_backoff_s=0.0),
        )
        service = PricingService(config)
        outcomes = {}
        lock = threading.Lock()

        def submit_round(round_index):
            futures = [(i, request, service.submit(request))
                       for i, request in enumerate(
                           _workload(options, round_index))]
            for i, request, future in futures:
                try:
                    value = future.result(timeout=WAIT)
                except Exception as exc:  # noqa: BLE001 - classified below
                    value = exc
                with lock:
                    outcomes[(round_index, i)] = (request, value)

        threads = [threading.Thread(target=submit_round, args=(r,))
                   for r in range(ROUNDS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # one more sequential pass: re-requests round 0..2 content plus
        # fresh round-3 content, so corrupted cache entries get hit,
        # detected and recomputed rather than lingering unnoticed
        submit_round(ROUNDS)
        injected = service._chaos.counts()
        ticks = dict(service._chaos._counts)
        corruptions_detected = service._cache.corruptions_detected
        stats = service.close()

        # -- everything resolved, with results or typed errors ------------
        assert len(outcomes) == (ROUNDS + 1) * len(_workload(options, 0))
        failures = {key: value for key, value in outcomes.items()
                    if isinstance(value[1], BaseException)}
        for key, (request, exc) in failures.items():
            assert isinstance(exc, ServiceError), (key, exc)
            # chaos errors must be healed by the individual re-run path,
            # never surfaced to a caller
            assert not isinstance(exc, ChaosInjectedError), key

        # -- bitwise parity of every successful result ---------------------
        for key, (request, value) in outcomes.items():
            if isinstance(value, BaseException):
                continue
            for got, want in zip(_payload(request, value), baseline[key]):
                assert np.array_equal(got, want), key

        # -- the run was genuinely chaotic, exactly on schedule ------------
        # a surface's k-th event fires when k % every == every - 1, so
        # over n ticks it fires exactly n // every times — replayability
        # is arithmetic, not luck
        assert injected["stalls"] == ticks["flush"] // plan.stall_every
        assert (injected["flush_failures"]
                == ticks["flush"] // plan.fail_every)
        assert injected["wedges"] == ticks["wedge"] // plan.wedge_every
        assert injected["corruptions"] == ticks["store"] // plan.corrupt_every
        assert injected["evictions"] == ticks["store"] // plan.evict_every
        # enough traffic flowed for chaos to actually land somewhere
        assert injected["stalls"] > 0 and injected["corruptions"] > 0
        # detected corruption count is bounded by injected corruption
        assert 0 <= corruptions_detected <= injected["corruptions"]

        # -- no leaks ------------------------------------------------------
        assert not service._thread.is_alive()
        assert all(engine.closed for engine in service._engines.values())
        assert not any(thread.name == "repro-service-coalescer"
                       and thread.is_alive()
                       for thread in threading.enumerate())
        assert stats.requests == len(outcomes)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan_is_a_pure_function_of_its_seed(self, seed):
        assert ChaosPlan.random(seed) == ChaosPlan.random(seed)
        assert ChaosPlan.random(seed) != ChaosPlan.random(seed + 1)


class TestTargetedChaos:
    def test_corrupted_cache_entry_is_detected_and_recomputed(self, options):
        plan = ChaosPlan(seed=1, corrupt_every=1)
        config = ServiceConfig(max_wait_ms=0.0, chaos=plan)
        request = PricingRequest(options=options[:3], steps=STEPS,
                                 kernel=KERNEL, backend="numpy")
        with PricingService(ServiceConfig(max_wait_ms=0.0)) as calm:
            want = calm.submit(request).result(timeout=WAIT).prices
        with PricingService(config) as service:
            first = service.submit(request).result(timeout=WAIT)
            # the stored entry was bit-flipped after admission; the
            # re-submit must detect it, miss, and recompute
            second = service.submit(request).result(timeout=WAIT)
            detected = service._cache.corruptions_detected
            stats = service.close()
        assert np.array_equal(first.prices, want)
        assert np.array_equal(second.prices, want)
        assert detected >= 1
        assert not second.cache_hit or stats.cache_misses >= 2

    def test_eviction_storm_forces_recompute_with_parity(self, options):
        plan = ChaosPlan(seed=2, evict_every=1)
        config = ServiceConfig(max_wait_ms=0.0, chaos=plan)
        request = PricingRequest(options=options[:2], steps=STEPS,
                                 kernel=KERNEL, backend="numpy")
        with PricingService(config) as service:
            first = service.submit(request).result(timeout=WAIT)
            second = service.submit(request).result(timeout=WAIT)
            stats = service.close()
        assert np.array_equal(first.prices, second.prices)
        assert stats.cache_hits == 0  # every store was immediately cleared

    def test_stall_schedule_delays_but_does_not_fail(self, options):
        plan = ChaosPlan(seed=3, stall_every=1, stall_s=0.002)
        config = ServiceConfig(max_wait_ms=0.0, chaos=plan)
        request = PricingRequest(options=options[:2], steps=STEPS,
                                 kernel=KERNEL, backend="numpy")
        with PricingService(config) as service:
            result = service.submit(request).result(timeout=WAIT)
            counts = service._chaos.counts()
        assert result.prices.shape == (2,)
        assert counts["stalls"] == 1
