"""Tests for the content key and the byte-budgeted LRU result cache."""

import dataclasses

import numpy as np
import pytest

from repro.api import PricingRequest
from repro.finance import generate_batch
from repro.service import CacheEntry, ResultCache, request_key

STEPS = 16


@pytest.fixture(scope="module")
def batch():
    return tuple(generate_batch(n_options=6, seed=11).options)


def _request(batch, **overrides):
    kwargs = dict(options=batch, steps=STEPS, kernel="iv_b")
    kwargs.update(overrides)
    return PricingRequest(**kwargs)


def _entry(n=1, value=1.0):
    return CacheEntry(prices=CacheEntry.freeze(
        np.full(n, value, dtype=np.float64)))


class TestRequestKey:
    def test_identical_content_hashes_identically(self, batch):
        assert request_key(_request(batch)) == request_key(_request(batch))

    def test_rebuilt_options_hash_identically(self, batch):
        rebuilt = tuple(dataclasses.replace(option) for option in batch)
        assert request_key(_request(batch)) == request_key(_request(rebuilt))

    @pytest.mark.parametrize("override", [
        {"steps": STEPS * 2},
        {"kernel": "reference"},
        {"precision": "single"},
        {"task": "greeks"},
    ])
    def test_value_affecting_fields_change_the_key(self, batch, override):
        assert (request_key(_request(batch, **override))
                != request_key(_request(batch)))

    def test_any_option_field_changes_the_key(self, batch):
        options = list(batch)
        options[2] = dataclasses.replace(options[2],
                                         volatility=options[2].volatility
                                         + 1e-12)
        assert (request_key(_request(tuple(options)))
                != request_key(_request(batch)))

    def test_greeks_bumps_change_the_key(self, batch):
        base = _request(batch, task="greeks")
        bumped = _request(batch, task="greeks", bump_vol=2e-3)
        assert request_key(base) != request_key(bumped)

    def test_delivery_knobs_do_not_change_the_key(self, batch):
        # strict and workers shape error handling and speed, never the
        # numbers — requests differing only there must share an entry
        assert (request_key(_request(batch, strict=False, workers=2))
                == request_key(_request(batch)))

    def test_option_order_changes_the_key(self, batch):
        assert (request_key(_request(tuple(reversed(batch))))
                != request_key(_request(batch)))


class TestResultCache:
    def test_get_miss_then_hit(self):
        cache = ResultCache(1024)
        assert cache.get("k") is None
        entry = _entry()
        assert cache.put("k", entry) == 0
        assert cache.get("k") is entry
        assert cache.bytes_used == entry.nbytes

    def test_lru_eviction_order(self):
        # budget for exactly two one-float entries
        cache = ResultCache(16)
        cache.put("a", _entry())
        cache.put("b", _entry())
        cache.get("a")  # refresh: b is now least recently used
        assert cache.put("c", _entry()) == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_oversized_entry_not_admitted(self):
        cache = ResultCache(16)
        cache.put("a", _entry())
        assert cache.put("big", _entry(n=4)) == 0
        assert cache.get("big") is None
        assert cache.get("a") is not None  # nothing was evicted for it

    def test_replacing_a_key_reuses_its_budget(self):
        cache = ResultCache(16)
        cache.put("a", _entry(value=1.0))
        assert cache.put("a", _entry(value=2.0)) == 0
        assert len(cache) == 1
        assert cache.bytes_used == 8
        assert cache.get("a").prices[0] == 2.0

    def test_zero_budget_disables_the_cache(self):
        cache = ResultCache(0)
        assert cache.put("a", _entry()) == 0
        assert cache.get("a") is None
        assert cache.bytes_used == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_clear(self):
        cache = ResultCache(1024)
        cache.put("a", _entry())
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0

    def test_frozen_arrays_are_read_only_copies(self):
        source = np.ones(3)
        frozen = CacheEntry.freeze(source)
        source[0] = 7.0
        assert frozen[0] == 1.0
        with pytest.raises(ValueError):
            frozen[0] = 2.0

    def test_entry_nbytes_counts_greeks_columns(self):
        prices = CacheEntry.freeze(np.ones(2))
        greeks = tuple(CacheEntry.freeze(np.ones(2)) for _ in range(5))
        assert CacheEntry(prices=prices).nbytes == 16
        assert CacheEntry(prices=prices, greeks=greeks).nbytes == 96


class TestVerification:
    @staticmethod
    def _flip_bit(entry):
        prices = entry.prices
        prices.setflags(write=True)
        try:
            prices.view(np.uint64)[0] ^= np.uint64(1)
        finally:
            prices.setflags(write=False)

    def test_corrupted_hit_is_discarded_and_counted(self):
        cache = ResultCache(1024, verify=True)
        entry = _entry()
        cache.put("k", entry)
        self._flip_bit(entry)
        assert cache.get("k") is None
        assert cache.corruptions_detected == 1
        assert len(cache) == 0 and cache.bytes_used == 0

    def test_clean_hit_survives_verification(self):
        cache = ResultCache(1024, verify=True)
        entry = _entry()
        cache.put("k", entry)
        assert cache.get("k") is entry
        assert cache.corruptions_detected == 0

    def test_verification_off_serves_corrupted_bytes(self):
        # the contrast case: without verify the cache cannot tell
        cache = ResultCache(1024, verify=False)
        entry = _entry()
        cache.put("k", entry)
        self._flip_bit(entry)
        assert cache.get("k") is entry

    def test_greeks_columns_are_checksummed_too(self):
        greeks = tuple(CacheEntry.freeze(np.ones(1)) for _ in range(5))
        entry = CacheEntry(prices=CacheEntry.freeze(np.ones(1)),
                           greeks=greeks)
        cache = ResultCache(1024, verify=True)
        cache.put("k", entry)
        column = entry.greeks[3]
        column.setflags(write=True)
        try:
            column[0] = 7.0
        finally:
            column.setflags(write=False)
        assert cache.get("k") is None
        assert cache.corruptions_detected == 1

    def test_eviction_drops_the_digest(self):
        cache = ResultCache(8, verify=True)
        cache.put("a", _entry())
        cache.put("b", _entry())  # evicts a
        assert cache.get("a") is None
        assert cache._digests.keys() == {"b"}


class TestThreadedStress:
    def test_concurrent_churn_at_tiny_budget(self):
        """Satellite stress: get/put/clear churn must not corrupt state.

        A tiny budget forces constant eviction while readers race
        writers; afterwards the cache must be exactly consistent —
        byte accounting matches the surviving entries, residency never
        exceeded the budget, and every hit returned a valid entry.
        Worker 0 additionally flips bits in entries it admitted while
        they may still be resident, so the verify-mode hit path (hash
        outside the lock, re-check, discard on mismatch) is exercised
        under the same churn.
        """
        import threading

        budget = 64  # eight one-float entries
        cache = ResultCache(budget, verify=True)
        keys = [f"key-{i}" for i in range(32)]
        errors = []
        start = threading.Barrier(8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            mine = []
            start.wait()
            try:
                for step in range(400):
                    key = keys[int(rng.integers(len(keys)))]
                    action = step % 4
                    if action == 0:
                        entry = _entry(value=float(seed))
                        cache.put(key, entry)
                        mine.append(entry)
                    elif action == 1 and seed == 0 and mine:
                        # live silent corruption: racing readers must
                        # discard, never serve, the flipped entry
                        TestVerification._flip_bit(
                            mine[int(rng.integers(len(mine)))])
                    elif action == 3 and step % 100 == 99:
                        cache.clear()
                    else:
                        hit = cache.get(key)
                        if hit is not None:
                            assert hit.prices.shape == (1,)
                    assert cache.bytes_used <= budget
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # final accounting is exact, not merely bounded
        assert cache.bytes_used == sum(
            entry.nbytes for entry in cache._entries.values())
        assert cache.bytes_used <= budget
        assert set(cache._digests) <= set(cache._entries)
        # Corruptions may or may not have been *observed* (a flipped
        # entry can be evicted before any reader hashes it), but the
        # counter must never go backwards or explode past the flips.
        assert 0 <= cache.corruptions_detected <= 400


class TestVerificationLocking:
    """The verify-mode hit path must hash outside the global lock."""

    def test_checksum_runs_outside_the_lock(self):
        # Regression: get() used to compute the blake2b payload digest
        # while holding the cache lock, serialising every concurrent
        # reader behind hashing.
        cache = ResultCache(1024, verify=True)
        held_during_hash = []

        class _ProbeEntry(CacheEntry):
            def checksum(entry_self):
                free = cache._lock.acquire(blocking=False)
                if free:
                    cache._lock.release()
                held_during_hash.append(not free)
                return CacheEntry.checksum(entry_self)

        entry = _ProbeEntry(prices=CacheEntry.freeze(np.ones(1)))
        cache.put("k", entry)
        # Admission hashes under the lock (cheap, once); only the hit
        # path's hashing matters for reader concurrency.
        held_during_hash.clear()
        assert cache.get("k") is entry
        assert held_during_hash == [False]

    def test_replaced_while_hashing_retries_to_current_entry(self):
        cache = ResultCache(1024, verify=True)
        replacement = _entry(value=2.0)

        class _SwappedEntry(CacheEntry):
            def checksum(entry_self):
                # Swap the key out from under the in-progress get() —
                # only possible when hashing runs outside the lock.
                if cache._lock.acquire(blocking=False):
                    cache._lock.release()
                    if cache._entries.get("k") is entry_self:
                        cache.put("k", replacement)
                return CacheEntry.checksum(entry_self)

        cache.put("k", _SwappedEntry(prices=CacheEntry.freeze(np.ones(1))))
        # get() hashes the old entry, notices it is no longer current,
        # and retries against (and verifies) the replacement.
        assert cache.get("k") is replacement
        assert cache.corruptions_detected == 0
