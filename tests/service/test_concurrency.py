"""Concurrency determinism: coalescing must not move a single ULP.

Satellite contract for the service layer: N caller threads submitting
shuffled, duplicated single-option requests must produce prices
bitwise-identical to one direct ``engine.run`` of the deduplicated
batch — including under deterministic fault injection, whose transient
faults heal on retry — and a poisoned request must fail alone.
"""

import random
import threading

import numpy as np
import pytest

from repro.api import PricingRequest
from repro.engine.engine import PricingEngine
from repro.engine.faults import FaultPlan
from repro.finance import generate_batch
from repro.service import PricingService, ServiceConfig

STEPS = 24
KERNEL = "iv_b"
N_OPTIONS = 24
N_THREADS = 4
WAIT = 30.0


@pytest.fixture(scope="module")
def batch():
    return tuple(generate_batch(n_options=N_OPTIONS, seed=31).options)


def _submit_shuffled(service, batch, seed):
    """Each thread submits every option once, in its own shuffled order.

    Across threads every option is therefore requested ``N_THREADS``
    times — the duplicates exercise the cache and the in-flight-join
    path concurrently with fresh computations.
    """
    by_index = {}
    lock = threading.Lock()
    errors = []

    def client(thread_id):
        order = list(range(len(batch)))
        random.Random(seed * 1000 + thread_id).shuffle(order)
        try:
            for index in order:
                request = PricingRequest(options=(batch[index],),
                                         steps=STEPS, kernel=KERNEL,
                                         strict=False)
                result = service.submit(request).result(timeout=WAIT)
                assert not result.failures
                with lock:
                    by_index.setdefault(index, []).append(
                        result.prices[0])
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(t,), daemon=True)
               for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return by_index


class TestBitwiseDeterminism:
    @pytest.mark.parametrize("fault_seed", [101, 202, 303])
    def test_shuffled_duplicates_match_direct_run(self, batch, fault_seed):
        faults = FaultPlan.random(fault_seed, N_OPTIONS)
        with PricingEngine(kernel=KERNEL, faults=faults) as engine:
            direct = engine.run(list(batch), STEPS)
        assert not direct.failures  # transient faults heal on retry

        config = ServiceConfig(max_batch=8, max_wait_ms=5.0,
                               max_queue=4 * N_OPTIONS * N_THREADS,
                               faults=FaultPlan.random(fault_seed,
                                                       N_OPTIONS))
        with PricingService(config) as service:
            by_index = _submit_shuffled(service, batch, fault_seed)
            stats = service.close()

        # every thread saw every option; all copies bitwise-identical
        # to the direct deduplicated run, regardless of which flush,
        # cache hit, or in-flight join produced them
        assert sorted(by_index) == list(range(N_OPTIONS))
        for index, copies in by_index.items():
            assert len(copies) == N_THREADS
            for price in copies:
                assert price == direct.prices[index]

        assert stats.requests == N_OPTIONS * N_THREADS
        # duplicates were not all recomputed: hits + joins covered them
        assert (stats.cache_hits + stats.inflight_joins
                + stats.cache_misses) == stats.requests
        assert stats.cache_misses < stats.requests

    def test_poisoned_request_is_isolated_under_concurrency(self, batch):
        import dataclasses

        poisoned_option = dataclasses.replace(batch[0])
        object.__setattr__(poisoned_option, "volatility", float("nan"))
        poisoned = PricingRequest(options=(poisoned_option,), steps=STEPS,
                                  kernel=KERNEL, strict=False)

        with PricingEngine(kernel=KERNEL) as engine:
            direct = engine.run(list(batch), STEPS)

        config = ServiceConfig(max_batch=8, max_wait_ms=5.0,
                               max_queue=4 * N_OPTIONS * N_THREADS)
        with PricingService(config) as service:
            bad_future = service.submit(poisoned)
            by_index = _submit_shuffled(service, batch, seed=7)
            bad = bad_future.result(timeout=WAIT)

        assert np.isnan(bad.prices[0])
        assert len(bad.failures) == 1 and bad.failures[0].index == 0
        for index, copies in by_index.items():
            for price in copies:
                assert price == direct.prices[index]
