"""The consistent-hash routing ring.

Routing must be deterministic (a batch key always lands on the same
shard), reasonably balanced over realistic key mixes, and *minimally
disruptive* when the shard count changes — the property that names the
structure: growing N shards to N+1 may move only a fraction of the key
space, where a modulo router would reshuffle almost all of it.
"""

import pytest

from repro.api import PricingRequest
from repro.errors import ReproError
from repro.finance import generate_batch
from repro.serve import HashRing


def synthetic_keys(count: int):
    """Key-shaped tuples with the same repr-hashing path batch keys use."""
    return [("kernel-%d" % (i % 7), "double" if i % 2 else "single",
             "crr", "numpy", "price", i) for i in range(count)]


class TestRouting:
    def test_route_is_deterministic(self):
        ring = HashRing(4)
        keys = synthetic_keys(50)
        first = [ring.route(key) for key in keys]
        second = [ring.route(key) for key in keys]
        assert first == second

    def test_two_rings_agree(self):
        # independent instances must route identically: shard restart
        # rebuilds nothing, routing state is pure function of (shards,
        # replicas)
        keys = synthetic_keys(50)
        assert [HashRing(3).route(k) for k in keys] == \
            [HashRing(3).route(k) for k in keys]

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert {ring.route(key) for key in synthetic_keys(20)} == {0}

    def test_routes_are_valid_shard_indices(self):
        ring = HashRing(5)
        for key in synthetic_keys(100):
            assert 0 <= ring.route(key) < 5

    def test_batch_keys_spread_over_shards(self):
        # the serve traffic mix must not pin every request to one shard
        from repro.bench.service_bench import SERVE_TRAFFIC_VARIANTS

        options = tuple(generate_batch(n_options=2, seed=5).options)
        keys = [
            PricingRequest(options=options, steps=16, kernel=kernel,
                           precision=precision, family=family).batch_key
            for kernel, precision, family in SERVE_TRAFFIC_VARIANTS
        ]
        ring = HashRing(2)
        assert len({ring.route(key) for key in keys}) == 2

    def test_distribution_accounts_every_key(self):
        ring = HashRing(3)
        keys = synthetic_keys(120)
        distribution = ring.distribution(keys)
        assert sum(distribution) == len(keys)
        # virtual nodes keep the spread sane: no shard may starve
        assert all(count > 0 for count in distribution)


class TestResize:
    def test_growth_moves_only_a_fraction(self):
        keys = synthetic_keys(400)
        before = {key: HashRing(4).route(key) for key in keys}
        after = {key: HashRing(5).route(key) for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        # ideal consistent hashing moves ~1/5 of keys; allow headroom
        # but stay far below the ~4/5 a modulo router would move
        assert moved / len(keys) < 0.45

    def test_growth_never_reroutes_between_surviving_shards(self):
        # keys that move must move TO the new shard — consistent
        # hashing only carves ranges out for the newcomer
        keys = synthetic_keys(400)
        small, large = HashRing(4), HashRing(5)
        for key in keys:
            if small.route(key) != large.route(key):
                assert large.route(key) == 4

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ReproError):
            HashRing(0)
        with pytest.raises(ReproError):
            HashRing(-2)
