"""The versioned wire schema: lossless codec, total error table.

``repro-request/v1`` / ``repro-result/v1`` carry every float as
``float.hex()``, so a request or result that crosses the network is
*bitwise* identical after the round trip — the serving tier's parity
guarantee starts here.  The error table must stay total over the
serving error surface and its published codes stable.
"""

import json
import math

import numpy as np
import pytest

from repro.api import (
    BatchResult,
    GreeksResult,
    PriceResult,
    PricingRequest,
    ServiceResult,
    WIRE_REQUEST_SCHEMA,
    WIRE_RESULT_SCHEMA,
    greeks,
    price,
)
from repro.engine.reliability import FailureRecord
from repro.errors import (
    CANCELLED_HTTP_STATUS,
    CANCELLED_WIRE_CODE,
    DeadlineExceededError,
    INTERNAL_WIRE_CODE,
    ReproError,
    ServiceOverloadedError,
    WIRE_ERRORS,
    error_from_wire,
    wire_error,
)
from repro.finance import generate_batch

STEPS = 16


def wire_round_trip(request: PricingRequest) -> PricingRequest:
    """dict -> JSON bytes -> dict -> request, like the server does."""
    payload = json.dumps(request.to_dict()).encode("utf-8")
    return PricingRequest.from_dict(json.loads(payload))


class TestRequestRoundTrip:
    def test_default_request_survives(self, small_batch):
        request = PricingRequest(options=tuple(small_batch), steps=STEPS)
        rebuilt = wire_round_trip(request)
        assert rebuilt == request
        assert rebuilt.batch_key == request.batch_key

    def test_every_float_field_is_bitwise(self, small_batch):
        # awkward values: subnormal, negative zero, huge, tiny-epsilon
        awkward = math.ldexp(1.0, -1060)
        request = PricingRequest(
            options=tuple(small_batch), steps=STEPS, task="greeks",
            bump_vol=awkward, bump_rate=1e-4 + 1e-19,
            deadline_ms=1000.0 / 3.0, priority="high",
            precision="single", kernel="iv_a", family="tian",
            workers=2, strict=True, backend="numpy")
        rebuilt = wire_round_trip(request)
        assert rebuilt == request
        for sent, received in zip(request.options, rebuilt.options):
            for field in ("spot", "strike", "rate", "volatility",
                          "maturity", "dividend_yield"):
                assert math.copysign(1.0, getattr(sent, field)) == \
                    math.copysign(1.0, getattr(received, field))
                assert getattr(sent, field).hex() == \
                    getattr(received, field).hex()

    def test_per_option_steps_survive(self, small_batch):
        request = PricingRequest(options=tuple(small_batch),
                                 steps=tuple(8 + i for i in
                                             range(len(small_batch))))
        assert wire_round_trip(request) == request

    def test_schema_tag_is_checked(self, small_batch):
        data = PricingRequest(options=tuple(small_batch),
                              steps=STEPS).to_dict()
        assert data["schema"] == WIRE_REQUEST_SCHEMA
        data["schema"] = "repro-request/v999"
        with pytest.raises(ReproError, match="schema"):
            PricingRequest.from_dict(data)

    def test_malformed_document_is_a_typed_error(self, small_batch):
        with pytest.raises(ReproError, match="'options' list"):
            PricingRequest.from_dict({"schema": WIRE_REQUEST_SCHEMA,
                                      "options": "not-a-list"})
        broken = PricingRequest(options=tuple(small_batch),
                                steps=STEPS).to_dict()
        broken["steps"] = {"not": "steps"}
        with pytest.raises(ReproError, match="malformed wire request"):
            PricingRequest.from_dict(broken)

    def test_plain_json_numbers_accepted(self, small_batch):
        # a hand-written client may send 100.0 instead of float.hex();
        # the decoder tolerates it (losing only the bitwise guarantee)
        data = PricingRequest(options=tuple(small_batch),
                              steps=STEPS).to_dict()
        data["options"][0]["spot"] = 123.25
        rebuilt = PricingRequest.from_dict(data)
        assert rebuilt.options[0].spot == 123.25


class TestResultRoundTrip:
    def result_round_trip(self, result):
        payload = json.dumps(result.to_dict()).encode("utf-8")
        return BatchResult.from_dict(json.loads(payload))

    def test_price_result_bitwise(self, small_batch):
        result = price(small_batch, steps=STEPS)
        rebuilt = self.result_round_trip(result)
        assert isinstance(rebuilt, PriceResult)
        np.testing.assert_array_equal(rebuilt.prices, result.prices)
        assert rebuilt.route == result.route
        assert rebuilt.stats.options == result.stats.options

    def test_greeks_result_bitwise(self, small_batch):
        result = greeks(small_batch, steps=STEPS)
        rebuilt = self.result_round_trip(result)
        assert isinstance(rebuilt, GreeksResult)
        for column in ("prices", "delta", "gamma", "theta", "vega", "rho"):
            np.testing.assert_array_equal(getattr(rebuilt, column),
                                          getattr(result, column))

    def test_service_result_extras_survive(self, small_batch):
        base = price(small_batch, steps=STEPS)
        result = ServiceResult(prices=base.prices, route=base.route,
                               stats=base.stats, cache_hit=True,
                               batch_options=17, wait_s=1.0 / 3.0)
        rebuilt = self.result_round_trip(result)
        assert isinstance(rebuilt, ServiceResult)
        assert rebuilt.cache_hit is True
        assert rebuilt.batch_options == 17
        assert rebuilt.wait_s.hex() == (1.0 / 3.0).hex()

    def test_failure_records_survive(self, small_batch):
        base = price(small_batch, steps=STEPS)
        record = FailureRecord(index=3, error="EngineError",
                               message="injected", attempts=2)
        result = ServiceResult(prices=base.prices, route=base.route,
                               stats=base.stats,
                               failures=(record,))
        rebuilt = self.result_round_trip(result)
        (received,) = rebuilt.failures
        assert received == record


class TestErrorTable:
    def test_codes_are_published_and_stable(self):
        # renaming any of these breaks deployed clients: the assertion
        # is the contract, not a description
        stable = {
            "shard_crash": 503, "chaos_injected": 500,
            "deadline_exceeded": 504, "overloaded": 503,
            "service_error": 500, "backend_unavailable": 501,
            "poison_chunk": 422, "worker_crash": 500,
            "chunk_timeout": 504, "engine_error": 500,
            "transport_fault": 503, "opencl_error": 500,
            "hls_error": 500, "device_model_error": 500,
            "no_convergence": 422, "invalid_market_data": 400,
            "sweep_error": 400, "bad_request": 400,
        }
        assert {code: status
                for code, status in WIRE_ERRORS.values()} == stable
        assert CANCELLED_WIRE_CODE == "cancelled"
        assert CANCELLED_HTTP_STATUS == 499

    def test_table_is_total_over_the_error_hierarchy(self):
        # every ReproError subclass anywhere in the package must map to
        # a wire code through its MRO — no error can leave the server
        # without a published code
        def subclasses(klass):
            for child in klass.__subclasses__():
                yield child
                yield from subclasses(child)

        for klass in {ReproError, *subclasses(ReproError)}:
            code, status = wire_error(klass("boom"))
            assert code != INTERNAL_WIRE_CODE, klass
            assert 400 <= status < 600

    def test_most_derived_class_wins(self):
        assert wire_error(DeadlineExceededError("late")) == \
            ("deadline_exceeded", 504)
        assert wire_error(ServiceOverloadedError("full")) == \
            ("overloaded", 503)

    def test_non_repro_exception_is_internal(self):
        assert wire_error(ValueError("bug")) == (INTERNAL_WIRE_CODE, 500)

    def test_round_trip_rebuilds_the_typed_exception(self):
        for klass, (code, _status) in WIRE_ERRORS.items():
            rebuilt = error_from_wire(code, "over the wire")
            assert isinstance(rebuilt, klass) or \
                issubclass(type(rebuilt), ReproError)
            # the most-derived registrant of the code comes back
            assert wire_error(rebuilt)[0] == code

    def test_unknown_code_degrades_to_repro_error(self):
        rebuilt = error_from_wire("a_code_from_the_future", "newer server")
        assert type(rebuilt) is ReproError
        assert "a_code_from_the_future" in str(rebuilt)

    def test_result_schema_tags(self, small_batch):
        result = price(small_batch, steps=STEPS)
        assert result.to_dict()["schema"] == WIRE_RESULT_SCHEMA
