"""End-to-end tests of the sharded serving tier, over real sockets.

Every test boots a :class:`~repro.serve.PricingServer` (forked shard
worker processes, asyncio front-end on an ephemeral localhost port)
and talks to it through :class:`~repro.serve.ServeClient` or a raw
socket — the full production path: wire codec, consistent-hash
routing, shared-memory result transport, deadline/priority/cancel
semantics, and supervised shard restart.
"""

import json
import socket
import time

import numpy as np
import pytest

from repro.api import PricingRequest
from repro.engine.faults import FaultPlan
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
)
from repro.finance import generate_batch
from repro.serve import PricingServer, ServeClient, ServeConfig
from repro.service import PricingService, ServiceConfig
from repro.service.health import HealthPolicy

STEPS = 32

# the benchmark's routed traffic mix doubles as the e2e fixture set
from repro.bench.service_bench import SERVE_TRAFFIC_VARIANTS  # noqa: E402


def request_mix(n_requests: int, options_per_request: int = 4,
                seed: int = 7, **overrides) -> "list[PricingRequest]":
    requests = []
    for index in range(n_requests):
        kernel, precision, family = SERVE_TRAFFIC_VARIANTS[
            index % len(SERVE_TRAFFIC_VARIANTS)]
        options = tuple(generate_batch(n_options=options_per_request,
                                       seed=seed + index).options)
        requests.append(PricingRequest(
            options=options, steps=STEPS, kernel=kernel,
            precision=precision, family=family, strict=False, **overrides))
    return requests


def wait_until(predicate, timeout_s: float = 20.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestPricingOverTheWire:
    @pytest.fixture(scope="class")
    def server(self):
        with PricingServer(ServeConfig(shards=2)) as server:
            yield server

    @pytest.fixture(scope="class")
    def client(self, server):
        with ServeClient(server.host, server.port) as client:
            yield client

    def test_price_request_round_trips(self, server, client, small_batch):
        request = PricingRequest(options=tuple(small_batch), steps=STEPS)
        result = client.price(request)
        with PricingService(ServiceConfig()) as oracle:
            expected = oracle.submit(request).result()
        np.testing.assert_array_equal(result.prices, expected.prices)

    def test_greeks_request_round_trips(self, server, client, small_batch):
        request = PricingRequest(options=tuple(small_batch), steps=STEPS,
                                 task="greeks")
        result = client.price(request)
        with PricingService(ServiceConfig()) as oracle:
            expected = oracle.submit(request).result()
        for column in ("prices", "delta", "gamma", "theta", "vega", "rho"):
            np.testing.assert_array_equal(getattr(result, column),
                                          getattr(expected, column))

    def test_routing_follows_the_ring(self, server, client, small_batch):
        request = PricingRequest(options=tuple(small_batch), steps=STEPS)
        shard = client.shard_of(request)
        assert shard == server._ring.route(request.batch_key)
        # same key -> same shard, every time
        assert client.shard_of(request) == shard

    def test_healthz_reports_every_shard(self, server, client):
        status, document = client.healthz()
        assert status == 200
        assert document["state"] in ("healthy", "degraded")
        assert len(document["shards"]) == 2

    def test_stats_document_schema(self, server, client, small_batch):
        client.price(PricingRequest(options=tuple(small_batch),
                                    steps=STEPS))
        document = client.stats()
        assert document["schema"] == "repro-serve-stats/v6"
        assert document["requests"] >= 1
        assert document["shm_results"] + document["pickle_results"] >= 1
        assert len(document["shards"]) == 2

    def test_malformed_json_is_bad_request(self, server, client):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/v1/price", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            document = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert document["error"]["code"] == "bad_request"

    def test_unknown_route_is_404(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            conn.request("GET", "/nope")
            response = conn.getresponse()
            response.read()
        finally:
            conn.close()
        assert response.status == 404


class TestParityAgainstInProcessService:
    @pytest.mark.parametrize("fault_seed", [None, 101, 202, 303])
    def test_network_results_bitwise_equal(self, fault_seed):
        """The wire + shard + shm path must not move one ULP — with or
        without transient injected faults (which heal on retry)."""
        faults = (FaultPlan.random(fault_seed, 4)
                  if fault_seed is not None else None)
        service_config = ServiceConfig(faults=faults)
        requests = request_mix(8)
        with PricingService(service_config) as oracle:
            expected = [oracle.submit(request).result()
                        for request in requests]
        with PricingServer(ServeConfig(shards=2,
                                       service=service_config)) as server:
            with ServeClient(server.host, server.port) as client:
                for request, want in zip(requests, expected):
                    got = client.price(request)
                    np.testing.assert_array_equal(got.prices, want.prices)
                    assert [f.as_dict() for f in got.failures] == \
                        [f.as_dict() for f in want.failures]


class TestDeadlinePriorityCancel:
    def test_deadline_expires_across_the_wire(self):
        config = ServeConfig(
            shards=1, service=ServiceConfig(max_wait_ms=200.0))
        with PricingServer(config) as server:
            with ServeClient(server.host, server.port) as client:
                options = tuple(generate_batch(n_options=2,
                                               seed=3).options)
                request = PricingRequest(options=options, steps=STEPS,
                                         deadline_ms=0.01)
                with pytest.raises(DeadlineExceededError):
                    client.price(request)

    def test_high_priority_sheds_queued_normal(self):
        """Under a full admission queue, a high-priority request is
        admitted by shedding the oldest queued normal one — visible
        through the network as typed errors on the shed side.

        The coalescer drains its queue eagerly, so the queue only
        fills while a flush occupies the service thread: a large slow
        request pins it, then three small ones exercise the queue-full
        / shed paths deterministically (the ``flushes`` and
        ``cache_misses`` counters are the admission barriers — the
        former increments when the slow flush *starts*, the latter
        only after a request is really queued)."""
        import threading

        config = ServeConfig(shards=1, service=ServiceConfig(
            max_batch=2, max_wait_ms=50.0, max_queue=1))
        with PricingServer(config) as server:
            slow = PricingRequest(
                options=tuple(generate_batch(n_options=160,
                                             seed=40).options),
                steps=2048)

            def opts(seed):
                return tuple(generate_batch(n_options=2, seed=seed).options)

            normal_1 = PricingRequest(options=opts(41), steps=STEPS)
            normal_2 = PricingRequest(options=opts(42), steps=STEPS)
            high = PricingRequest(options=opts(43), steps=STEPS,
                                  priority="high")
            outcome = {}

            def submit(name, request):
                with ServeClient(server.host, server.port) as peer:
                    try:
                        outcome[name] = peer.price(request)
                    except BaseException as exc:  # noqa: BLE001
                        outcome[name] = exc

            def shard_stat(client, name):
                (document,) = client.stats()["shards"]
                return (document or {}).get(name, 0)

            t_slow = threading.Thread(target=submit, args=("slow", slow),
                                      daemon=True)
            t_slow.start()
            with ServeClient(server.host, server.port) as client:
                assert wait_until(
                    lambda: shard_stat(client, "flushes") >= 1,
                    timeout_s=60)
                t_first = threading.Thread(target=submit,
                                           args=("first", normal_1),
                                           daemon=True)
                t_first.start()
                assert wait_until(
                    lambda: shard_stat(client, "cache_misses") >= 2,
                    timeout_s=60)
                # the queue slot is taken: a second normal is refused
                with pytest.raises(ServiceOverloadedError):
                    client.price(normal_2)
                # ... but high priority is admitted by shedding
                result = client.price(high)
            assert result.prices.shape == (2,)
            t_first.join(timeout=60)
            t_slow.join(timeout=120)
            assert isinstance(outcome["first"], ServiceOverloadedError)
            assert not isinstance(outcome["slow"], BaseException)

    def test_client_disconnect_cancels_the_request(self):
        config = ServeConfig(
            shards=1, service=ServiceConfig(max_wait_ms=500.0))
        with PricingServer(config) as server:
            options = tuple(generate_batch(n_options=2, seed=5).options)
            request = PricingRequest(options=options, steps=STEPS)
            body = json.dumps(request.to_dict()).encode("utf-8")
            raw = socket.create_connection((server.host, server.port),
                                           timeout=30)
            raw.sendall(
                b"POST /v1/price HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body)
            # abandon the connection while the request coalesces
            time.sleep(0.05)
            raw.close()
            with ServeClient(server.host, server.port) as client:
                assert wait_until(
                    lambda: client.stats()["cancelled"] >= 1, timeout_s=30)
                # the tier keeps serving afterwards
                survivor = client.price(request)
            assert survivor.prices.shape == (2,)


class TestShardFailureIsolation:
    def fast_restart_config(self, shards: int = 2) -> ServeConfig:
        return ServeConfig(
            shards=shards,
            ping_interval_s=0.05,
            ping_miss_limit=5,
            health=HealthPolicy(restart_limit=3, restart_backoff_s=0.01),
        )

    def keyed_requests(self, server) -> "dict[int, PricingRequest]":
        """One request per shard index, found by walking seeds."""
        requests = {}
        seed = 11
        while len(requests) < server.config.shards:
            options = tuple(generate_batch(n_options=2, seed=seed).options)
            for kernel, precision, family in SERVE_TRAFFIC_VARIANTS:
                request = PricingRequest(options=options, steps=STEPS,
                                         kernel=kernel, precision=precision,
                                         family=family, strict=False)
                shard = server._ring.route(request.batch_key)
                requests.setdefault(shard, request)
            seed += 1
        return requests

    def test_wedged_shard_restarts_without_dropping_siblings(self):
        with PricingServer(self.fast_restart_config()) as server:
            by_shard = self.keyed_requests(server)
            with ServeClient(server.host, server.port) as client:
                for request in by_shard.values():
                    client.price(request)  # warm both shards

                server._shards[0].inject_wedge(30.0)
                # the sibling keeps serving while shard 0 is wedged
                sibling = client.price(by_shard[1])
                assert sibling.prices.shape == (2,)
                # the supervisor detects the missed pongs and restarts
                assert wait_until(
                    lambda: client.stats()["shard_restarts"] >= 1,
                    timeout_s=60)
                # the restarted shard serves its keys again
                revived = client.price(by_shard[0])
            assert revived.prices.shape == (2,)

    def test_killed_shard_restarts_and_serves(self):
        with PricingServer(self.fast_restart_config()) as server:
            by_shard = self.keyed_requests(server)
            with ServeClient(server.host, server.port) as client:
                client.price(by_shard[0])
                server._shards[0]._process.kill()
                assert wait_until(
                    lambda: client.stats()["shard_restarts"] >= 1,
                    timeout_s=60)
                revived = client.price(by_shard[0])
            assert revived.prices.shape == (2,)

    def test_restart_budget_exhaustion_pins_shard_dead(self):
        config = ServeConfig(
            shards=2, ping_interval_s=0.05, ping_miss_limit=5,
            health=HealthPolicy(restart_limit=0, restart_backoff_s=0.01),
        )
        with PricingServer(config) as server:
            by_shard = self.keyed_requests(server)
            with ServeClient(server.host, server.port) as client:
                client.price(by_shard[0])
                server._shards[0]._process.kill()
                # budget 0: the slot is pinned dead, requests fail fast
                assert wait_until(lambda: client.healthz()[0] == 503,
                                  timeout_s=60)
                with pytest.raises(ReproError):
                    client.price(by_shard[0])
                # the sibling never flinches
                sibling = client.price(by_shard[1])
            assert sibling.prices.shape == (2,)
