"""Unit tests of :class:`~repro.serve.shard.ShardHandle` internals.

These run against an *unstarted* shard worker on purpose: the handle's
bookkeeping (the ``_sync`` RPC map, the pong triple the supervisor
reads) must stay correct even when the shard never answers — that is
exactly the wedged-shard scenario the supervisor exists for, and the
scenario where a leak or a torn read would hurt.
"""

import sys
import threading
import time

import pytest

import repro.serve.shard as shard_module
from repro.serve.shard import ShardHandle
from repro.service import ServiceConfig

WAIT = 10.0


@pytest.fixture
def handle():
    # Never started: the worker process does not exist, so nothing
    # ever drains the request queue or feeds the response queue.
    shard = ShardHandle(0, ServiceConfig())
    yield shard
    shard._closed = True  # lets a started reader thread exit
    if shard._reader.is_alive():
        shard._reader.join(timeout=WAIT)


class TestStatsSyncMap:
    def test_unanswered_stats_does_not_leak_sync_entry(self, handle):
        # Regression: stats() used to leave its ("stats", seq) future
        # parked in _sync forever when the shard never responded, so a
        # wedged shard grew the map by one entry per supervision tick.
        assert handle.stats(timeout_s=0.05) is None
        assert handle._sync == {}

    def test_repeated_timeouts_stay_bounded(self, handle):
        for _ in range(5):
            assert handle.stats(timeout_s=0.01) is None
        assert handle._sync == {}


class TestPongAtomicity:
    def test_pong_triple_swaps_atomically(self, handle, monkeypatch):
        # Regression: the reader thread used to write seq, timestamp
        # and health as three separate attributes; a supervisor
        # reading between the first and second write saw a recorded
        # pong (seq >= 0) with an infinite age.  Pin the reader inside
        # its time.monotonic() call to land exactly in that window.
        real_monotonic = time.monotonic
        in_pong_path = threading.Event()
        release = threading.Event()

        def gated():
            caller = sys._getframe(1)
            if (threading.current_thread() is handle._reader
                    and caller.f_globals.get("__name__")
                    == "repro.serve.shard"):
                in_pong_path.set()
                assert release.wait(WAIT)
            return real_monotonic()

        monkeypatch.setattr(shard_module.time, "monotonic", gated)
        try:
            handle._reader.start()
            handle._response_q.put(("pong", 5, {"state": "healthy"}))
            assert in_pong_path.wait(WAIT)
            # The reader is mid-recording.  Whatever a concurrent
            # supervisor observes must be one consistent pong record:
            # it may not yet see seq 5, but it must never see a
            # recorded pong that claims to have never happened.
            seq = handle.pong_seq
            age = handle.pong_age_s
            assert not (seq >= 0 and age == float("inf")), (
                f"torn pong read: seq={seq} with age={age}")
        finally:
            release.set()
        deadline = real_monotonic() + WAIT
        while handle.pong_seq != 5 and real_monotonic() < deadline:
            time.sleep(0.005)
        assert handle.pong_seq == 5
        assert handle.pong_age_s < WAIT
        assert handle.health == {"state": "healthy"}

    def test_stale_pong_never_regresses_seq(self, handle):
        handle._apply_pong(7, {"state": "healthy"})
        handle._apply_pong(3, {"state": "late"})  # out-of-order arrival
        assert handle.pong_seq == 7
        assert handle.pong_age_s < WAIT
