"""Unit tests for the OpenCL C source emitter."""

import re

import pytest

from repro.core.clsource import kernel_a_source, kernel_b_source
from repro.errors import ReproError
from repro.hls import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS, CompileOptions


def balanced(text: str) -> bool:
    return text.count("{") == text.count("}")


class TestKernelBSource:
    @pytest.fixture(scope="class")
    def source(self):
        return kernel_b_source(1024, KERNEL_B_OPTIONS)

    def test_paper_attributes_present(self, source):
        """The exact parallelisation of Section V.B, as source pragmas."""
        assert "__attribute__((num_simd_work_items(4)))" in source
        assert "#pragma unroll 2" in source
        assert "__attribute__((reqd_work_group_size(1024, 1, 1)))" in source

    def test_structure(self, source):
        assert balanced(source)
        assert "__kernel void binomial_tree_iv_b" in source
        assert source.count("barrier(CLK_LOCAL_MEM_FENCE)") == 3
        assert "__local double * v_row" in source
        assert "pow(up" in source  # the in-device leaf init

    def test_fp64_extension_enabled(self, source):
        assert "cl_khr_fp64" in source

    def test_equation_one_present(self, source):
        assert "down * s" in source
        assert "rp * v_row[k] + rq * v_row[k + 1]" in source

    def test_single_precision_variant(self):
        source = kernel_b_source(512, precision="sp")
        assert "float" in source and "double" not in source
        assert "cl_khr_fp64" not in source

    def test_no_pragmas_for_baseline_options(self):
        source = kernel_b_source(256, CompileOptions())
        assert "num_simd_work_items" not in source
        assert "#pragma unroll" not in source

    def test_steps_validation(self):
        with pytest.raises(ReproError):
            kernel_b_source(1)

    def test_precision_validation(self):
        with pytest.raises(ReproError):
            kernel_b_source(64, precision="fp16")


class TestKernelASource:
    @pytest.fixture(scope="class")
    def source(self):
        return kernel_a_source(KERNEL_A_OPTIONS)

    def test_paper_attributes(self, source):
        assert "__attribute__((num_simd_work_items(2)))" in source
        assert "__attribute__((num_compute_units(3)))" in source

    def test_structure(self, source):
        assert balanced(source)
        assert "__kernel void binomial_node_iv_a" in source
        # ping-pong buffer pairs
        for name in ("src_s", "src_v", "src_oid", "dst_s", "dst_v", "dst_oid"):
            assert name in source
        # child offsets of the flattened layout
        assert "slot + t + 1" in source and "slot + t + 2" in source
        # empty-pipeline marker handling
        assert "oid < 0" in source

    def test_no_barriers_in_kernel_a(self, source):
        """IV.A work-items are independent within a batch."""
        assert "barrier(" not in source

    def test_no_pow_in_kernel_a(self, source):
        """The leaves come from the host: no device pow (Section V.C)."""
        assert not re.search(r"\bpow\s*\(", source)


class TestSourceIRConsistency:
    """The emitted source and the HLS IR must describe the same kernel."""

    def test_kernel_b_multiply_census(self):
        from repro.core import kernel_b_ir

        source = kernel_b_source(1024, KERNEL_B_OPTIONS)
        ir = kernel_b_ir(1024)
        body_muls = sum(op.count for op in ir.body_ops if op.op == "mul")
        # body: down*s, rp*v, rq*v
        loop = source.split("for (int t")[1]
        assert loop.count("*") >= body_muls

    def test_kernel_b_barrier_census(self):
        """3 barrier sites in source; 1 + 2N dynamic barriers — matches
        the functional run's count."""
        source = kernel_b_source(16)
        assert source.count("barrier(") == 3  # 1 leaf + 2 in the loop

    def test_kernel_a_parameter_layout(self):
        from repro.core.kernel_a import PARAM_FIELDS

        source = kernel_a_source()
        assert f"oid * {len(PARAM_FIELDS)}" in source

    def test_kernel_b_parameter_layout(self):
        from repro.core.kernel_b import PARAM_FIELDS_B

        source = kernel_b_source(64)
        assert f"group * {len(PARAM_FIELDS_B)}" in source
