"""Unit tests for the Table II row/metric assembly."""

import pytest

from repro.core import (
    PerformanceRow,
    kernel_b_estimate,
    nodes_per_option,
    row_from_estimate,
)
from repro.devices import fpga_compute_model


class TestNodesPerOption:
    def test_paper_value(self):
        assert nodes_per_option(1024) == 524_800

    def test_small_trees(self):
        assert nodes_per_option(2) == 3
        assert nodes_per_option(3) == 6


class TestRowAssembly:
    @pytest.fixture
    def row(self):
        estimate = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        return row_from_estimate("Kernel IV.B", "FPGA (DE4)", "double",
                                 estimate, rmse_value=9.6e-4)

    def test_fields(self, row):
        assert row.options_per_second == pytest.approx(2400, rel=0.02)
        assert row.rmse_display == "~1e-3"
        assert row.options_per_joule == pytest.approx(141, rel=0.02)

    def test_formatted_cells(self, row):
        cells = row.formatted()
        assert cells["RMSE"] == "~1e-3"
        assert cells["options/s"].replace(",", "").startswith("2")
        assert cells["tree nodes/s"].endswith("G")

    def test_rate_formatting_scales(self):
        base = dict(label="x", platform="y", precision="double",
                    rmse_display="0", options_per_joule=None)
        mega = PerformanceRow(options_per_second=1.0,
                              tree_nodes_per_second=30e6, **base)
        giga = PerformanceRow(options_per_second=1.0,
                              tree_nodes_per_second=4.7e9, **base)
        small = PerformanceRow(options_per_second=1.0,
                               tree_nodes_per_second=500.0, **base)
        assert mega.formatted()["tree nodes/s"] == "30 M"
        assert giga.formatted()["tree nodes/s"] == "4.70 G"
        assert small.formatted()["tree nodes/s"] == "500"

    def test_none_energy_renders_na(self):
        row = PerformanceRow(label="[9]", platform="Virtex 4",
                             precision="double", options_per_second=385,
                             rmse_display="0", options_per_joule=None,
                             tree_nodes_per_second=202e6)
        assert row.formatted()["options/J"] == "N/A"

    def test_exact_rmse_renders_zero(self):
        estimate = kernel_b_estimate(fpga_compute_model("iv_b"), 64)
        row = row_from_estimate("x", "y", "double", estimate, rmse_value=0.0)
        assert row.rmse_display == "0"
