"""Equivalence of the vectorised kernel semantics with the coroutine
executor — the license for using the fast path in accuracy runs."""

import numpy as np
import pytest

from repro.core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    HostProgramA,
    HostProgramB,
    simulate_kernel_a_batch,
    simulate_kernel_b_batch,
)
from repro.devices import fpga_device
from repro.errors import ReproError
from repro.finance import LatticeFamily, generate_batch, price_binomial

STEPS = 10


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=6, seed=11).options)


class TestKernelBEquivalence:
    @pytest.mark.parametrize("profile", [EXACT_DOUBLE, ALTERA_13_0_DOUBLE,
                                         EXACT_SINGLE],
                             ids=lambda p: p.name)
    def test_bitwise_match_with_coroutine_executor(self, batch, profile):
        host = HostProgramB(fpga_device("iv_b"), STEPS, profile=profile)
        functional = host.price(batch).prices
        vectorised = simulate_kernel_b_batch(batch, STEPS, profile)
        assert np.array_equal(np.asarray(functional, dtype=np.float64),
                              vectorised)

    def test_multiple_step_counts(self, batch):
        for steps in (2, 3, 7, 24):
            host = HostProgramB(fpga_device("iv_b"), steps)
            assert np.array_equal(host.price(batch).prices,
                                  simulate_kernel_b_batch(batch, steps))

    def test_close_to_reference_pricer(self, batch):
        vec = simulate_kernel_b_batch(batch, 64)
        ref = np.array([price_binomial(o, 64).price for o in batch])
        assert np.allclose(vec, ref, rtol=1e-12, atol=1e-12)

    def test_non_crr_family_rejected(self, batch):
        """Kernel IV.B's leaf init needs u*d = 1 (CRR, paper Fig. 1)."""
        with pytest.raises(ReproError, match="CRR"):
            simulate_kernel_b_batch(batch, 64,
                                    family=LatticeFamily.JARROW_RUDD)


class TestKernelAEquivalence:
    def test_bitwise_match_with_functional_host(self, batch):
        host = HostProgramA(fpga_device("iv_a"), STEPS)
        functional = host.price(batch).prices
        vectorised = simulate_kernel_a_batch(batch, STEPS)
        assert np.array_equal(functional, vectorised)

    def test_kernel_a_exact_vs_reference(self, batch):
        """Host-computed leaves + exact ops == the reference pricer."""
        vec = simulate_kernel_a_batch(batch, 64)
        ref = np.array([price_binomial(o, 64).price for o in batch])
        assert np.allclose(vec, ref, rtol=1e-12, atol=1e-12)

    def test_kernel_a_supports_alternative_family(self, batch):
        """Host-computed leaves make kernel IV.A family-agnostic."""
        vec = simulate_kernel_a_batch(batch, 64,
                                      family=LatticeFamily.JARROW_RUDD)
        ref = np.array([
            price_binomial(o, 64, LatticeFamily.JARROW_RUDD).price
            for o in batch
        ])
        assert np.allclose(vec, ref, rtol=1e-9)


class TestValidation:
    def test_empty_batch(self):
        with pytest.raises(ReproError):
            simulate_kernel_b_batch([], STEPS)
        with pytest.raises(ReproError):
            simulate_kernel_a_batch([], STEPS)

    def test_min_steps(self, batch):
        with pytest.raises(ReproError):
            simulate_kernel_b_batch(batch, 1)


class TestAccuracyStories:
    """The Table II RMSE relationships at a reduced (fast) size."""

    def test_flawed_pow_worse_than_exact(self, batch):
        ref = np.array([price_binomial(o, 256).price for o in batch])
        flawed = simulate_kernel_b_batch(batch, 256, ALTERA_13_0_DOUBLE)
        exact = simulate_kernel_b_batch(batch, 256, EXACT_DOUBLE)
        err_flawed = np.abs(flawed - ref).max()
        err_exact = np.abs(exact - ref).max()
        assert err_flawed > err_exact
        assert err_flawed > 1e-7   # visible defect
        assert err_flawed < 0.1    # but not garbage

    def test_kernel_a_immune_to_pow_defect(self, batch):
        """Kernel IV.A never calls the device pow (leaves from host)."""
        exact = simulate_kernel_a_batch(batch, 64, EXACT_DOUBLE)
        flawed_profile = simulate_kernel_a_batch(batch, 64, ALTERA_13_0_DOUBLE)
        assert np.array_equal(exact, flawed_profile)
