"""Unit tests for device math profiles and the flawed pow model."""

import numpy as np
import pytest

from repro.core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    get_profile,
    quantized_pow,
)
from repro.errors import ReproError


class TestQuantizedPow:
    def test_deterministic(self):
        assert quantized_pow(1.01, 512.0) == quantized_pow(1.01, 512.0)

    def test_close_to_exact(self):
        exact = 1.01**512
        flawed = quantized_pow(1.01, 512.0)
        assert flawed == pytest.approx(exact, rel=1e-3)
        assert flawed != exact

    def test_error_scales_with_fraction_bits(self):
        exact = 1.007**800
        coarse = abs(quantized_pow(1.007, 800.0, fraction_bits=8) - exact)
        fine = abs(quantized_pow(1.007, 800.0, fraction_bits=24) - exact)
        assert fine < coarse

    def test_relative_error_bound(self):
        """|error| <= (2^-(bits+1)) * ln(2) * value (quantised exponent)."""
        rng = np.random.default_rng(5)
        for _ in range(50):
            base = float(rng.uniform(1.0001, 1.05))
            exponent = float(rng.uniform(-1024, 1024))
            exact = base**exponent
            flawed = quantized_pow(base, exponent, fraction_bits=13)
            bound = exact * (2.0 ** -14) * np.log(2) * 1.001
            assert abs(flawed - exact) <= bound + 1e-300

    def test_exact_on_integer_powers_of_two_exponent(self):
        # t = y*log2(x) exactly representable -> no quantisation error
        assert quantized_pow(2.0, 3.0) == 8.0

    def test_vectorised(self):
        out = quantized_pow(1.01, np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)

    def test_positive_base_required(self):
        with pytest.raises(ReproError):
            quantized_pow(-1.0, 2.0)


class TestProfiles:
    def test_exact_double_is_ieee(self):
        assert EXACT_DOUBLE.pow_(1.1, 7.0) == np.power(1.1, 7.0)
        assert EXACT_DOUBLE.pow_(1.1, 7.0) == pytest.approx(1.1**7, rel=1e-15)
        assert EXACT_DOUBLE.exp(1.0) == pytest.approx(np.e)

    def test_single_profile_rounds(self):
        value = EXACT_SINGLE.cast(0.1)
        assert value == np.float32(0.1)
        assert float(value) != 0.1  # fp32 rounding is visible in fp64

    def test_altera_profile_only_pow_is_flawed(self):
        assert ALTERA_13_0_DOUBLE.exp(0.5) == EXACT_DOUBLE.exp(0.5)
        assert ALTERA_13_0_DOUBLE.pow_(1.01, 100.0) != EXACT_DOUBLE.pow_(1.01, 100.0)

    def test_cast_scalar_returns_float(self):
        assert isinstance(EXACT_DOUBLE.cast(1), float)
        arr = EXACT_DOUBLE.cast(np.ones(3))
        assert isinstance(arr, np.ndarray)

    def test_get_profile(self):
        assert get_profile("exact-double") is EXACT_DOUBLE
        assert get_profile("altera-13.0-double") is ALTERA_13_0_DOUBLE
        with pytest.raises(ReproError):
            get_profile("cuda-fast-math")

    def test_single_pow_in_float32(self):
        out = EXACT_SINGLE.pow_(np.float64(1.3), 2.0)
        assert out == np.float32(1.3) ** np.float32(2.0)
