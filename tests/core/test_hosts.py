"""Functional tests for both host programs on the simulated devices."""

import numpy as np
import pytest

from repro.core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    HostProgramA,
    HostProgramB,
    ReadbackMode,
    pipeline_buffer_bytes,
)
from repro.devices import cpu_device, fpga_device, gpu_device
from repro.errors import ReproError
from repro.finance import price_binomial

STEPS = 12


def reference_prices(options, steps=STEPS):
    return np.array([price_binomial(o, steps).price for o in options])


class TestHostProgramB:
    def test_prices_match_reference(self, small_batch):
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        run = host.price(small_batch)
        assert np.allclose(run.prices, reference_prices(small_batch),
                           rtol=1e-12, atol=1e-12)

    def test_three_command_structure(self, small_batch):
        """Paper IV.B: one write, one launch, one read."""
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        run = host.price(small_batch)
        from repro.opencl import CommandType
        types = [e.command_type for e in host.queue.events]
        assert types.count(CommandType.NDRANGE_KERNEL) == 1
        assert types.count(CommandType.READ_BUFFER) == 1

    def test_barrier_count(self, small_batch):
        """1 leaf barrier + 2 per backward step."""
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        run = host.price(small_batch)
        assert run.barriers_per_group == 1 + 2 * STEPS

    def test_local_memory_holds_value_row(self, small_batch):
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        run = host.price(small_batch)
        assert run.local_bytes_per_group == (STEPS + 1) * 8

    def test_minimal_host_interaction(self, small_batch):
        """Bytes moved: params down, one double per option up."""
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        run = host.price(small_batch)
        assert run.bytes_read == len(small_batch) * 8
        assert run.bytes_written == len(small_batch) * 7 * 8

    def test_flawed_profile_changes_prices(self, small_batch):
        exact = HostProgramB(fpga_device("iv_b"), STEPS,
                             profile=EXACT_DOUBLE).price(small_batch)
        flawed = HostProgramB(fpga_device("iv_b"), STEPS,
                              profile=ALTERA_13_0_DOUBLE).price(small_batch)
        assert not np.array_equal(exact.prices, flawed.prices)
        assert np.allclose(exact.prices, flawed.prices, atol=0.05)

    def test_runs_on_gpu_and_cpu_devices(self, small_batch):
        for device in (gpu_device("iv_b"), cpu_device()):
            run = HostProgramB(device, STEPS).price(small_batch)
            assert np.allclose(run.prices, reference_prices(small_batch),
                               rtol=1e-12)

    def test_simulated_time_positive(self, small_batch):
        run = HostProgramB(fpga_device("iv_b"), STEPS).price(small_batch)
        assert run.simulated_time_s > 0
        assert run.options_per_second > 0

    def test_steps_above_work_group_limit_rejected(self):
        device = fpga_device("iv_b")
        with pytest.raises(ReproError, match="work-group"):
            HostProgramB(device, device.max_work_group_size + 1)

    def test_empty_batch_rejected(self):
        host = HostProgramB(fpga_device("iv_b"), STEPS)
        with pytest.raises(ReproError):
            host.price([])


class TestHostProgramA:
    def test_prices_match_reference(self, small_batch):
        host = HostProgramA(fpga_device("iv_a"), STEPS)
        run = host.price(small_batch)
        assert np.allclose(run.prices, reference_prices(small_batch),
                           rtol=1e-12, atol=1e-12)

    def test_batch_count_is_pipeline_depth(self, small_batch):
        host = HostProgramA(fpga_device("iv_a"), STEPS)
        run = host.price(small_batch)
        assert run.batches == len(small_batch) + STEPS - 1
        assert run.kernel_launches == run.batches

    def test_full_readback_traffic(self, small_batch):
        """The throughput-killing behaviour: one full buffer per batch."""
        host = HostProgramA(fpga_device("iv_a"), STEPS,
                            readback=ReadbackMode.FULL_BUFFER)
        run = host.price(small_batch)
        per_batch = run.bytes_read / run.batches
        assert per_batch == pytest.approx(pipeline_buffer_bytes(STEPS))

    def test_result_only_readback_traffic(self, small_batch):
        host = HostProgramA(fpga_device("iv_a"), STEPS,
                            readback=ReadbackMode.RESULT_ONLY)
        run = host.price(small_batch)
        assert run.bytes_read == run.batches * 16  # root V + root oid
        assert np.allclose(run.prices, reference_prices(small_batch))

    def test_modified_variant_is_faster(self, small_batch):
        full = HostProgramA(fpga_device("iv_a"), STEPS).price(small_batch)
        modified = HostProgramA(fpga_device("iv_a"), STEPS,
                                readback=ReadbackMode.RESULT_ONLY
                                ).price(small_batch)
        assert modified.simulated_time_s < full.simulated_time_s
        assert np.array_equal(modified.prices, full.prices)

    def test_single_option_drains_pipeline(self, put_option):
        host = HostProgramA(fpga_device("iv_a"), STEPS)
        run = host.price([put_option])
        assert run.prices[0] == pytest.approx(
            price_binomial(put_option, STEPS).price, rel=1e-12)

    def test_invalid_readback_mode(self):
        with pytest.raises(ReproError):
            HostProgramA(fpga_device("iv_a"), STEPS, readback="streaming")

    def test_reuse_host_for_second_batch(self, small_batch):
        host = HostProgramA(fpga_device("iv_a"), STEPS)
        first = host.price(small_batch[:2])
        second = host.price(small_batch[2:])
        assert np.allclose(second.prices, reference_prices(small_batch[2:]),
                           rtol=1e-12)
        assert np.allclose(first.prices, reference_prices(small_batch[:2]),
                           rtol=1e-12)

    def test_too_few_steps_rejected(self):
        with pytest.raises(ReproError):
            HostProgramA(fpga_device("iv_a"), 1)
