"""Golden regression values: guard against silent numeric drift.

Every value below was produced by this library at the revision that
validated against the paper, and is asserted to ~1e-12.  If a change
moves one of these numbers, either the change is a bug or the golden
table must be *consciously* re-baselined (and EXPERIMENTS.md re-checked)
— never let pricing arithmetic drift through a refactor unnoticed.
"""

import pytest

from repro.core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    quantized_pow,
    simulate_kernel_a_batch,
    simulate_kernel_b_batch,
)
from repro.finance import (
    ExerciseStyle,
    Option,
    OptionType,
    bs_price,
    price_binomial,
)

GOLDEN_OPTION = Option(
    spot=100.0, strike=105.0, rate=0.03, volatility=0.25, maturity=1.0,
    option_type=OptionType.PUT, exercise=ExerciseStyle.AMERICAN,
)


class TestGoldenPrices:
    def test_binomial_n64(self):
        assert price_binomial(GOLDEN_OPTION, 64).price == pytest.approx(
            11.4409236357073, abs=1e-10)

    def test_binomial_n1024(self):
        assert price_binomial(GOLDEN_OPTION, 1024).price == pytest.approx(
            11.4283441492237, abs=1e-10)

    def test_black_scholes_european(self):
        assert bs_price(GOLDEN_OPTION.as_european()) == pytest.approx(
            11.0185804803174, abs=1e-10)

    def test_kernel_b_exact_n64(self):
        value = simulate_kernel_b_batch([GOLDEN_OPTION], 64, EXACT_DOUBLE)[0]
        assert value == pytest.approx(11.4409236357073, abs=1e-9)

    def test_kernel_b_flawed_n1024(self):
        """The flawed-pow price is deterministic: same defect, same bits."""
        value = simulate_kernel_b_batch([GOLDEN_OPTION], 1024,
                                        ALTERA_13_0_DOUBLE)[0]
        assert value == pytest.approx(11.4288684985643, abs=1e-9)
        # and distinctly different from the exact value
        assert abs(value - 11.4283441492237) > 1e-5

    def test_kernel_a_n64(self):
        value = simulate_kernel_a_batch([GOLDEN_OPTION], 64)[0]
        assert value == pytest.approx(11.4409236357073, abs=1e-9)

    def test_quantized_pow_sample(self):
        assert quantized_pow(1.01, 512.0) == pytest.approx(
            163.1271962983205, abs=1e-9)


class TestGoldenModelNumbers:
    def test_fpga_kernel_b_throughput(self):
        from repro.core import kernel_b_estimate
        from repro.devices import fpga_compute_model

        est = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        assert est.options_per_second == pytest.approx(2399.6365853, abs=1e-3)

    def test_table1_fingerprint(self):
        """The full compile is deterministic; pin its key cells."""
        from repro.core import kernel_b_ir
        from repro.hls import KERNEL_B_OPTIONS, compile_kernel

        ck = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        assert ck.resources.registers == 272_224
        assert ck.resources.dsp_18bit == 752
        assert ck.fit.fmax_mhz == pytest.approx(163.83, abs=0.05)
