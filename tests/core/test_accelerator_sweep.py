"""Unit tests for the accelerator facade and the DSE/energy sweeps."""

import numpy as np
import pytest

from repro.core import (
    BinomialAccelerator,
    explore_design_space,
    fit_power_budget,
    frequency_scaling,
    kernel_b_ir,
    simulate_kernel_b_batch,
)
from repro.api import price
from repro.core.faithful_math import ALTERA_13_0_DOUBLE
from repro.devices.calibration import FPGA_PIPELINE_DERATE
from repro.errors import ReproError
from repro.hls import KERNEL_B_OPTIONS, compile_kernel

STEPS = 64


class TestAcceleratorConfig:
    def test_invalid_platform(self):
        with pytest.raises(ReproError):
            BinomialAccelerator(platform="tpu")

    def test_invalid_kernel(self):
        with pytest.raises(ReproError):
            BinomialAccelerator(kernel="iv_c")

    def test_reference_only_on_cpu(self):
        with pytest.raises(ReproError):
            BinomialAccelerator(platform="fpga", kernel="reference")
        with pytest.raises(ReproError):
            BinomialAccelerator(platform="cpu", kernel="iv_b")

    def test_describe(self):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=STEPS)
        text = acc.describe()
        assert "FPGA" in text and "iv_b" in text and "altera" in text

    def test_fpga_carries_compile_report(self):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=1024)
        assert acc.compiled is not None
        assert acc.compiled.resources.fits()

    def test_fpga_without_compile_uses_paper_point(self):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                  steps=1024, compile_fpga=False)
        assert acc.compiled is None
        assert acc.model.power_w == pytest.approx(17.0)

    def test_profile_selection(self):
        assert BinomialAccelerator("fpga", "iv_b").profile.name == \
            "altera-13.0-double"
        assert BinomialAccelerator("fpga", "iv_a").profile.name == \
            "exact-double"
        assert BinomialAccelerator("gpu", "iv_b").profile.name == \
            "exact-double"
        assert BinomialAccelerator("gpu", "iv_b", precision="single"
                                   ).profile.name == "exact-single"


class TestAcceleratorPricing:
    def test_fpga_prices_use_flawed_pow(self, small_batch):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=STEPS)
        result = price(small_batch, steps=STEPS, device=acc).modeled
        expected = simulate_kernel_b_batch(small_batch, STEPS,
                                           ALTERA_13_0_DOUBLE)
        assert np.array_equal(result.prices, expected)

    def test_cpu_reference_prices(self, small_batch):
        acc = BinomialAccelerator(platform="cpu", kernel="reference",
                                  steps=STEPS)
        result = price(small_batch, steps=STEPS, device=acc)
        expected = price(small_batch, steps=STEPS, kernel="reference").prices
        assert np.array_equal(result.prices, expected)

    def test_result_accounting(self, small_batch):
        acc = BinomialAccelerator(platform="gpu", kernel="iv_b", steps=STEPS)
        result = price(small_batch, steps=STEPS, device=acc).modeled
        assert result.modeled_time_s > 0
        assert result.energy_joules == pytest.approx(
            result.modeled_time_s * acc.model.power_w)
        assert result.options_per_second == pytest.approx(
            len(small_batch) / result.modeled_time_s)
        assert result.options_per_joule > 0

    def test_empty_batch_rejected(self):
        with pytest.raises(ReproError):
            price([], steps=STEPS, device=BinomialAccelerator(steps=STEPS))

    def test_kernel_a_accelerator(self, small_batch):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_a", steps=STEPS)
        result = price(small_batch, steps=STEPS, device=acc)
        expected = price(small_batch, steps=STEPS, kernel="reference").prices
        assert np.allclose(result.prices, expected, rtol=1e-12)


class TestDesignSpaceExploration:
    @pytest.fixture(scope="class")
    def points(self):
        return explore_design_space(kernel_b_ir(1024), steps=1024,
                                    simd_widths=(1, 2, 4),
                                    compute_units=(1, 2),
                                    unrolls=(1, 2),
                                    pipeline_derate=FPGA_PIPELINE_DERATE)

    def test_covers_grid(self, points):
        assert len(points) == 12

    def test_fitting_points_sorted_first_by_throughput(self, points):
        fitting = [p for p in points if p.fits]
        rates = [p.options_per_second for p in fitting]
        assert rates == sorted(rates, reverse=True)
        assert points[0].fits

    def test_paper_point_present_and_fits(self, points):
        match = [p for p in points
                 if p.options.num_simd_work_items == 4
                 and p.options.unroll == 2
                 and p.options.num_compute_units == 1]
        assert len(match) == 1
        assert match[0].fits
        assert match[0].options_per_second == pytest.approx(2400, rel=0.05)

    def test_unfit_points_have_zero_rate(self, points):
        for p in points:
            if not p.fits:
                assert p.options_per_second == 0.0
                assert p.compiled is None

    def test_unroll_skipped_for_loop_free_kernel(self):
        from repro.core import kernel_a_ir
        points = explore_design_space(kernel_a_ir(), simd_widths=(1,),
                                      compute_units=(1,), unrolls=(1, 2, 4))
        assert len(points) == 1  # unroll variants skipped


class TestEnergyWorkarounds:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)

    def test_frequency_scaling_monotone(self, compiled):
        points = frequency_scaling(compiled, fractions=(1.0, 0.5))
        assert points[1].power_w < points[0].power_w
        assert points[1].options_per_second < points[0].options_per_second

    def test_static_power_floor(self, compiled):
        points = frequency_scaling(compiled, fractions=(0.01,))
        assert points[0].power_w > 3.0  # static power survives

    def test_invalid_fraction(self, compiled):
        with pytest.raises(ReproError):
            frequency_scaling(compiled, fractions=(1.5,))

    def test_power_budget_fit(self, compiled):
        point = fit_power_budget(compiled, budget_w=10.0,
                                 pipeline_derate=FPGA_PIPELINE_DERATE)
        assert point.power_w == pytest.approx(10.0, abs=0.01)
        assert point.clock_hz < compiled.fmax_hz
        assert point.options_per_second > 0

    def test_budget_below_static_rejected(self, compiled):
        with pytest.raises(ReproError):
            fit_power_budget(compiled, budget_w=1.0)

    def test_paper_tradeoff_10w_sacrifices_throughput(self, compiled):
        """At 10 W the kernel no longer meets 2000 options/s — the
        trade-off the paper's conclusion discusses."""
        point = fit_power_budget(compiled, budget_w=10.0,
                                 pipeline_derate=FPGA_PIPELINE_DERATE)
        assert point.options_per_second < 2000
        full = frequency_scaling(compiled, fractions=(1.0,),
                                 pipeline_derate=FPGA_PIPELINE_DERATE)[0]
        assert full.options_per_second > 2000
