"""Property-based tests for the core kernels and models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    kernel_b_estimate,
    quantized_pow,
    saturation_efficiency,
    simulate_kernel_a_batch,
    simulate_kernel_b_batch,
)
from repro.devices import fpga_compute_model
from repro.finance import ExerciseStyle, Option, OptionType, price_binomial

option_strategy = st.builds(
    Option,
    spot=st.floats(min_value=20.0, max_value=300.0),
    strike=st.floats(min_value=20.0, max_value=300.0),
    rate=st.floats(min_value=0.0, max_value=0.08),
    volatility=st.floats(min_value=0.08, max_value=0.7),
    maturity=st.floats(min_value=0.1, max_value=2.0),
    option_type=st.sampled_from([OptionType.CALL, OptionType.PUT]),
    exercise=st.just(ExerciseStyle.AMERICAN),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(option_strategy, min_size=1, max_size=4),
       st.integers(min_value=2, max_value=24))
def test_kernel_b_matches_reference_everywhere(options, steps):
    """The vectorised kernel IV.B semantics equal the reference pricer
    over the whole parameter domain (exact profile)."""
    prices = simulate_kernel_b_batch(options, steps, EXACT_DOUBLE)
    reference = [price_binomial(o, steps).price for o in options]
    assert np.allclose(prices, reference, rtol=1e-11, atol=1e-11)


@settings(max_examples=40, deadline=None)
@given(st.lists(option_strategy, min_size=1, max_size=4),
       st.integers(min_value=2, max_value=24))
def test_kernel_a_matches_reference_everywhere(options, steps):
    prices = simulate_kernel_a_batch(options, steps, EXACT_DOUBLE)
    reference = [price_binomial(o, steps).price for o in options]
    assert np.allclose(prices, reference, rtol=1e-11, atol=1e-11)


@settings(max_examples=50, deadline=None)
@given(st.lists(option_strategy, min_size=1, max_size=3),
       st.integers(min_value=8, max_value=64))
def test_flawed_pow_error_is_bounded(options, steps):
    """The defect perturbs prices but never past the quantisation's
    first-order bound (relative ~2^-14 per leaf, amplified by the
    leaf-price range)."""
    exact = simulate_kernel_b_batch(options, steps, EXACT_DOUBLE)
    flawed = simulate_kernel_b_batch(options, steps, ALTERA_13_0_DOUBLE)
    spread = max(o.spot * 3 for o in options)
    assert np.all(np.abs(flawed - exact) < 1e-3 * spread)


@settings(max_examples=80, deadline=None)
@given(st.floats(min_value=1.0001, max_value=1.2),
       st.floats(min_value=-1024.0, max_value=1024.0))
def test_quantized_pow_relative_error_bound(base, exponent):
    """|quantized/exact - 1| <= ln2 * 2^-(bits+1) (+1 ulp slack)."""
    exact = base**exponent
    flawed = quantized_pow(base, exponent, fraction_bits=13)
    bound = np.log(2.0) * 2.0 ** -14 * 1.01 + 1e-12
    assert abs(flawed / exact - 1.0) <= bound


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1.0, max_value=1e8),
       st.floats(min_value=1.0, max_value=1e7))
def test_saturation_efficiency_properties(n, n_sat):
    eff = saturation_efficiency(n, n_sat)
    assert 0.0 < eff < 1.0
    # monotone in workload
    assert saturation_efficiency(n * 2, n_sat) > eff
    # monotone (down) in saturation point
    assert saturation_efficiency(n, n_sat * 2) <= eff


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=4096),
       st.floats(min_value=10.0, max_value=1e7))
def test_perf_estimate_internal_consistency(steps, n_options):
    est = kernel_b_estimate(fpga_compute_model("iv_b"), steps)
    assert est.time_for(n_options) >= est.steady_state_time_for(n_options)
    assert est.effective_rate(n_options) <= est.options_per_second * (1 + 1e-9)
    assert est.energy_for(n_options) == pytest.approx(
        est.time_for(n_options) * est.power_w)
