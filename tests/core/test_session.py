"""Unit tests for the trading-session energy model."""

import pytest

from repro.core import kernel_b_estimate, reference_estimate
from repro.core.session import (
    TYPICAL_IDLE_POWER_W,
    TradingSessionModel,
)
from repro.devices import cpu_compute_model, fpga_compute_model, gpu_compute_model
from repro.errors import ReproError


@pytest.fixture(scope="module")
def fpga_session():
    return TradingSessionModel(
        kernel_b_estimate(fpga_compute_model("iv_b"), 1024),
        idle_power_w=TYPICAL_IDLE_POWER_W["fpga"],
        configuration="FPGA IV.B",
    )


@pytest.fixture(scope="module")
def gpu_session():
    return TradingSessionModel(
        kernel_b_estimate(gpu_compute_model("iv_b"), 1024),
        idle_power_w=TYPICAL_IDLE_POWER_W["gpu"],
        configuration="GPU IV.B",
    )


@pytest.fixture(scope="module")
def cpu_session():
    return TradingSessionModel(
        reference_estimate(cpu_compute_model("double"), 1024),
        idle_power_w=TYPICAL_IDLE_POWER_W["cpu"],
        configuration="CPU reference",
    )


class TestFeasibility:
    def test_fpga_meets_one_curve_per_second(self, fpga_session):
        report = fpga_session.session()
        assert report.meets_refresh_rate
        assert report.curves_refreshed == int(6.5 * 3600)

    def test_cpu_cannot_keep_up(self, cpu_session):
        """222 options/s cannot refresh a 2000-option curve per second;
        the report must degrade the rate, not silently claim success."""
        report = cpu_session.session()
        assert not report.meets_refresh_rate
        assert report.curves_refreshed < int(6.5 * 3600) / 5
        assert report.busy_fraction == pytest.approx(1.0, abs=1e-3)

    def test_gpu_meets_rate_with_low_duty_cycle(self, gpu_session):
        report = gpu_session.session()
        assert report.meets_refresh_rate
        assert report.busy_fraction < 0.3


class TestEnergyAccounting:
    def test_energy_decomposition(self, fpga_session):
        report = fpga_session.session(hours=1.0)
        assert report.total_energy_j == pytest.approx(
            report.active_energy_j + report.idle_energy_j)
        assert report.total_energy_wh == pytest.approx(
            report.total_energy_j / 3600.0)

    def test_fpga_day_cheaper_than_gpu_day(self, fpga_session, gpu_session):
        """The session view amplifies the paper's energy argument: the
        GPU's idle draw alone dwarfs the FPGA's entire day."""
        fpga_day = fpga_session.session().total_energy_j
        gpu_day = gpu_session.session().total_energy_j
        assert gpu_day > 2 * fpga_day

    def test_energy_per_curve_above_compute_floor(self, fpga_session):
        report = fpga_session.session()
        floor = fpga_session.estimate.power_w * fpga_session.curve_time_s()
        assert report.energy_per_curve_j >= floor

    def test_busier_sessions_cost_more(self, fpga_session):
        relaxed = fpga_session.session(refresh_interval_s=10.0)
        frantic = fpga_session.session(refresh_interval_s=1.0)
        assert frantic.total_energy_j > relaxed.total_energy_j


class TestValidation:
    def test_idle_power_bounds(self, fpga_session):
        with pytest.raises(ReproError):
            TradingSessionModel(fpga_session.estimate, idle_power_w=-1.0)
        with pytest.raises(ReproError):
            TradingSessionModel(fpga_session.estimate, idle_power_w=1e6)

    def test_session_parameter_validation(self, fpga_session):
        with pytest.raises(ReproError):
            fpga_session.session(hours=0)
        with pytest.raises(ReproError):
            fpga_session.session(refresh_interval_s=0)
        with pytest.raises(ReproError):
            fpga_session.session(curve_options=0)
