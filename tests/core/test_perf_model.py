"""Unit tests for the analytic performance model (Table II generator)."""

import pytest

from repro.core import (
    ReadbackMode,
    kernel_a_estimate,
    kernel_b_estimate,
    reference_estimate,
    saturation_efficiency,
)
from repro.devices import cpu_compute_model, fpga_compute_model, gpu_compute_model
from repro.errors import ReproError


class TestTable2Calibration:
    """Each configuration must land on its Table II operating point."""

    def test_kernel_a_fpga(self):
        est = kernel_a_estimate(fpga_compute_model("iv_a"), 1024)
        assert est.options_per_second == pytest.approx(25, rel=0.02)
        assert est.options_per_joule == pytest.approx(1.7, rel=0.03)
        assert est.tree_nodes_per_second == pytest.approx(13e6, rel=0.05)

    def test_kernel_a_gpu(self):
        est = kernel_a_estimate(gpu_compute_model("iv_a"), 1024)
        assert est.options_per_second == pytest.approx(58.4, rel=0.02)

    def test_kernel_a_gpu_modified(self):
        est = kernel_a_estimate(gpu_compute_model("iv_a"), 1024,
                                ReadbackMode.RESULT_ONLY)
        assert est.options_per_second == pytest.approx(840, rel=0.02)

    def test_kernel_b_fpga(self):
        est = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        assert est.options_per_second == pytest.approx(2400, rel=0.02)
        assert est.options_per_joule == pytest.approx(140, rel=0.02)
        assert est.tree_nodes_per_second == pytest.approx(1.3e9, rel=0.05)

    def test_kernel_b_gpu(self):
        double = kernel_b_estimate(gpu_compute_model("iv_b"), 1024)
        single = kernel_b_estimate(gpu_compute_model("iv_b", "single"), 1024)
        assert double.options_per_second == pytest.approx(8900, rel=0.02)
        assert single.options_per_second == pytest.approx(47000, rel=0.02)

    def test_reference(self):
        double = reference_estimate(cpu_compute_model("double"), 1024)
        single = reference_estimate(cpu_compute_model("single"), 1024)
        assert double.options_per_second == pytest.approx(222, rel=0.01)
        assert single.options_per_second == pytest.approx(116, rel=0.01)


class TestPaperHeadlines:
    def test_use_case_throughput_met(self):
        """'More than 2000 options can be computed in less than a second'
        — a post-saturation throughput claim (Section V.C samples after
        device saturation)."""
        est = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        assert est.steady_state_time_for(2000) < 1.0
        # cold-start is slower (the saturation ramp); both are exposed
        assert est.time_for(2000) > est.steady_state_time_for(2000)

    def test_fpga_5x_more_efficient_than_software(self):
        fpga = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        cpu = reference_estimate(cpu_compute_model("double"), 1024)
        assert fpga.options_per_joule > 5 * cpu.options_per_joule

    def test_fpga_2x_more_efficient_than_gpu(self):
        fpga = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        gpu = kernel_b_estimate(gpu_compute_model("iv_b"), 1024)
        assert fpga.options_per_joule > 2 * gpu.options_per_joule

    def test_gpu_fpga_within_factor_5(self):
        """'within a factor 5 of each other' (options/s, double)."""
        fpga = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        gpu = kernel_b_estimate(gpu_compute_model("iv_b"), 1024)
        ratio = gpu.options_per_second / fpga.options_per_second
        assert 1.0 < ratio < 5.0

    def test_modified_kernel_a_14x(self):
        gpu = gpu_compute_model("iv_a")
        full = kernel_a_estimate(gpu, 1024)
        modified = kernel_a_estimate(gpu, 1024, ReadbackMode.RESULT_ONLY)
        speedup = modified.options_per_second / full.options_per_second
        assert speedup == pytest.approx(14.4, rel=0.1)


class TestSaturation:
    def test_efficiency_monotone_in_workload(self):
        values = [saturation_efficiency(n, 1e5)
                  for n in (10, 100, 1e4, 1e5, 1e7)]
        assert values == sorted(values)
        assert values[-1] > 0.99

    def test_95_percent_at_saturation_point(self):
        assert saturation_efficiency(1e5, 1e5) == pytest.approx(0.95)

    def test_invalid_workload(self):
        with pytest.raises(ReproError):
            saturation_efficiency(0, 1e5)

    def test_effective_rate_below_peak(self):
        est = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        assert est.effective_rate(100) < est.options_per_second
        assert est.effective_rate(1e7) == pytest.approx(
            est.options_per_second, rel=0.01)

    def test_fpga_saturates_by_1e5_gpu_by_1e6(self):
        """Section V.C's saturation points."""
        fpga = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        gpu = kernel_b_estimate(gpu_compute_model("iv_b"), 1024)
        assert fpga.effective_rate(1e5) >= 0.95 * fpga.options_per_second
        assert gpu.effective_rate(1e5) < 0.95 * gpu.options_per_second
        assert gpu.effective_rate(1e6) >= 0.95 * gpu.options_per_second

    def test_energy_accounting(self):
        est = kernel_b_estimate(fpga_compute_model("iv_b"), 1024)
        n = 2000
        assert est.energy_for(n) == pytest.approx(est.time_for(n) * est.power_w)
        assert est.joules_per_option() == pytest.approx(
            1.0 / est.options_per_joule, rel=0.01)


class TestSteps:
    def test_smaller_trees_price_faster(self):
        model = fpga_compute_model("iv_b")
        small = kernel_b_estimate(model, 256)
        large = kernel_b_estimate(model, 1024)
        assert small.options_per_second > large.options_per_second

    def test_kernel_a_readback_scales_with_tree(self):
        model = fpga_compute_model("iv_a")
        small = kernel_a_estimate(model, 256)
        large = kernel_a_estimate(model, 1024)
        assert small.options_per_second > 10 * large.options_per_second
