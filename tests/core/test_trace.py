"""Unit tests for the event-timeline renderer."""

import numpy as np
import pytest

from repro.core import HostProgramA, HostProgramB
from repro.core.trace import render_timeline
from repro.devices import fpga_device
from repro.errors import ReproError
from repro.finance import generate_batch


@pytest.fixture(scope="module")
def run_events():
    batch = list(generate_batch(n_options=3, seed=77).options)
    host = HostProgramB(fpga_device("iv_b"), 8)
    host.price(batch)
    return host.queue.events


class TestRenderTimeline:
    def test_lane_structure(self, run_events):
        text = render_timeline(run_events)
        assert "dma" in text and "kernel" in text
        lines = text.splitlines()
        assert any(l.strip().startswith("dma") for l in lines)
        # kernel IV.B: one K bar, W before it, R after it
        kernel_lane = next(l for l in lines if l.strip().startswith("kernel"))
        assert "K" in kernel_lane

    def test_transfer_glyphs_present(self, run_events):
        text = render_timeline(run_events)
        dma_lane = next(l for l in text.splitlines()
                        if l.strip().startswith("dma"))
        assert "W" in dma_lane and "R" in dma_lane

    def test_truncation_note(self, run_events):
        text = render_timeline(run_events, max_events=2)
        assert "later events omitted" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_timeline([])

    def test_overlap_vs_serial_visually_differ(self):
        """The Gantt of an overlapped kernel IV.A run compresses the
        timeline relative to serial (slightly — the hazards dominate)."""
        batch = list(generate_batch(n_options=3, seed=5).options)
        serial = HostProgramA(fpga_device("iv_a"), 8)
        serial.price(batch)
        text = render_timeline(serial.queue.events)
        assert text.count("|") >= 3  # three lanes rendered

    def test_width_respected(self, run_events):
        text = render_timeline(run_events, width=40)
        dma_lane = next(l for l in text.splitlines()
                        if l.strip().startswith("dma"))
        bar = dma_lane.split("|")[1]
        assert len(bar) == 40
