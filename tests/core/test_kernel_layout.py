"""Unit tests for kernel IV.A/IV.B layout helpers and IR builders."""

import numpy as np
import pytest

from repro.core import (
    build_leaves_a,
    build_params_a,
    build_params_b,
    interior_nodes,
    kernel_a_ir,
    kernel_b_ir,
    level_of_slot_table,
    pipeline_buffer_bytes,
    pipeline_slots,
)
from repro.finance import build_lattice_params


class TestKernelALayout:
    def test_interior_nodes_paper_count(self):
        """N(N+1)/2 work-items per batch (paper Section IV.A)."""
        assert interior_nodes(1024) == 524_800
        assert interior_nodes(2) == 3

    def test_pipeline_slots_include_leaves(self):
        assert pipeline_slots(2) == 6
        assert pipeline_slots(1024) == 525_825

    def test_buffer_size_order_of_paper_19mb(self):
        """Paper: ~19 MB per ping-pong buffer at N=1024; ours carries
        S, V and option-id (12.6 MB) — same order of magnitude."""
        nbytes = pipeline_buffer_bytes(1024)
        assert 10e6 < nbytes < 25e6

    def test_level_table(self):
        table = level_of_slot_table(3)
        assert list(table) == [0, 1, 1, 2, 2, 2, 3, 3, 3, 3]

    def test_level_table_child_offsets(self):
        """Children of slot id at level t sit at id+t+1 and id+t+2."""
        steps = 6
        table = level_of_slot_table(steps)
        for slot in range(interior_nodes(steps)):
            t = table[slot]
            k = slot - t * (t + 1) // 2
            child_up = slot + t + 1
            child_dn = slot + t + 2
            assert table[child_up] == t + 1
            assert table[child_dn] == t + 1
            assert child_up - (t + 1) * (t + 2) // 2 == k      # (t+1, k)
            assert child_dn - (t + 1) * (t + 2) // 2 == k + 1  # (t+1, k+1)


class TestParamBuilders:
    def test_params_a_fields(self, small_batch):
        params = build_params_a(small_batch, 64)
        assert params.shape == (5, 5)
        lattice = build_lattice_params(small_batch[0], 64)
        assert params[0, 0] == pytest.approx(lattice.discounted_p_up)
        assert params[0, 1] == pytest.approx(lattice.discounted_p_down)
        assert params[0, 2] == pytest.approx(lattice.down)
        assert params[0, 3] == small_batch[0].strike
        assert params[0, 4] == small_batch[0].option_type.sign

    def test_params_b_fields(self, small_batch):
        params = build_params_b(small_batch, 64)
        assert params.shape == (5, 7)
        lattice = build_lattice_params(small_batch[1], 64)
        row = params[1]
        assert row[0] == small_batch[1].spot
        assert row[1] == pytest.approx(lattice.up)
        assert row[2] == pytest.approx(lattice.down)

    def test_leaves_match_lattice(self, put_option):
        prices, values = build_leaves_a(put_option, 8)
        lattice = build_lattice_params(put_option, 8)
        k = np.arange(9.0)
        expected = put_option.spot * lattice.up ** (8 - k) * lattice.down**k
        assert np.allclose(prices, expected, rtol=1e-15)
        assert np.allclose(values, np.maximum(put_option.strike - expected, 0.0))


class TestIRBuilders:
    def test_kernel_a_ir_structure(self):
        ir = kernel_a_ir()
        assert ir.name.endswith("iv_a")
        assert not ir.uses_barriers
        assert not ir.local_memory
        assert not ir.body_ops  # loop-free dataflow kernel
        assert len(ir.global_accesses) == 7
        assert all(a.coalesced for a in ir.global_accesses)

    def test_kernel_b_ir_structure(self):
        ir = kernel_b_ir(1024)
        assert ir.uses_barriers
        assert len(ir.local_memory) == 1
        assert ir.body_ops  # the unrollable backward loop
        assert ir.work_group_size == 1024
        # the pow operator lives in the init (leaf) segment only
        init_ops = {op.op for op in ir.init_ops}
        body_ops = {op.op for op in ir.body_ops}
        assert "pow" in init_ops
        assert "pow" not in body_ops

    def test_single_precision_variants(self):
        sp_a = kernel_a_ir(precision="sp")
        sp_b = kernel_b_ir(256, precision="sp")
        assert sp_a.precision == "sp"
        assert sp_b.live.f32_values > 0 and sp_b.live.f64_values == 0
        # fp32 halves the local value row
        assert sp_b.local_memory[0].bytes_per_group < \
            kernel_b_ir(256).local_memory[0].bytes_per_group

    def test_kernel_b_local_scales_with_steps(self):
        small = kernel_b_ir(128).local_memory[0].bytes_per_group
        large = kernel_b_ir(1024).local_memory[0].bytes_per_group
        assert large > small
