"""Cross-method validation grid: four independent pricers must agree.

The binomial lattice (and hence both kernels), the BAW approximation,
the LSMC Monte Carlo and the QUAD quadrature share no code beyond the
contract definition — agreement across a parameter grid is strong
evidence none of them is subtly wrong.
"""

import itertools

import numpy as np
import pytest

from repro.finance import (
    Option,
    OptionType,
    baw_price,
    price_binomial,
    price_quadrature,
)
from repro.finance.montecarlo import price_american_lsmc

SPOTS = (80.0, 100.0, 120.0)
VOLS = (0.15, 0.35)
MATURITIES = (0.25, 1.0)
RATE = 0.05
STRIKE = 100.0

GRID = [
    Option(spot=s, strike=STRIKE, rate=RATE, volatility=v, maturity=t,
           option_type=OptionType.PUT)
    for s, v, t in itertools.product(SPOTS, VOLS, MATURITIES)
]


@pytest.fixture(scope="module")
def lattice_prices():
    return {o: price_binomial(o, 4096).price for o in GRID}


class TestBAWGrid:
    def test_baw_agrees_across_the_grid(self, lattice_prices):
        """BAW within ~1.5% of the deep lattice for ordinary parameters
        (absolute floor of 5 cents: the quadratic approximation's
        relative error grows as option values shrink toward zero)."""
        for option, reference in lattice_prices.items():
            approx = baw_price(option)
            tolerance = max(0.015 * reference, 0.05)
            assert abs(approx - reference) < tolerance, option


class TestQuadratureGrid:
    def test_quadrature_agrees_across_the_grid(self, lattice_prices):
        for option, reference in lattice_prices.items():
            value = price_quadrature(option, exercise_dates=128,
                                     grid_points=1025)
            tolerance = max(0.004 * reference, 0.01)
            assert abs(value - reference) < tolerance, option


class TestLsmcSpotChecks:
    @pytest.mark.parametrize("spot,vol", [(100.0, 0.35), (120.0, 0.15)])
    def test_lsmc_agrees_at_spot_checks(self, lattice_prices, spot, vol):
        option = Option(spot=spot, strike=STRIKE, rate=RATE, volatility=vol,
                        maturity=1.0, option_type=OptionType.PUT)
        reference = lattice_prices[option]
        result = price_american_lsmc(option, paths=120_000, steps=50, seed=8)
        assert abs(result.price - reference) < max(
            0.02 * reference, 4 * result.std_error), option


class TestKernelGridAgreement:
    def test_accelerator_prices_track_the_lattice_grid(self, lattice_prices):
        """The FPGA accelerator (flawed pow) stays within its ~1e-3
        error budget of the deep lattice across the whole grid."""
        from repro.core import ALTERA_13_0_DOUBLE, simulate_kernel_b_batch

        options = list(lattice_prices)
        prices = simulate_kernel_b_batch(options, 1024, ALTERA_13_0_DOUBLE)
        for option, price in zip(options, prices):
            # 1024-step discretisation + pow defect vs 4096-step ref
            assert abs(price - lattice_prices[option]) < 0.05, option


class TestDividendYieldPath:
    """Dividend yield flows through every layer (q enters the lattice's
    growth term and makes American calls early-exercisable)."""

    @pytest.fixture(scope="class")
    def div_call(self):
        return Option(spot=100.0, strike=95.0, rate=0.04, volatility=0.25,
                      maturity=1.0, option_type=OptionType.CALL,
                      dividend_yield=0.08)

    def test_early_exercise_premium_exists(self, div_call):
        amer = price_binomial(div_call, 1024).price
        euro = price_binomial(div_call.as_european(), 1024).price
        assert amer > euro + 0.05

    def test_kernels_price_dividend_options(self, div_call):
        from repro.core import simulate_kernel_a_batch, simulate_kernel_b_batch

        reference = price_binomial(div_call, 256).price
        for prices in (simulate_kernel_a_batch([div_call], 256),
                       simulate_kernel_b_batch([div_call], 256)):
            assert prices[0] == pytest.approx(reference, rel=1e-12)

    def test_functional_host_with_dividends(self, div_call):
        from repro.core import HostProgramB
        from repro.devices import fpga_device

        run = HostProgramB(fpga_device("iv_b"), 16).price([div_call])
        assert run.prices[0] == pytest.approx(
            price_binomial(div_call, 16).price, rel=1e-12)

    def test_baw_dividend_consistency(self, div_call):
        assert baw_price(div_call) == pytest.approx(
            price_binomial(div_call, 4096).price, rel=0.02)
