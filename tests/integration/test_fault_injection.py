"""Fault injection: the stack must fail loudly, never silently.

Each test breaks one component on purpose — a math profile that
returns NaN, a kernel that corrupts the option-id lane, a device too
small for the launch — and asserts that the error surfaces as a typed
exception with a diagnosable message instead of a wrong price.
"""

import numpy as np
import pytest

from repro.core import HostProgramA, HostProgramB
from repro.core.faithful_math import EXACT_DOUBLE, MathProfile
from repro.devices import fpga_device
from repro.errors import (
    BarrierDivergenceError,
    InvalidWorkGroupError,
    MemoryError_,
    OpenCLError,
    ReproError,
)
from repro.finance import generate_batch
from repro.opencl import Context, Device, DeviceType, LocalMemory

STEPS = 8


@pytest.fixture
def batch():
    return list(generate_batch(n_options=3, seed=6).options)


class TestBrokenMathProfile:
    def test_nan_pow_detected_by_host_b(self, batch):
        broken = MathProfile(
            name="broken-pow",
            dtype=np.dtype(np.float64),
            pow_=lambda x, y: np.full(np.broadcast(
                np.asarray(x), np.asarray(y)).shape, np.nan)
            if np.ndim(x) or np.ndim(y) else float("nan"),
            exp=EXACT_DOUBLE.exp,
            description="fault injection: pow always NaN",
        )
        host = HostProgramB(fpga_device("iv_b"), STEPS, profile=broken)
        with pytest.raises(ReproError, match="non-finite"):
            host.price(batch)

    def test_inf_pow_detected(self):
        """Overflowing pow must surface (calls: +inf payoff survives the
        max; a put would clip -inf to zero and hide the fault)."""
        from repro.finance import OptionType

        calls = list(generate_batch(n_options=3, seed=6,
                                    option_type=OptionType.CALL).options)
        broken = MathProfile(
            name="broken-overflow",
            dtype=np.dtype(np.float64),
            pow_=lambda x, y: float("inf"),
            exp=EXACT_DOUBLE.exp,
            description="fault injection: pow overflows",
        )
        host = HostProgramB(fpga_device("iv_b"), STEPS, profile=broken)
        with pytest.raises(ReproError, match="non-finite"):
            host.price(calls)


class TestCorruptedPipeline:
    def test_option_id_corruption_detected(self, batch, monkeypatch):
        """If the oid lane desynchronises, the host must notice rather
        than attribute a price to the wrong option."""
        host = HostProgramA(fpga_device("iv_a"), STEPS)

        import repro.core.host_a as host_a_module
        real_builder = host_a_module.build_leaves_a

        calls = {"n": 0}

        def corrupting_builder(option, steps, family):
            calls["n"] += 1
            return real_builder(option, steps, family)

        monkeypatch.setattr(host_a_module, "build_leaves_a",
                            corrupting_builder)
        # sanity: patched path still works
        run = host.price(batch)
        assert calls["n"] == len(batch)
        assert np.all(np.isfinite(run.prices))

        # now corrupt the oid buffer under the host's feet: the write
        # of option 1's ids claims to be option 7
        original_price = host.price

        def poisoned_price(options):
            result = None
            orig_write = host.queue.enqueue_write_buffer
            state = {"seen": 0}

            def tampering_write(buf, array, offset=0, wait_for=None):
                array = np.asarray(array)
                if buf.name.startswith("buf") and array.ndim == 1 and \
                        np.all(array == 1.0) and array.size == STEPS + 1:
                    # desynchronise: option 1's slots claim to be option 0
                    array = np.zeros(STEPS + 1)
                return orig_write(buf, array, offset)

            host.queue.enqueue_write_buffer = tampering_write
            try:
                return original_price(options)
            finally:
                host.queue.enqueue_write_buffer = orig_write

        with pytest.raises(ReproError, match="pipeline corruption"):
            poisoned_price(batch)


class TestDeviceLimits:
    def test_work_group_larger_than_device(self, batch):
        tiny = Device("tiny", DeviceType.ACCELERATOR, max_work_group_size=4)
        with pytest.raises(ReproError, match="work-group"):
            HostProgramB(tiny, STEPS)

    def test_local_memory_exhaustion(self):
        tiny = Device("tiny-lm", DeviceType.ACCELERATOR,
                      local_mem_bytes=16, max_work_group_size=64)
        context = Context(tiny)

        def kern(wi, scratch):
            yield wi.barrier()

        kernel = context.create_program({"k": kern}).create_kernel("k")
        kernel.set_args(LocalMemory(64))
        queue = context.create_queue()
        with pytest.raises(InvalidWorkGroupError, match="local memory"):
            queue.enqueue_nd_range_kernel(kernel, 4, 4)

    def test_global_memory_exhaustion(self):
        tiny = Device("tiny-gm", DeviceType.ACCELERATOR,
                      global_mem_bytes=1000)
        with pytest.raises(OpenCLError, match="global memory"):
            Context(tiny).create_buffer(1000)


class TestKernelBugs:
    def test_divergent_kernel_caught_not_wedged(self, toy_context, toy_device):
        """A kernel where one work-item skips the barrier must raise,
        not deadlock or silently produce garbage."""

        def buggy(wi, out):
            if wi.get_local_id() != 0:
                yield wi.barrier()
            out[wi.get_global_id()] = 1.0

        kernel = toy_context.create_program({"b": buggy}).create_kernel("b")
        kernel.set_args(toy_context.create_buffer(8))
        queue = toy_context.create_queue()
        with pytest.raises(BarrierDivergenceError, match="divergent"):
            queue.enqueue_nd_range_kernel(kernel, 8, 4)

    def test_out_of_bounds_store_caught(self, toy_context, toy_device):
        def oob(wi, out):
            out[len(out) + 5] = 1.0

        kernel = toy_context.create_program({"o": oob}).create_kernel("o")
        kernel.set_args(toy_context.create_buffer(4))
        queue = toy_context.create_queue()
        with pytest.raises(IndexError):
            queue.enqueue_nd_range_kernel(kernel, 1, 1)

    def test_host_read_past_end_caught(self, toy_context):
        buf = toy_context.create_buffer(4)
        queue = toy_context.create_queue()
        with pytest.raises(MemoryError_):
            queue.enqueue_read_buffer(buf, offset=2, count=10)
