"""Integration tests crossing every layer of the stack."""

import numpy as np
import pytest

from repro import (
    BinomialAccelerator,
    HostProgramA,
    HostProgramB,
    Option,
    OptionType,
    price,
    price_binomial,
)
from repro.core import simulate_kernel_b_batch
from repro.devices import cpu_device, fpga_device, gpu_device
from repro.finance import (
    baw_price,
    generate_batch,
    generate_curve_scenario,
    implied_vol_curve,
    rmse,
)

STEPS = 12


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=8, seed=99).options)


@pytest.fixture(scope="module")
def reference(batch):
    return np.array([price_binomial(o, STEPS).price for o in batch])


class TestKernelsAgreeAcrossTheStack:
    def test_both_kernels_match_reference_and_each_other(self, batch, reference):
        """Kernel IV.A pipeline == kernel IV.B work-groups == reference,
        across three different execution mechanisms."""
        run_a = HostProgramA(fpga_device("iv_a"), STEPS).price(batch)
        run_b = HostProgramB(fpga_device("iv_b"), STEPS).price(batch)
        assert np.allclose(run_a.prices, reference, rtol=1e-12, atol=1e-12)
        assert np.allclose(run_b.prices, reference, rtol=1e-12, atol=1e-12)
        assert np.allclose(run_a.prices, run_b.prices, rtol=1e-12, atol=1e-12)

    def test_same_kernel_same_result_on_every_device(self, batch):
        results = [
            HostProgramB(device, STEPS).price(batch).prices
            for device in (fpga_device("iv_b"), gpu_device("iv_b"), cpu_device())
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_timing_differs_across_devices(self, batch):
        """Same results, different simulated clocks — the whole point."""
        fpga = HostProgramB(fpga_device("iv_b"), STEPS).price(batch)
        cpu = HostProgramB(cpu_device(), STEPS).price(batch)
        assert fpga.simulated_time_s != cpu.simulated_time_s


class TestAcceleratorEndToEnd:
    def test_all_table2_configurations_price_consistently(self, batch, reference):
        configs = [
            ("fpga", "iv_a", "double"),
            ("gpu", "iv_a", "double"),
            ("fpga", "iv_b", "double"),
            ("gpu", "iv_b", "single"),
            ("gpu", "iv_b", "double"),
            ("cpu", "reference", "single"),
            ("cpu", "reference", "double"),
        ]
        for platform, kernel, precision in configs:
            acc = BinomialAccelerator(platform=platform, kernel=kernel,
                                      precision=precision, steps=STEPS)
            result = price(batch, steps=STEPS, device=acc)
            exact = precision == "double" and acc.profile.name == "exact-double"
            tolerance = 1e-10 if exact else 1e-2
            assert rmse(reference, result.prices) < tolerance, acc.describe()

    def test_energy_ordering_matches_paper(self):
        """Steady-state options/J at the paper's N=1024:
        FPGA IV.B > GPU IV.B double > CPU reference."""
        effs = {}
        for platform, kernel in (("fpga", "iv_b"), ("gpu", "iv_b"),
                                 ("cpu", "reference")):
            acc = BinomialAccelerator(platform=platform, kernel=kernel,
                                      steps=1024)
            effs[platform] = acc.performance().options_per_joule
        assert effs["fpga"] > effs["gpu"] > effs["cpu"]

    def test_small_cold_batches_favor_the_cpu(self, batch):
        """Below saturation the sequential CPU has no ramp to pay — the
        latency-at-low-workload concern Section V.C raises."""
        gpu = BinomialAccelerator("gpu", "iv_b", steps=STEPS)
        cpu = BinomialAccelerator("cpu", "reference", steps=STEPS)
        assert price(batch, steps=STEPS, device=cpu).modeled.options_per_joule > \
            price(batch, steps=STEPS, device=gpu).modeled.options_per_joule

    def test_fpga_accelerator_prices_against_independent_control(self):
        """Accelerator prices agree with Barone-Adesi-Whaley to ~1%."""
        option = Option(spot=100, strike=105, rate=0.05, volatility=0.3,
                        maturity=0.75, option_type=OptionType.PUT)
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=512)
        priced = price([option], steps=512, device=acc).prices[0]
        assert priced == pytest.approx(baw_price(option), rel=0.02)


class TestVolatilityCurveUseCase:
    def test_smile_recovery_through_accelerator(self):
        """The full trader loop: quotes -> accelerator -> implied vols."""
        steps = 128
        scenario = generate_curve_scenario(n_strikes=5, steps=steps,
                                           pricing_steps=steps)
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=steps)

        def engine(option):
            return float(price([option], steps=steps, device=acc).prices[0])

        points = implied_vol_curve(scenario.base_option, scenario.strikes,
                                   scenario.market_prices, price_fn=engine,
                                   steps=steps)
        recovered = np.array([p.implied_vol for p in points])
        # the engine's flawed pow perturbs prices, so recovery is close
        # but not exact — exactly the paper's accuracy concern
        assert np.allclose(recovered, scenario.true_vols, atol=5e-3)

    def test_use_case_throughput_and_power(self):
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=1024)
        estimate = acc.performance()
        assert estimate.steady_state_time_for(2000) < 1.0
        assert estimate.power_w < 20.0  # abstract: "less than 20W"


class TestHlsToDeviceFlow:
    def test_compiled_kernel_drives_the_device_model(self):
        """HLS compile -> operating point -> performance estimate."""
        acc = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=1024)
        assert acc.compiled is not None
        estimate = acc.performance()
        expected_rate = (acc.compiled.fmax_hz * acc.compiled.parallel_lanes)
        # the estimate's node rate is derated from the compiled fmax
        assert estimate.tree_nodes_per_second == pytest.approx(
            expected_rate, rel=0.05)
        # power comes from the compile, not the paper constant
        assert estimate.power_w == pytest.approx(acc.compiled.power_w)

    def test_flawed_pow_visible_at_full_depth(self):
        batch = list(generate_batch(n_options=20, seed=3).options)
        from repro.core import ALTERA_13_0_DOUBLE, EXACT_DOUBLE
        flawed = simulate_kernel_b_batch(batch, 1024, ALTERA_13_0_DOUBLE)
        exact = simulate_kernel_b_batch(batch, 1024, EXACT_DOUBLE)
        error = rmse(exact, flawed)
        assert 1e-4 < error < 1e-2  # the paper's ~1e-3
