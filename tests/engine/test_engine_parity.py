"""Engine parity: scheduling must never change a single bit.

The engine restructures *how* batches are priced (grouping, chunking,
process fan-out, workspace reuse); these tests pin the contract that
the prices are bit-identical to calling the kernel simulators
directly, for every math profile, chunk size and worker count.
"""

import random

import numpy as np
import pytest

from repro.core.batch_sim import simulate_kernel_a_batch, simulate_kernel_b_batch
from repro.core.faithful_math import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
)
from repro.engine import EngineConfig, PricingEngine
from repro.errors import ReproError
from repro.finance import generate_batch, price_binomial

PROFILES = (EXACT_DOUBLE, EXACT_SINGLE, ALTERA_13_0_DOUBLE)
STEPS = 12
BATCH = 9  # deliberately not a multiple of any chunk size below


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=BATCH, seed=99).options)


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("chunk", (1, 7, BATCH, BATCH + 1))
@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("kernel,simulator", (
    ("iv_b", simulate_kernel_b_batch),
    ("iv_a", simulate_kernel_a_batch),
))
def test_bit_identical_to_simulator(batch, kernel, simulator, profile,
                                    chunk, workers):
    expected = simulator(batch, STEPS, profile)
    config = EngineConfig(workers=workers, chunk_options=chunk)
    with PricingEngine(kernel=kernel, profile=profile, config=config) as eng:
        prices = eng.price(batch, STEPS)
    np.testing.assert_array_equal(prices, expected)


@pytest.mark.parametrize("workers", (1, 2))
def test_reliability_layer_preserves_bit_identity(batch, workers):
    """No faults, no failures: the retry/quarantine machinery must not
    change a single bit, and the failure channel stays empty."""
    expected = simulate_kernel_b_batch(batch, STEPS)
    config = EngineConfig(workers=workers, chunk_options=3, max_retries=3,
                          chunk_timeout_s=60.0, backoff_base_s=0.01)
    with PricingEngine(kernel="iv_b", config=config) as eng:
        result = eng.run(batch, STEPS)
    np.testing.assert_array_equal(result.prices, expected)
    assert result.failures == ()
    assert result.stats.retries == 0
    assert result.stats.timeouts == 0
    assert result.stats.pool_rebuilds == 0
    assert result.stats.degraded_to_serial == 0
    assert result.stats.quarantined_options == 0


def test_reference_kernel_matches_price_binomial(batch):
    expected = np.array(
        [price_binomial(o, STEPS).price for o in batch], dtype=np.float64)
    with PricingEngine(kernel="reference",
                       config=EngineConfig(chunk_options=4)) as eng:
        prices = eng.price(batch, STEPS)
    np.testing.assert_array_equal(prices, expected)


def test_auto_chunking_matches_pinned(batch):
    with PricingEngine(kernel="iv_b") as auto_engine:
        auto = auto_engine.price(batch, STEPS)
    with PricingEngine(kernel="iv_b",
                       config=EngineConfig(chunk_options=2)) as pinned_engine:
        pinned = pinned_engine.price(batch, STEPS)
    np.testing.assert_array_equal(auto, pinned)


class TestInputOrder:
    """Shuffled, heterogeneous-steps streams come back in input order."""

    @pytest.mark.parametrize("workers", (1, 2))
    def test_heterogeneous_steps_scatter_back(self, workers):
        rng = random.Random(1234)
        pool = list(generate_batch(n_options=24, seed=5).options)
        rng.shuffle(pool)
        steps = [rng.choice((8, 12, 17)) for _ in pool]

        config = EngineConfig(workers=workers, chunk_options=5)
        with PricingEngine(kernel="iv_b", config=config) as eng:
            prices = eng.price(pool, steps)

        expected = np.array([
            simulate_kernel_b_batch([option], n)[0]
            for option, n in zip(pool, steps)
        ])
        np.testing.assert_array_equal(prices, expected)

    def test_grouping_is_reported(self):
        pool = list(generate_batch(n_options=6, seed=8).options)
        steps = [8, 12, 8, 12, 8, 12]
        with PricingEngine(kernel="iv_b") as eng:
            result = eng.run(pool, steps)
        assert result.stats.groups == 2
        assert result.stats.options == 6

    def test_steps_length_mismatch_raises(self, batch):
        with PricingEngine(kernel="iv_b") as eng:
            with pytest.raises(ReproError, match="does not match"):
                eng.price(batch, [STEPS] * (len(batch) - 1))


class TestValidation:
    def test_unknown_kernel(self):
        with pytest.raises(ReproError, match="kernel must be one of"):
            PricingEngine(kernel="iv_c")

    def test_iv_b_requires_crr(self):
        from repro.finance import LatticeFamily

        with pytest.raises(ReproError, match="CRR recombination"):
            PricingEngine(kernel="iv_b", family=LatticeFamily.JARROW_RUDD)

    def test_empty_batch(self):
        with PricingEngine(kernel="iv_b") as eng:
            with pytest.raises(ReproError, match="empty option batch"):
                eng.price([], STEPS)

    @pytest.mark.parametrize("kernel,message", (
        ("iv_b", "kernel IV.B needs at least 2 steps"),
        ("iv_a", "kernel IV.A needs at least 2 steps"),
    ))
    def test_too_few_steps_same_message_as_simulator(self, batch, kernel,
                                                     message):
        with PricingEngine(kernel=kernel) as eng:
            with pytest.raises(ReproError, match=message):
                eng.price(batch, 1)

    def test_bad_config(self):
        with pytest.raises(ReproError, match="workers"):
            EngineConfig(workers=0)
        with pytest.raises(ReproError, match="chunk_options"):
            EngineConfig(chunk_options=0)
        with pytest.raises(ReproError, match="tile_budget_bytes"):
            EngineConfig(tile_budget_bytes=0)


class TestStats:
    def test_counters_and_rates(self, batch):
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(chunk_options=4)) as eng:
            result = eng.run(batch, STEPS)
        stats = result.stats
        assert stats.options == BATCH
        assert stats.chunks == 3  # 9 options in chunks of 4
        assert stats.workers == 1
        assert stats.wall_time_s > 0.0
        assert stats.options_per_second > 0.0
        assert stats.tree_nodes_per_second > stats.options_per_second
        assert stats.peak_tile_bytes > 0

    def test_performance_row_integration(self, batch):
        with PricingEngine(kernel="iv_b") as eng:
            stats = eng.run(batch, STEPS).stats
        row = stats.performance_row(label="engine", platform="test host")
        assert row.options_per_second == stats.options_per_second
        assert row.tree_nodes_per_second == stats.tree_nodes_per_second
        assert row.options_per_joule is None

    def test_as_dict_round_trips_json(self, batch):
        import json

        with PricingEngine(kernel="iv_b") as eng:
            stats = eng.run(batch, STEPS).stats
        assert json.loads(json.dumps(stats.as_dict()))["options"] == BATCH
