"""The batched greeks workload: one engine run, five sensitivities.

Covers the tentpole contract:

* delta/gamma/theta come out of the *same* engine pricing pass as the
  prices (tree-level capture — the run performs exactly ``5 * n``
  tree pricings: one level-captured base pass plus four bump passes,
  never a sixth);
* ``repro.greeks`` agrees with the scalar oracle
  (:func:`repro.finance.greeks.lattice_greeks`) to 1e-9 under CRR on
  every kernel;
* the greeks arrays agree with central finite differences of
  :func:`price_binomial`;
* pool fan-out is bit-identical to the serial path;
* failures inherit the engine's quarantine machinery and are remapped
  to the original option index with the failing pass named.
"""

import numpy as np
import pytest

import repro
from repro.engine import EngineConfig, PricingEngine
from repro.engine.faults import ALWAYS, FaultKind, FaultPlan
from repro.errors import ReproError
from repro.finance import generate_batch, price_binomial
from repro.finance.greeks import lattice_greeks

STEPS = 64
ORACLE_TOL = 1e-9

GREEK_FIELDS = ("prices", "delta", "gamma", "theta", "vega", "rho")


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=40, seed=11).options)


@pytest.fixture(scope="module")
def oracle(batch):
    rows = [lattice_greeks(o, steps=STEPS) for o in batch]
    return {
        "prices": np.array([r.price for r in rows]),
        "delta": np.array([r.delta for r in rows]),
        "gamma": np.array([r.gamma for r in rows]),
        "theta": np.array([r.theta for r in rows]),
        "vega": np.array([r.vega for r in rows]),
        "rho": np.array([r.rho for r in rows]),
    }


class TestOracleParity:
    @pytest.mark.parametrize("kernel", ("iv_b", "iv_a", "reference"))
    def test_matches_scalar_lattice_greeks(self, batch, oracle, kernel):
        result = repro.greeks(batch, steps=STEPS, kernel=kernel)
        for field in GREEK_FIELDS:
            diff = np.max(np.abs(getattr(result, field) - oracle[field]))
            assert diff <= ORACLE_TOL, f"{kernel}/{field}: {diff:.3e}"

    def test_prices_match_price_route(self, batch):
        """The base pass prices exactly like the plain pricing route."""
        greeks = repro.greeks(batch, steps=STEPS, kernel="iv_b")
        prices = repro.price(batch, steps=STEPS, kernel="iv_b")
        np.testing.assert_array_equal(greeks.prices, prices.prices)


class TestSamePassContract:
    def test_exactly_five_pricings_per_option(self, batch):
        """No sixth pass: delta/gamma/theta ride the base pricing pass."""
        result = repro.greeks(batch, steps=STEPS, kernel="iv_b")
        assert result.stats.options == 5 * len(batch)
        assert result.stats.greeks_options == len(batch)
        assert result.stats.bump_passes == 4

    def test_five_sibling_chunk_groups(self, batch):
        """The unfused schedule keeps five sibling chunk groups."""
        result = repro.greeks(batch, steps=STEPS, kernel="iv_b",
                              config=EngineConfig(fused_greeks=False))
        assert result.stats.groups == 5  # base + vega+/- + rho+/-
        assert result.stats.chunks >= 5
        assert result.stats.fused_greeks == 0

    def test_fused_schedule_collapses_groups(self, batch):
        """Fused mode: one scheduling group per depth, same counters."""
        result = repro.greeks(batch, steps=STEPS, kernel="iv_b",
                              config=EngineConfig(fused_greeks=True))
        assert result.stats.groups == 1
        assert result.stats.options == 5 * len(batch)
        assert result.stats.greeks_options == len(batch)
        assert result.stats.bump_passes == 4
        assert result.stats.fused_greeks == 1

    def test_fused_matches_five_pass_bitwise(self, batch):
        fused = repro.greeks(batch, steps=STEPS, kernel="iv_b",
                             config=EngineConfig(fused_greeks=True))
        five = repro.greeks(batch, steps=STEPS, kernel="iv_b",
                            config=EngineConfig(fused_greeks=False))
        for field in GREEK_FIELDS:
            np.testing.assert_array_equal(getattr(fused, field),
                                          getattr(five, field))

    def test_minimum_steps_enforced(self, batch):
        with pytest.raises(ReproError, match="at least 3 steps"):
            repro.greeks(batch[:2], steps=2)

    def test_empty_batch(self):
        result = repro.greeks([])
        assert len(result) == 0
        assert result.stats is None


class TestFiniteDifferenceParity:
    """Independent cross-check against central FD of price_binomial."""

    def fd(self, option, field, h):
        from dataclasses import replace
        hi = price_binomial(replace(
            option, **{field: getattr(option, field) + h}), STEPS).price
        lo = price_binomial(replace(
            option, **{field: getattr(option, field) - h}), STEPS).price
        return (hi - lo) / (2.0 * h)

    def test_vega_rho_match_fd(self, batch):
        """Vega/rho ARE central differences (same bumps), so they match
        FD of the reference pricer to parameter-builder noise."""
        result = repro.greeks(batch[:8], steps=STEPS, kernel="iv_b")
        for i, option in enumerate(batch[:8]):
            assert result.vega[i] == pytest.approx(
                self.fd(option, "volatility", 1e-3), abs=1e-5)
            assert result.rho[i] == pytest.approx(
                self.fd(option, "rate", 1e-4), abs=1e-4)

    def test_delta_gamma_match_fd(self, batch):
        """Lattice delta/gamma are secants over the level-1/2 node
        spread (~2 sigma sqrt(dt)) — they track spot-bump FD to the
        discretisation bias, not to machine precision."""
        result = repro.greeks(batch[:8], steps=STEPS, kernel="iv_b")
        for i, option in enumerate(batch[:8]):
            fd_delta = self.fd(option, "spot", option.spot * 1e-4)
            assert result.delta[i] == pytest.approx(fd_delta, abs=5e-2)
        assert np.all(result.gamma[:8] >= -1e-12)


class TestPoolParity:
    def test_pool_bit_identical_to_serial(self, batch):
        serial = repro.greeks(batch, steps=STEPS, kernel="iv_b")
        pooled = repro.greeks(batch, steps=STEPS, kernel="iv_b", workers=2)
        for field in GREEK_FIELDS:
            np.testing.assert_array_equal(getattr(serial, field),
                                          getattr(pooled, field))

    def test_heterogeneous_steps(self, batch):
        depths = [32 if i % 2 else 96 for i in range(len(batch))]
        result = repro.greeks(batch, steps=depths, kernel="iv_b")
        for i in (0, 1):
            oracle = lattice_greeks(batch[i], steps=depths[i])
            assert result.delta[i] == pytest.approx(oracle.delta,
                                                    abs=ORACLE_TOL)


class TestFailureHandling:
    def test_base_pass_failure_remapped_and_named(self, batch):
        """Five-pass mode isolates the failure to the pass that hit it."""
        n = len(batch)
        plan = FaultPlan.single(2, FaultKind.NAN, attempts=ALWAYS)
        result = repro.greeks(batch, steps=STEPS, kernel="iv_b",
                              config=EngineConfig(max_retries=1,
                                                  backoff_base_s=0.0),
                              strict=False)
        # inject on the engine directly to control the fault plan
        with PricingEngine(kernel="iv_b", faults=plan,
                           config=EngineConfig(max_retries=1,
                                               backoff_base_s=0.0,
                                               fused_greeks=False)) as engine:
            run = engine.run_greeks(batch, STEPS)
        (record,) = run.failures
        assert record.index == 2  # original index, not the virtual 2
        assert "[base pass]" in record.message
        assert np.isnan(run.prices[2]) and np.isnan(run.delta[2])
        assert np.isfinite(run.vega[2])  # bump passes were untouched
        mask = np.ones(n, dtype=bool)
        mask[2] = False
        np.testing.assert_array_equal(run.prices[mask], result.prices[mask])

    def test_bump_pass_failure_names_the_pass(self, batch):
        n = len(batch)
        plan = FaultPlan.single(n + 3, FaultKind.NAN, attempts=ALWAYS)
        with PricingEngine(kernel="iv_b", faults=plan,
                           config=EngineConfig(max_retries=1,
                                               backoff_base_s=0.0,
                                               fused_greeks=False)) as engine:
            run = engine.run_greeks(batch, STEPS)
        (record,) = run.failures
        assert record.index == 3
        assert "[vega+ pass]" in record.message
        assert np.isnan(run.vega[3])
        assert np.isfinite(run.prices[3]) and np.isfinite(run.rho[3])

    def test_fused_failure_quarantines_whole_row(self, batch):
        """Fused mode: one fused task per option, so a poisoned option
        loses its whole greeks row and the record says so."""
        n = len(batch)
        plan = FaultPlan.single(2, FaultKind.NAN, attempts=ALWAYS)
        with PricingEngine(kernel="iv_b", faults=plan,
                           config=EngineConfig(max_retries=1,
                                               backoff_base_s=0.0,
                                               fused_greeks=True)) as engine:
            run = engine.run_greeks(batch, STEPS)
        (record,) = run.failures
        assert record.index == 2
        assert "[fused greeks]" in record.message
        for field in GREEK_FIELDS:
            assert np.isnan(getattr(run, field)[2]), field
        # every other option is untouched and matches the clean run
        clean = repro.greeks(batch, steps=STEPS, kernel="iv_b")
        mask = np.ones(n, dtype=bool)
        mask[2] = False
        for field in GREEK_FIELDS:
            np.testing.assert_array_equal(getattr(run, field)[mask],
                                          getattr(clean, field)[mask])

    def test_strict_reraises(self, batch):
        plan = FaultPlan.single(0, FaultKind.NAN, attempts=ALWAYS)
        with PricingEngine(kernel="iv_b", faults=plan,
                           config=EngineConfig(max_retries=1,
                                               backoff_base_s=0.0)) as engine:
            run = engine.run_greeks(batch, STEPS)
        assert run.failures  # quarantined, engine-level is non-strict
        # the api wrapper re-raises under strict=True via its own engine;
        # here we assert the record carries enough to do so
        assert run.failures[0].error


class TestConfigValidation:
    def test_rejects_config_and_workers(self, batch):
        with pytest.raises(ReproError, match="not both"):
            repro.greeks(batch, config=EngineConfig(), workers=2)

    def test_rejects_nonpositive_bumps(self, batch):
        with PricingEngine(kernel="iv_b") as engine:
            with pytest.raises(ReproError):
                engine.run_greeks(batch, STEPS, bump_vol=0.0)
            with pytest.raises(ReproError):
                engine.run_greeks(batch, STEPS, bump_rate=-1e-4)
