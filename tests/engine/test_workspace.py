"""Workspace/buffer-pool behaviour: reuse, growth, accounting."""

import numpy as np
import pytest

from repro.engine import Workspace, kernel_tile_bytes


class TestTileLease:
    def test_shape_and_dtype(self):
        ws = Workspace()
        tile = ws.tile("v", (13, 4), np.float64)
        assert tile.shape == (13, 4)
        assert tile.dtype == np.float64

    def test_same_request_reuses_buffer(self):
        ws = Workspace()
        first = ws.tile("v", (8, 8), np.float64)
        second = ws.tile("v", (8, 8), np.float64)
        assert np.shares_memory(first, second)

    def test_smaller_request_reuses_buffer(self):
        ws = Workspace()
        big = ws.tile("v", (16, 16), np.float64)
        small = ws.tile("v", (4, 4), np.float64)
        assert np.shares_memory(big, small)

    def test_growth_reallocates(self):
        ws = Workspace()
        ws.tile("v", (4, 4), np.float64)
        before = ws.nbytes
        ws.tile("v", (32, 32), np.float64)
        assert ws.nbytes > before

    def test_dtype_change_honoured(self):
        ws = Workspace()
        ws.tile("v", (8, 8), np.float64)
        tile = ws.tile("v", (8, 8), np.float32)
        assert tile.dtype == np.float32

    def test_distinct_names_are_distinct_buffers(self):
        ws = Workspace()
        a = ws.tile("a", (8, 8), np.float64)
        b = ws.tile("b", (8, 8), np.float64)
        assert not np.shares_memory(a, b)


class TestAccounting:
    def test_peak_survives_release(self):
        ws = Workspace()
        ws.tile("v", (64, 64), np.float64)
        peak = ws.peak_bytes
        ws.release()
        assert ws.nbytes == 0
        assert ws.peak_bytes == peak
        assert peak >= 64 * 64 * 8

    def test_kernel_tile_bytes_matches_simulator_footprint(self):
        """The planner's per-row estimate covers what the loop leases."""
        from repro.backends.numpy_backend import _lease_tiles

        rows, steps = 7, 12
        ws = Workspace()
        _lease_tiles(ws, rows, steps, np.dtype(np.float64))
        assert ws.nbytes == kernel_tile_bytes(rows, steps, np.dtype(np.float64))

    def test_kernel_tile_bytes_scales_linearly(self):
        one = kernel_tile_bytes(1, 1024, np.dtype(np.float64))
        many = kernel_tile_bytes(50, 1024, np.dtype(np.float64))
        assert many == 50 * one


class TestSimulatorReuse:
    def test_repeat_calls_do_not_grow_workspace(self):
        from repro.core.batch_sim import simulate_kernel_b_batch
        from repro.finance import generate_batch

        batch = list(generate_batch(n_options=5, seed=3).options)
        ws = Workspace()
        first = simulate_kernel_b_batch(batch, 16, workspace=ws)
        footprint = ws.nbytes
        second = simulate_kernel_b_batch(batch, 16, workspace=ws)
        assert ws.nbytes == footprint
        np.testing.assert_array_equal(first, second)

    def test_shared_workspace_result_matches_private(self):
        from repro.core.batch_sim import simulate_kernel_a_batch
        from repro.finance import generate_batch

        batch = list(generate_batch(n_options=5, seed=4).options)
        ws = Workspace()
        # prime the workspace with garbage from a different batch shape
        ws.tile("v", (3, 40), np.float64)[:] = 123.0
        shared = simulate_kernel_a_batch(batch, 12, workspace=ws)
        private = simulate_kernel_a_batch(batch, 12)
        np.testing.assert_array_equal(shared, private)
