"""Routed entry points and the throughput harness.

The façade `repro.price`, the accelerator and the accuracy experiments
all schedule through the engine; these tests pin that the routing is
value-preserving, that the parameter builders validate before
allocating, and that the benchmark harness produces a well-formed,
gateable document.
"""

import numpy as np
import pytest

from repro.api import price
from repro.core import BinomialAccelerator
from repro.core.kernel_a import build_params_a
from repro.core.kernel_b import build_params_b
from repro.errors import ReproError
from repro.finance import generate_batch, price_binomial


class TestParamValidation:
    """Builders raise the simulators' exact messages, before allocating."""

    def test_params_b_steps(self):
        batch = list(generate_batch(n_options=2, seed=1).options)
        with pytest.raises(ReproError, match="kernel IV.B needs at least 2 steps"):
            build_params_b(batch, 1)

    def test_params_a_steps(self):
        batch = list(generate_batch(n_options=2, seed=1).options)
        with pytest.raises(ReproError, match="kernel IV.A needs at least 2 steps"):
            build_params_a(batch, 0)

    def test_params_empty_batch(self):
        with pytest.raises(ReproError, match="empty option batch"):
            build_params_b([], 8)
        with pytest.raises(ReproError, match="empty option batch"):
            build_params_a([], 8)


class TestRoutedEntryPoints:
    def test_facade_batch_matches_per_option(self):
        batch = list(generate_batch(n_options=6, seed=11).options)
        routed = price(batch, steps=16, kernel="reference").prices
        direct = np.array([price_binomial(o, 16).price for o in batch])
        np.testing.assert_array_equal(routed, direct)

    def test_facade_batch_workers(self):
        batch = list(generate_batch(n_options=6, seed=11).options)
        serial = price(batch, steps=16, kernel="reference").prices
        fanned = price(batch, steps=16, kernel="reference",
                       workers=2).prices
        np.testing.assert_array_equal(serial, fanned)

    def test_facade_batch_empty(self):
        assert price([], steps=16).prices.shape == (0,)

    def test_accelerator_routes_through_engine(self):
        from repro.core.batch_sim import simulate_kernel_b_batch
        from repro.core.faithful_math import ALTERA_13_0_DOUBLE
        from repro.engine import EngineConfig

        batch = list(generate_batch(n_options=5, seed=12).options)
        with BinomialAccelerator(platform="fpga", kernel="iv_b", steps=16,
                                 compile_fpga=False,
                                 engine_config=EngineConfig(chunk_options=2)
                                 ) as accelerator:
            result = price(batch, steps=16, device=accelerator)
        expected = simulate_kernel_b_batch(batch, 16, ALTERA_13_0_DOUBLE)
        np.testing.assert_array_equal(result.prices, expected)

    def test_accelerator_reference_single_precision(self):
        batch = list(generate_batch(n_options=4, seed=13).options)
        accelerator = BinomialAccelerator(platform="cpu", kernel="reference",
                                          precision="single", steps=16)
        result = price(batch, steps=16, device=accelerator)
        expected = price(batch, steps=16, kernel="reference",
                         precision="single").prices
        np.testing.assert_array_equal(result.prices, expected)


class TestBenchmarkHarness:
    @pytest.fixture(scope="class")
    def document(self):
        from repro.bench.engine_bench import run_benchmark

        return run_benchmark(options_counts=(12,), steps=16,
                             workers_settings=(1,), kernel="iv_b")

    def test_schema_and_shape(self, document):
        from repro.bench.engine_bench import BENCH_SCHEMA

        assert document["schema"] == BENCH_SCHEMA
        assert document["config"]["kernel"] == "iv_b"
        (entry,) = document["results"]
        assert entry["options"] == 12
        assert entry["parity"]["bit_identical_to_simulator"] is True
        (run,) = entry["runs"]
        assert run["workers"] == 1
        assert run["options_per_second"] > 0
        assert run["speedup_vs_baseline"] > 0

    def test_write_round_trip(self, document, tmp_path):
        import json

        from repro.bench.engine_bench import write_benchmark

        path = write_benchmark(document, tmp_path / "bench.json")
        assert json.loads(path.read_text()) == document

    def test_regression_gate(self, document):
        import copy

        from repro.bench.engine_bench import check_throughput_regression

        assert check_throughput_regression(document, document) == []

        slower = copy.deepcopy(document)
        slower["results"][0]["runs"][0]["options_per_second"] /= 2.0
        failures = check_throughput_regression(slower, document)
        assert len(failures) == 1
        assert "options=12 workers=1" in failures[0]

    def test_regression_gate_rejects_mismatched_config(self, document):
        import copy

        from repro.bench.engine_bench import check_throughput_regression

        other = copy.deepcopy(document)
        other["config"]["steps"] = 32
        failures = check_throughput_regression(document, other)
        assert failures and "not comparable" in failures[0]

    def test_baseline_agrees_with_simulator(self):
        from repro.bench.engine_bench import (
            baseline_simulate_kernel_a,
            baseline_simulate_kernel_b,
        )
        from repro.core.batch_sim import (
            simulate_kernel_a_batch,
            simulate_kernel_b_batch,
        )

        batch = list(generate_batch(n_options=6, seed=21).options)
        np.testing.assert_allclose(
            baseline_simulate_kernel_b(batch, 16),
            simulate_kernel_b_batch(batch, 16), rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            baseline_simulate_kernel_a(batch, 16),
            simulate_kernel_a_batch(batch, 16), rtol=1e-12, atol=1e-12)
