"""Observability threading through the engine.

Asserts the PR 3 acceptance properties: traced runs emit a span tree
at least four levels deep whose chunk spans account for the (serial)
run's wall time, reliability events annotate the spans where they
happened, the metrics registry agrees with ``EngineStats`` and
``EngineResult.failures``, and — critically — tracing is opt-in:
with no tracer the engine produces bit-identical prices and records
no spans.
"""

import numpy as np
import pytest

from repro.core.batch_sim import simulate_kernel_b_batch
from repro.engine import (
    ALWAYS,
    EngineConfig,
    FaultKind,
    FaultPlan,
    PricingEngine,
)
from repro.finance import generate_batch
from repro.obs import keys
from repro.obs.export import chunk_span_seconds
from repro.obs.metrics import MetricsRegistry, parse_prometheus, set_registry
from repro.obs.trace import NULL_TRACER, Tracer, max_depth

STEPS = 8
CONFIG = dict(backoff_base_s=0.0, chunk_options=8)


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=32, seed=321).options)


@pytest.fixture(scope="module")
def expected(batch):
    return simulate_kernel_b_batch(batch, STEPS)


def run_traced(batch, tracer, *, workers=1, faults=None, **config):
    with PricingEngine(kernel="iv_b",
                       config=EngineConfig(workers=workers,
                                           **{**CONFIG, **config}),
                       faults=faults, tracer=tracer) as engine:
        return engine.run(batch, STEPS)


def spans_of_kind(root: dict, kind: str) -> list:
    found = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node["kind"] == kind:
            found.append(node)
        stack.extend(node.get("children", ()))
    return found


class TestSpanTree:
    def test_serial_run_has_four_levels(self, batch, expected):
        tracer = Tracer()
        result = run_traced(batch, tracer)
        assert np.array_equal(result.prices, expected)
        root = tracer.as_dicts()[0]
        assert root["kind"] == "run" and root["name"] == "engine.run"
        assert max_depth(root) >= 4
        assert len(spans_of_kind(root, "group")) == result.stats.groups
        assert len(spans_of_kind(root, "chunk")) == result.stats.chunks
        assert len(spans_of_kind(root, "attempt")) == result.stats.chunks

    def test_serial_chunk_spans_cover_wall_time(self, batch):
        # deep enough that pricing dominates the fixed planning
        # overhead; the acceptance bound is 10% on serial runs
        tracer = Tracer()
        with PricingEngine(kernel="iv_b",
                           config=EngineConfig(chunk_options=8),
                           tracer=tracer) as engine:
            result = engine.run(batch, 512)
        covered = chunk_span_seconds(tracer.as_dicts()[0])
        assert covered == pytest.approx(result.stats.wall_time_s, rel=0.10)

    def test_pool_run_adopts_worker_spans(self, batch, expected):
        tracer = Tracer()
        result = run_traced(batch, tracer, workers=2)
        assert np.array_equal(result.prices, expected)
        root = tracer.as_dicts()[0]
        assert max_depth(root) >= 5
        workers = spans_of_kind(root, "worker")
        assert len(workers) == result.stats.chunks
        assert all(w["attrs"]["pid"] != 0 for w in workers)
        # worker clocks are CLOCK_MONOTONIC system-wide: they must land
        # inside the run span's window without any translation
        for w in workers:
            assert root["start_ns"] <= w["start_ns"] <= root["end_ns"]

    def test_run_span_carries_stats_attrs(self, batch):
        tracer = Tracer()
        result = run_traced(batch, tracer)
        attrs = tracer.as_dicts()[0]["attrs"]
        assert attrs["kernel"] == "iv_b"
        assert attrs["options"] == len(batch)
        assert attrs["chunks"] == result.stats.chunks
        assert attrs["options_per_second"] > 0


class TestDisabledTracer:
    def test_no_tracer_records_nothing(self, batch, expected):
        result = run_traced(batch, None)
        assert np.array_equal(result.prices, expected)

    def test_traced_and_untraced_prices_bit_identical(self, batch):
        untraced = run_traced(batch, None).prices
        traced = run_traced(batch, Tracer()).prices
        assert np.array_equal(untraced, traced)

    def test_null_tracer_is_the_default(self):
        with PricingEngine(kernel="iv_b") as engine:
            assert engine.tracer is NULL_TRACER

    def test_describe_marks_traced_engines(self):
        with PricingEngine(kernel="iv_b", tracer=Tracer()) as engine:
            assert "traced" in engine.describe()
        with PricingEngine(kernel="iv_b") as engine:
            assert "traced" not in engine.describe()


class TestReliabilityAnnotations:
    def annotations(self, root):
        out = []
        stack = [root]
        while stack:
            node = stack.pop()
            out.extend(a["message"] for a in node.get("annotations", ()))
            stack.extend(node.get("children", ()))
        return out

    @pytest.mark.parametrize("workers", (1, 2))
    def test_retry_annotates_the_failed_chunk(self, batch, expected, workers):
        plan = FaultPlan.single(3, FaultKind.RAISE, attempts=1, seed=0)
        tracer = Tracer()
        result = run_traced(batch, tracer, workers=workers, faults=plan)
        assert np.array_equal(result.prices, expected)
        assert result.stats.retries >= 1
        assert "retry" in self.annotations(tracer.as_dicts()[0])

    def test_quarantine_annotates_and_counts(self, batch):
        plan = FaultPlan.single(5, FaultKind.RAISE, attempts=ALWAYS, seed=0)
        tracer = Tracer()
        result = run_traced(batch, tracer, faults=plan, max_retries=1)
        assert len(result.failures) == 1
        assert result.stats.quarantined_options == 1
        messages = self.annotations(tracer.as_dicts()[0])
        assert "quarantined" in messages
        assert "quarantine-split" in messages


class TestMetricsAgreement:
    def test_run_publishes_into_process_registry(self, batch):
        hermetic = MetricsRegistry()
        previous = set_registry(hermetic)
        try:
            result = run_traced(batch, None)
            text = hermetic.render_prometheus()
        finally:
            set_registry(previous)
        samples = parse_prometheus(text)
        assert samples[keys.OPTIONS_PRICED_TOTAL] == len(batch)
        assert samples[keys.CHUNKS_TOTAL] == result.stats.chunks
        assert samples[keys.RETRIES_TOTAL] == result.stats.retries == 0
        assert (samples[keys.QUARANTINED_OPTIONS_TOTAL]
                == len(result.failures) == 0)
        assert samples[f"{keys.CHUNK_LATENCY_SECONDS}_count"] \
            == result.stats.chunks

    def test_failure_counters_match_engine_result(self, batch):
        plan = FaultPlan.single(2, FaultKind.RAISE, attempts=ALWAYS, seed=0)
        hermetic = MetricsRegistry()
        previous = set_registry(hermetic)
        try:
            result = run_traced(batch, None, faults=plan, max_retries=1)
            text = hermetic.render_prometheus()
        finally:
            set_registry(previous)
        samples = parse_prometheus(text)
        assert samples[keys.QUARANTINED_OPTIONS_TOTAL] == len(result.failures)
        assert samples[keys.RETRIES_TOTAL] == result.stats.retries > 0


class TestCloseSemantics:
    def test_double_close_is_a_noop(self):
        engine = PricingEngine(kernel="iv_b")
        engine.close()
        assert engine.closed
        engine.close()  # must not raise
        assert engine.closed

    def test_context_manager_closes(self):
        with PricingEngine(kernel="iv_b") as engine:
            assert not engine.closed
        assert engine.closed
        engine.close()  # idempotent after __exit__ too


class TestGreeksTracing:
    def test_traced_greeks_run_records_every_pass(self, batch):
        # regression: the greeks span loop once unpacked the pass table
        # wrong and any enabled tracer crashed run_greeks outright
        config = EngineConfig(fused_greeks=False)
        tracer = Tracer()
        with PricingEngine(kernel="iv_b", tracer=tracer,
                           config=config) as engine:
            traced = engine.run_greeks(batch, STEPS)
        with PricingEngine(kernel="iv_b", config=config) as engine:
            untraced = engine.run_greeks(batch, STEPS)
        assert np.array_equal(traced.prices, untraced.prices)
        assert np.array_equal(traced.delta, untraced.delta)
        root = tracer.as_dicts()[0]
        groups = spans_of_kind(root, "group")
        labels = {span["name"].split("[")[1].split(":")[0]
                  for span in groups}
        # base pass plus the four bump passes, one group span each
        assert labels == {"base", "vega+", "vega-", "rho+", "rho-"}
        assert all(span["attrs"]["task"] == "greeks" for span in groups)

    def test_traced_fused_greeks_run_collapses_groups(self, batch):
        tracer = Tracer()
        with PricingEngine(kernel="iv_b", tracer=tracer) as engine:
            traced = engine.run_greeks(batch, STEPS)
        with PricingEngine(kernel="iv_b") as engine:
            untraced = engine.run_greeks(batch, STEPS)
        assert np.array_equal(traced.prices, untraced.prices)
        root = tracer.as_dicts()[0]
        assert root["attrs"]["fused"] is True
        assert root["attrs"]["backend"]
        groups = spans_of_kind(root, "group")
        labels = {span["name"].split("[")[1].split(":")[0]
                  for span in groups}
        assert labels == {"fused"}
        assert all(span["attrs"]["task"] == "greeks_fused"
                   for span in groups)
