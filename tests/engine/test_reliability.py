"""Fault-tolerant execution: every injected fault has a deterministic outcome.

The reliability layer's contract, pinned mode by mode:

* a transient worker exception is retried and the batch stays
  bit-identical;
* a poison option is quarantined down to a single NaN price plus a
  structured ``FailureRecord`` — the other N-1 prices are untouched;
* a hung chunk is cut off at ``chunk_timeout_s`` and the pool rebuilt;
* a killed worker process (``os._exit``) costs one pool rebuild, a
  second pool failure degrades the run to the serial path;
* simulated transport failures (OpenCL queue, PCIe link) raise
  ``TransportFaultError`` on a seeded, reproducible schedule and are
  recoverable with ``retry_call``;
* closing the engine mid-run cancels the in-flight work and leaks no
  worker processes.

``REPRO_FAULT_SEED`` offsets every seed used here; the CI
fault-injection job runs this file under three fixed values, separate
from tier-1, so a flake is attributable to a specific schedule.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.core.batch_sim import simulate_kernel_b_batch
from repro.engine import (
    ALWAYS,
    EngineConfig,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PricingEngine,
    RetryPolicy,
    TransportFaultInjector,
    retry_call,
)
from repro.errors import (
    EngineError,
    FinanceError,
    ReproError,
    TransportFaultError,
)
from repro.finance import Option, generate_batch

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
STEPS = 8
NO_BACKOFF = dict(backoff_base_s=0.0)


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=32, seed=77 + SEED).options)


@pytest.fixture(scope="module")
def expected(batch):
    return simulate_kernel_b_batch(batch, STEPS)


def run_with_faults(batch, plan, **config):
    with PricingEngine(config=EngineConfig(**{**NO_BACKOFF, **config}),
                       faults=plan) as engine:
        return engine.run(batch, STEPS)


class TestInjectedRaise:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_transient_raise_is_retried(self, batch, expected, workers):
        plan = FaultPlan.single(3, FaultKind.RAISE, attempts=1, seed=SEED)
        result = run_with_faults(batch, plan, workers=workers,
                                 chunk_options=8, max_retries=2)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.failures == ()
        assert result.stats.retries >= 1
        assert result.stats.quarantined_options == 0

    def test_persistent_raise_quarantines_one_option(self, batch, expected):
        plan = FaultPlan.single(6, FaultKind.RAISE, attempts=ALWAYS, seed=SEED)
        result = run_with_faults(batch, plan, chunk_options=8, max_retries=1)
        mask = np.ones(len(batch), dtype=bool)
        mask[6] = False
        np.testing.assert_array_equal(result.prices[mask], expected[mask])
        assert np.isnan(result.prices[6])
        (record,) = result.failures
        assert record.index == 6
        assert record.error == "EngineError"  # bare RuntimeError, normalised
        assert "InjectedFaultError" in record.message
        assert result.stats.quarantined_options == 1


class TestNaNPoison:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_poison_option_returns_n_minus_1_prices(self, batch, expected,
                                                    workers):
        plan = FaultPlan.single(5, FaultKind.NAN, attempts=ALWAYS, seed=SEED)
        result = run_with_faults(batch, plan, workers=workers,
                                 chunk_options=8, max_retries=1)
        mask = np.ones(len(batch), dtype=bool)
        mask[5] = False
        np.testing.assert_array_equal(result.prices[mask], expected[mask])
        assert np.isnan(result.prices[5])
        (record,) = result.failures
        assert record.index == 5
        assert record.error == "PoisonChunkError"
        assert record.attempts >= 1
        assert result.stats.quarantined_options == 1
        assert result.stats.retries >= 1

    def test_transient_nan_heals_on_retry(self, batch, expected):
        plan = FaultPlan.single(5, FaultKind.NAN, attempts=1, seed=SEED)
        result = run_with_faults(batch, plan, chunk_options=8, max_retries=2)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.failures == ()


class TestHangAndTimeout:
    def test_hung_chunk_times_out_and_pool_rebuilds(self, batch, expected):
        plan = FaultPlan.single(0, FaultKind.HANG, attempts=1, hang_s=3.0,
                                seed=SEED)
        result = run_with_faults(batch, plan, workers=2, chunk_options=8,
                                 max_retries=2, chunk_timeout_s=0.5)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.stats.timeouts == 1
        assert result.stats.pool_rebuilds == 1
        assert result.failures == ()


class TestWorkerKill:
    def test_killed_worker_costs_one_pool_rebuild(self, batch, expected):
        plan = FaultPlan.single(0, FaultKind.KILL, attempts=1, seed=SEED)
        result = run_with_faults(batch, plan, workers=2, chunk_options=8,
                                 max_retries=2)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.stats.pool_rebuilds == 1
        assert result.stats.retries >= 1
        assert result.failures == ()

    def test_serial_path_simulates_kill_without_dying(self, batch, expected):
        plan = FaultPlan.single(0, FaultKind.KILL, attempts=1, seed=SEED)
        result = run_with_faults(batch, plan, workers=1, chunk_options=8,
                                 max_retries=2)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.stats.retries >= 1


class TestDegradation:
    def test_repeated_pool_failures_degrade_to_serial(self, batch, expected):
        plan = FaultPlan(specs=(
            FaultSpec(option_index=0, kind=FaultKind.KILL, attempts=2),
        ), seed=SEED)
        result = run_with_faults(batch, plan, workers=2, chunk_options=8,
                                 max_retries=3)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.stats.degraded_to_serial == 1
        assert result.stats.pool_rebuilds == 1


class TestAcceptanceScenario:
    """The ISSUE acceptance batch: crash + hang + poison, 1024 options."""

    def test_crash_hang_and_poison_in_one_batch(self):
        batch = list(generate_batch(n_options=1024, seed=3 + SEED).options)
        expected = simulate_kernel_b_batch(batch, STEPS)
        plan = FaultPlan(specs=(
            FaultSpec(option_index=0, kind=FaultKind.KILL, attempts=1),
            FaultSpec(option_index=100, kind=FaultKind.HANG, attempts=1,
                      hang_s=1.5),
            FaultSpec(option_index=500, kind=FaultKind.NAN, attempts=ALWAYS),
        ), seed=SEED)
        config = EngineConfig(workers=2, chunk_options=64, max_retries=1,
                              chunk_timeout_s=0.5, **NO_BACKOFF)
        with PricingEngine(config=config, faults=plan) as engine:
            result = engine.run(batch, STEPS)

        mask = np.ones(1024, dtype=bool)
        mask[500] = False
        np.testing.assert_array_equal(result.prices[mask], expected[mask])
        assert np.isnan(result.prices[500])
        (record,) = result.failures
        assert record.index == 500
        stats = result.stats
        assert stats.retries > 0
        assert stats.pool_rebuilds > 0
        assert stats.quarantined_options == 1
        assert stats.timeouts > 0


class TestSeededPlans:
    """FaultPlan.random is a pure function of its seed."""

    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=SEED + 11, n_options=64, n_faults=3)
        b = FaultPlan.random(seed=SEED + 11, n_options=64, n_faults=3)
        assert a == b

    def test_random_poison_plan_quarantines_its_targets(self, batch,
                                                        expected):
        plan = FaultPlan.random(seed=SEED + 23, n_options=len(batch),
                                n_faults=2, kinds=(FaultKind.NAN,),
                                attempts=ALWAYS)
        targets = sorted(spec.option_index for spec in plan.specs)
        result = run_with_faults(batch, plan, chunk_options=8, max_retries=1)
        assert sorted(record.index for record in result.failures) == targets
        mask = np.ones(len(batch), dtype=bool)
        mask[targets] = False
        np.testing.assert_array_equal(result.prices[mask], expected[mask])
        assert np.isnan(result.prices[targets]).all()

    def test_random_transient_plan_heals(self, batch, expected):
        plan = FaultPlan.random(seed=SEED + 31, n_options=len(batch),
                                n_faults=3, kinds=(FaultKind.RAISE,),
                                attempts=1)
        result = run_with_faults(batch, plan, chunk_options=8, max_retries=2)
        np.testing.assert_array_equal(result.prices, expected)
        assert result.failures == ()


class TestBadMarketData:
    """A malformed option is isolated before it poisons the batch."""

    @staticmethod
    def _corrupt_option(value):
        """An Option whose spot bypassed construction validation, the
        way a row deserialised straight from a feed would."""
        from repro.finance import ExerciseStyle, OptionType

        bad = object.__new__(Option)
        fields = dict(spot=value, strike=100.0, rate=0.02, volatility=0.3,
                      maturity=1.0, option_type=OptionType.PUT,
                      exercise=ExerciseStyle.AMERICAN, dividend_yield=0.0)
        for name, field_value in fields.items():
            object.__setattr__(bad, name, field_value)
        return bad

    def test_option_construction_rejects_nan(self):
        with pytest.raises(FinanceError, match="spot must be finite"):
            Option(spot=float("nan"), strike=100.0, rate=0.02,
                   volatility=0.3, maturity=1.0)

    def test_option_arrays_names_offending_index(self):
        from repro.finance import option_arrays

        good = Option(spot=100.0, strike=100.0, rate=0.02,
                      volatility=0.3, maturity=1.0)
        with pytest.raises(FinanceError, match="option 1: spot"):
            option_arrays([good, self._corrupt_option(float("nan")), good])

    @pytest.mark.parametrize("value", (float("nan"), float("inf"), -5.0, 0.0))
    def test_option_arrays_rejects_every_bad_shape(self, value):
        from repro.finance import option_arrays

        with pytest.raises(FinanceError, match="option 0: spot"):
            option_arrays([self._corrupt_option(value)])

    def test_engine_quarantines_bad_option_without_retry_burn(self, batch,
                                                              expected):
        poisoned = list(batch)
        poisoned[4] = self._corrupt_option(float("nan"))
        plan = None
        result = run_with_faults(poisoned, plan, chunk_options=8,
                                 max_retries=3)
        mask = np.ones(len(batch), dtype=bool)
        mask[4] = False
        np.testing.assert_array_equal(result.prices[mask], expected[mask])
        assert np.isnan(result.prices[4])
        (record,) = result.failures
        assert record.index == 4
        assert record.error == "FinanceError"
        assert "spot" in record.message
        # FinanceError is deterministic: quarantine must not burn the
        # retry budget on it (3 retries x 5 bisection levels would)
        assert result.stats.retries == 0

    def test_strict_price_reraises_original_exception(self, batch):
        """price() keeps the pre-reliability exception contract: a
        quarantined option's original error type propagates (the
        implied-vol bracketing probes for FinanceError this way)."""
        poisoned = list(batch)
        poisoned[4] = self._corrupt_option(float("nan"))
        config = EngineConfig(chunk_options=8, **NO_BACKOFF)
        with PricingEngine(kernel="iv_b", config=config) as engine:
            with pytest.raises(FinanceError, match="spot"):
                engine.price(poisoned, STEPS)


class TestTransportFaults:
    def test_queue_transfer_fault_is_deterministic(self, toy_context):
        injector = TransportFaultInjector(seed=SEED, fail_transfers=(1,))
        queue = toy_context.create_queue(fault_injector=injector)
        buf = toy_context.create_buffer(8)
        data = np.arange(8, dtype=np.float64)
        queue.enqueue_write_buffer(buf, data)  # call 0: fine
        with pytest.raises(TransportFaultError) as excinfo:
            queue.enqueue_write_buffer(buf, data * 2.0)  # call 1: injected
        assert excinfo.value.code == "CL_OUT_OF_RESOURCES"
        # the failed transfer left the device untouched
        np.testing.assert_array_equal(buf._host_read(), data)

    def test_queue_launch_fault(self, toy_context):
        injector = TransportFaultInjector(seed=SEED, fail_launches=(0,))
        queue = toy_context.create_queue(fault_injector=injector)

        def noop(wi, data):
            pass

        kernel = toy_context.create_program({"noop": noop}).create_kernel(
            "noop")
        kernel.set_args(toy_context.create_buffer(4))
        with pytest.raises(TransportFaultError):
            queue.enqueue_nd_range_kernel(kernel, 4, 4)

    def test_link_fault_injection(self):
        from repro.devices import link
        from repro.opencl.types import TransferDirection

        pcie = link.PCIeLink(generation=2, lanes=4)
        injector = TransportFaultInjector(seed=SEED, fail_transfers=(0,))
        link.install_fault_injector(injector)
        try:
            with pytest.raises(TransportFaultError):
                pcie.transfer_ns(1024, TransferDirection.HOST_TO_DEVICE)
            # schedule moved on: the next transfer succeeds
            assert pcie.transfer_ns(
                1024, TransferDirection.HOST_TO_DEVICE) > 0
        finally:
            link.clear_fault_injector()
        assert link.installed_fault_injector() is None

    def test_seeded_rate_schedule_replays(self):
        def schedule(seed):
            injector = TransportFaultInjector(seed=seed,
                                              transfer_failure_rate=0.3)
            fired = []
            for call in range(50):
                try:
                    injector.on_transfer(64, "h2d")
                except TransportFaultError:
                    fired.append(call)
            return fired

        assert schedule(SEED + 5) == schedule(SEED + 5)
        assert len(schedule(SEED + 5)) > 0

    def test_retry_call_recovers_transient_transfer_fault(self, toy_context):
        injector = TransportFaultInjector(seed=SEED, fail_transfers=(0,))
        queue = toy_context.create_queue(fault_injector=injector)
        buf = toy_context.create_buffer(8)
        data = np.arange(8, dtype=np.float64)
        retries = []

        event = retry_call(
            lambda: queue.enqueue_write_buffer(buf, data),
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            key="host-write",
            retry_on=(TransportFaultError,),
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert event.end_ns >= 0
        assert retries == [0]
        np.testing.assert_array_equal(buf._host_read(), data)

    def test_retry_call_gives_up_after_budget(self):
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0)

        def always_fails():
            raise TransportFaultError("permanent")

        with pytest.raises(TransportFaultError):
            retry_call(always_fails, policy=policy,
                       retry_on=(TransportFaultError,))


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.05,
                             max_backoff_s=1.0)
        delays = [policy.backoff_s("chunk:0+8", k) for k in range(6)]
        assert delays == [policy.backoff_s("chunk:0+8", k) for k in range(6)]
        assert all(0.0 < d <= 1.0 for d in delays)
        # a different key decorrelates
        assert delays != [policy.backoff_s("chunk:8+8", k) for k in range(6)]

    def test_zero_base_disables_sleeping(self):
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.backoff_s("any", 0) == 0.0

    def test_config_validation(self):
        with pytest.raises(ReproError, match="max_retries"):
            EngineConfig(max_retries=-1)
        with pytest.raises(ReproError, match="chunk_timeout_s"):
            EngineConfig(chunk_timeout_s=0.0)
        with pytest.raises(ReproError, match="backoff_base_s"):
            EngineConfig(backoff_base_s=-0.1)


class TestClampTimeout:
    """Deadline propagation from the serving layer into chunk timeouts."""

    def test_none_deadline_returns_self(self):
        policy = RetryPolicy(chunk_timeout_s=5.0)
        assert policy.clamp_timeout(None) is policy

    def test_deadline_tightens_an_unbounded_policy(self):
        policy = RetryPolicy(chunk_timeout_s=None)
        assert policy.clamp_timeout(0.5).chunk_timeout_s == 0.5

    def test_deadline_tightens_a_looser_timeout(self):
        policy = RetryPolicy(chunk_timeout_s=5.0)
        clamped = policy.clamp_timeout(0.25)
        assert clamped.chunk_timeout_s == 0.25
        # everything else carries over
        assert clamped.max_retries == policy.max_retries
        assert clamped.backoff_base_s == policy.backoff_base_s

    def test_already_tighter_timeout_wins(self):
        policy = RetryPolicy(chunk_timeout_s=0.1)
        assert policy.clamp_timeout(5.0) is policy

    def test_expired_deadline_floors_at_one_millisecond(self):
        policy = RetryPolicy(chunk_timeout_s=None)
        assert policy.clamp_timeout(-3.0).chunk_timeout_s == 1e-3
        assert policy.clamp_timeout(0.0).chunk_timeout_s == 1e-3

    def test_engine_run_applies_the_deadline_per_run(self, batch, expected):
        # deadline_s is a per-run view: one run with a deadline must not
        # leave the clamp behind for the next deadline-less run
        engine = PricingEngine(config=EngineConfig(workers=2,
                                                   chunk_options=8,
                                                   **NO_BACKOFF))
        try:
            bounded = engine.run(batch, STEPS, deadline_s=30.0)
            assert engine._active_policy.chunk_timeout_s == 30.0
            np.testing.assert_array_equal(bounded.prices, expected)
            unbounded = engine.run(batch, STEPS)
            assert (engine._active_policy.chunk_timeout_s
                    == engine._policy.chunk_timeout_s)
            np.testing.assert_array_equal(unbounded.prices, expected)
        finally:
            engine.close()

    def test_hung_chunk_times_out_against_the_deadline(self, batch):
        # the config carries NO chunk_timeout_s: the only bound on this
        # 30s hang is the per-run deadline.  The wedged chunk must be
        # cut off at ~0.2s (counted as a timeout, pool rebuilt) and the
        # retry then heals it — the deadline never holds a flush
        # hostage.  Note chunk_options < len(batch): a single-chunk run
        # takes the serial path, which cannot preempt itself.
        plan = FaultPlan.single(0, FaultKind.HANG, attempts=1,
                                hang_s=30.0, seed=SEED)
        engine = PricingEngine(
            config=EngineConfig(workers=2, chunk_options=8,
                                max_retries=2, backoff_base_s=0.0),
            faults=plan)
        try:
            started = time.monotonic()
            result = engine.run(batch, STEPS, deadline_s=0.2)
            wall = time.monotonic() - started
        finally:
            engine.close()
        assert result.stats.timeouts == 1
        assert result.failures == ()  # the retry healed the hung chunk
        assert wall < 10.0, f"deadline did not bound the hang ({wall:.1f}s)"


class TestCloseDuringFlight:
    """Regression: close() used to block on in-flight chunks and leak
    the worker processes behind them."""

    def test_close_cancels_inflight_run_and_leaks_no_workers(self, batch):
        plan = FaultPlan.single(0, FaultKind.HANG, attempts=ALWAYS,
                                hang_s=30.0, seed=SEED)
        engine = PricingEngine(config=EngineConfig(workers=2, chunk_options=4,
                                                   **NO_BACKOFF),
                               faults=plan)
        errors = []

        def run():
            try:
                engine.run(batch[:16], STEPS)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.8)  # let the pool spin up and the hang start

        start = time.monotonic()
        engine.close()
        close_wall = time.monotonic() - start
        thread.join(timeout=10.0)

        assert close_wall < 5.0, (
            f"close() blocked {close_wall:.1f}s behind a hung chunk")
        assert not thread.is_alive()
        assert errors and isinstance(errors[0], EngineError)
        assert multiprocessing.active_children() == []

    def test_closed_engine_refuses_new_runs_on_every_route(self, batch,
                                                           expected):
        # Reuse-after-close used to differ by route (the serial path
        # silently resurrected the engine, the pool path raced the
        # abandoned pool); both now raise the same EngineError.
        engine = PricingEngine(config=EngineConfig(chunk_options=8,
                                                   **NO_BACKOFF))
        np.testing.assert_array_equal(engine.price(batch, STEPS), expected)
        engine.close()
        engine.close()  # double-close stays a no-op
        with pytest.raises(EngineError, match="closed"):
            engine.price(batch, STEPS)
        with pytest.raises(EngineError, match="closed"):
            engine.run(batch, STEPS)
        with pytest.raises(EngineError, match="closed"):
            engine.run_greeks(batch, STEPS)

        pooled = PricingEngine(config=EngineConfig(workers=2,
                                                   chunk_options=8,
                                                   **NO_BACKOFF))
        pooled.price(batch, STEPS)
        pooled.close()
        with pytest.raises(EngineError, match="closed"):
            pooled.price(batch, STEPS)
