"""StreamRunner: replay determinism, oracle parity, fault healing."""

from dataclasses import replace

import pytest

from repro.engine.faults import FaultPlan
from repro.errors import StreamError
from repro.finance import generate_batch
from repro.obs import keys as obs_keys
from repro.service import PricingService, ServiceConfig
from repro.stream import (
    AGGREGATE_COLUMNS,
    Position,
    PositionBook,
    StreamConfig,
    StreamRunner,
    SyntheticTickSource,
    Tolerance,
    full_repricing_oracle,
)

STEPS = 16
N_INSTRUMENTS = 5
TICK_STEPS = 10
WAIT = 10.0

CONFIG = StreamConfig(kernel="iv_b", backend="numpy", batch_ticks=6)


def _book(tolerances=None):
    options = generate_batch(n_options=N_INSTRUMENTS, seed=77).options
    book = PositionBook(tolerances)
    for index, option in enumerate(options):
        quantity = (index + 1) * (-1.0 if index % 3 == 2 else 1.0)
        book.add(Position(f"ins-{index}", option, quantity=quantity,
                          steps=STEPS))
    return book


def _source(book, n_steps=TICK_STEPS, seed=5):
    initial = {p.instrument_id: (p.option.spot, p.option.volatility,
                                 p.option.rate)
               for p in book.positions()}
    return SyntheticTickSource(initial, seed=seed, n_steps=n_steps)


def _service_config(**overrides):
    kwargs = dict(max_batch=N_INSTRUMENTS, max_wait_ms=0.0, workers=1)
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def _run(tolerances=None, config=CONFIG, service_config=None, seed=5,
         on_aggregate=None):
    book = _book(tolerances)
    with PricingService(service_config or _service_config()) as service:
        runner = StreamRunner(book, service, config=config,
                              on_aggregate=on_aggregate)
        runner.process(_source(book, seed=seed))
    return book, runner


def _fingerprints(updates):
    return [(u.seq, u.ts.hex(), u.repriced,
             {k: v.hex() for k, v in u.columns.items()}, u.pnl.hex())
            for u in updates]


class TestRunnerBasics:
    def test_empty_book_rejected(self):
        with PricingService(_service_config()) as service:
            with pytest.raises(StreamError, match="empty"):
                StreamRunner(PositionBook(), service)

    def test_config_validation(self):
        with pytest.raises(StreamError, match="task"):
            StreamConfig(task="vega-only")
        with pytest.raises(StreamError, match="batch_ticks"):
            StreamConfig(batch_ticks=0)
        with pytest.raises(StreamError, match="reval_timeout_s"):
            StreamConfig(reval_timeout_s=0.0)

    def test_publishes_sequenced_aggregates(self):
        _book_, runner = _run()
        seqs = [u.seq for u in runner.published]
        assert seqs == list(range(1, len(seqs) + 1))
        assert runner.published  # at least the end-of-stream revaluation

    def test_pnl_chains_value_deltas(self):
        _book_, runner = _run()
        assert runner.published[0].pnl == 0.0
        for prev, cur in zip(runner.published, runner.published[1:]):
            assert cur.pnl == cur.value - prev.value

    def test_revalue_with_nothing_dirty_is_noop(self):
        book = _book()
        with PricingService(_service_config()) as service:
            runner = StreamRunner(book, service, config=CONFIG)
            runner.revalue()  # initial whole-book valuation
            published = len(runner.published)
            assert runner.revalue() is None
            assert len(runner.published) == published

    def test_latency_samples_cover_materialised_ticks(self):
        _book_, runner = _run()
        stats = runner.stats()
        covered = stats.ticks - stats.suppressed_ticks
        assert len(runner.latencies) == covered
        assert all(sample >= 0.0 for sample in runner.latencies)


class TestReplayDeterminism:
    def test_two_fresh_runs_are_bitwise_identical(self):
        _b1, first = _run()
        _b2, second = _run()
        assert _fingerprints(first.published) == \
            _fingerprints(second.published)

    def test_different_seed_changes_the_stream(self):
        _b1, first = _run(seed=5)
        _b2, second = _run(seed=6)
        assert _fingerprints(first.published) != \
            _fingerprints(second.published)


class TestOracleParity:
    def test_every_aggregate_matches_oracle_bitwise(self):
        book = _book()
        checked = []

        def verify(update):
            oracle = full_repricing_oracle(book, CONFIG)
            assert tuple(oracle) == AGGREGATE_COLUMNS
            for column in AGGREGATE_COLUMNS:
                assert oracle[column].hex() == update.columns[column].hex()
            checked.append(update.seq)

        with PricingService(_service_config()) as service:
            runner = StreamRunner(book, service, config=CONFIG,
                                  on_aggregate=verify)
            runner.process(_source(book))
        assert checked == [u.seq for u in runner.published]

    @pytest.mark.parametrize("fault_seed", [101, 202, 303])
    def test_parity_holds_under_transient_faults(self, fault_seed):
        _calm_book, calm = _run()
        faults = FaultPlan.random(fault_seed, N_INSTRUMENTS)
        book = _book()

        def verify(update):
            oracle = full_repricing_oracle(book, CONFIG)
            for column in AGGREGATE_COLUMNS:
                assert oracle[column].hex() == update.columns[column].hex()

        with PricingService(_service_config(faults=faults)) as service:
            runner = StreamRunner(book, service, config=CONFIG,
                                  on_aggregate=verify)
            runner.process(_source(book))
        assert _fingerprints(runner.published) == \
            _fingerprints(calm.published)

    def test_price_task_publishes_value_only(self):
        config = StreamConfig(kernel="iv_b", backend="numpy",
                              batch_ticks=6, task="price")
        book, runner = _run(config=config)
        final = runner.published[-1]
        oracle = full_repricing_oracle(book, config)
        assert final.columns["value"].hex() == oracle["value"].hex()
        assert all(final.columns[c] == 0.0
                   for c in AGGREGATE_COLUMNS if c != "value")


class TestToleranceGating:
    TOLERANCES = {field: Tolerance(rel_tol=5e-3)
                  for field in ("spot", "volatility", "rate")}

    def test_suppression_saves_revaluations_and_keeps_parity(self):
        _ungated_book, ungated = _run()
        book = _book(self.TOLERANCES)

        def verify(update):
            # gated aggregates still match the oracle at EFFECTIVE
            # inputs bitwise: suppression defers work, never corrupts
            oracle = full_repricing_oracle(book, CONFIG)
            for column in AGGREGATE_COLUMNS:
                assert oracle[column].hex() == update.columns[column].hex()

        with PricingService(_service_config()) as service:
            runner = StreamRunner(book, service, config=CONFIG,
                                  on_aggregate=verify)
            runner.process(_source(book))
        stats = runner.stats()
        assert stats.suppressed_ticks > 0
        assert stats.revaluations < ungated.stats().revaluations

    def test_published_risk_stays_within_first_order_drift_bound(self):
        # the gate can leave live inputs ahead of the published risk,
        # but only by sub-tolerance moves — so the gap to a live-input
        # oracle is bounded by a greeks-derived first-order estimate
        book = _book(self.TOLERANCES)
        with PricingService(_service_config()) as service:
            runner = StreamRunner(book, service, config=CONFIG)
            runner.process(_source(book))
        published = runner.published[-1].columns["value"]

        for position in book.positions():
            name = position.instrument_id
            live, eff = book.live_inputs(name), book.effective_inputs(name)
            for field in ("spot", "volatility", "rate"):
                gap = abs(live[field] - eff[field])
                assert gap <= self.TOLERANCES[field].rel_tol * \
                    abs(eff[field]) + 1e-12

        # price the live view from scratch and bound the value gap by
        # sum(|q| * (|delta|*dS + |vega|*dVol + |rho|*dRate)) with 4x
        # slack for curvature
        live_book = PositionBook()
        for position in book.positions():
            live_option = replace(position.option,
                                  **book.live_inputs(position.instrument_id))
            live_book.add(replace(position, option=live_option))
        live_oracle = full_repricing_oracle(live_book, CONFIG)

        bound = 0.0
        for position in book.positions():
            name = position.instrument_id
            live, eff = book.live_inputs(name), book.effective_inputs(name)
            values = book._slots[name].values  # per-instrument greeks
            bound += abs(position.quantity) * (
                abs(values["delta"]) * abs(live["spot"] - eff["spot"])
                + abs(values["vega"]) * abs(live["volatility"]
                                            - eff["volatility"])
                + abs(values["rho"]) * abs(live["rate"] - eff["rate"]))
        assert abs(published - live_oracle["value"]) <= 4.0 * bound + 1e-9


class TestStreamStats:
    def test_schema_tag(self):
        assert obs_keys.STREAM_STATS_SCHEMA == "repro-stream-stats/v7"

    def test_as_dict_schema_then_keys_in_order(self):
        _book_, runner = _run()
        snapshot = runner.stats().as_dict()
        assert tuple(snapshot) == ("schema",) + obs_keys.STREAM_STATS_KEYS
        assert snapshot["schema"] == obs_keys.STREAM_STATS_SCHEMA

    def test_stats_to_metric_targets_exist(self):
        from repro.stream import StreamMetrics
        metrics = StreamMetrics()
        for stat, metric in obs_keys.STREAM_STATS_TO_METRIC.items():
            assert stat in obs_keys.STREAM_STATS_KEYS
            assert metrics.registry.get(metric) is not None, metric

    def test_counters_reconcile(self):
        _book_, runner = _run()
        stats = runner.stats()
        assert stats.instruments == N_INSTRUMENTS
        assert stats.aggregates == len(runner.published)
        assert stats.ticks == stats.suppressed_ticks + len(runner.latencies)
        assert stats.revaluations >= stats.reval_batches >= 1
        assert stats.mean_tick_to_risk_s >= 0.0
