"""PositionBook: tolerance-gated dirty marking and stable aggregation."""

import pytest

from repro.errors import StreamError
from repro.finance import ExerciseStyle, Option, OptionType
from repro.stream import (
    AGGREGATE_COLUMNS,
    Position,
    PositionBook,
    Tick,
    Tolerance,
)


def _option(spot=100.0):
    return Option(spot=spot, strike=100.0, rate=0.03, volatility=0.25,
                  maturity=1.0, option_type=OptionType.PUT,
                  exercise=ExerciseStyle.AMERICAN)


def _book(tolerances=None, n=2):
    book = PositionBook(tolerances)
    for index in range(n):
        book.add(Position(f"id-{index}", _option(100.0 + index),
                          quantity=float(index + 1), steps=16))
    return book


def _price_all(book):
    """Commit a dummy valuation for every drained instrument."""
    for name, option, _steps in book.drain_dirty():
        book.commit(name, option, 1.0, {"delta": -0.5, "gamma": 0.02,
                                        "theta": -3.0, "vega": 30.0,
                                        "rho": -40.0})


class TestTolerance:
    def test_zero_tolerance_marks_any_move(self):
        tol = Tolerance()
        assert tol.material(100.0, 100.0 + 1e-12)
        assert not tol.material(100.0, 100.0)

    def test_combined_abs_rel(self):
        tol = Tolerance(abs_tol=0.5, rel_tol=0.01)
        assert not tol.material(100.0, 101.4)   # 1.4 < 0.5 + 1.0
        assert tol.material(100.0, 101.6)

    def test_rejects_negative(self):
        with pytest.raises(StreamError, match="abs_tol"):
            Tolerance(abs_tol=-1.0)

    def test_rejects_unknown_field(self):
        with pytest.raises(StreamError, match="unknown field"):
            PositionBook({"strike": Tolerance()})


class TestPositionValidation:
    def test_empty_id(self):
        with pytest.raises(StreamError, match="non-empty"):
            Position("", _option())

    def test_non_finite_quantity(self):
        with pytest.raises(StreamError, match="quantity"):
            Position("a", _option(), quantity=float("inf"))

    def test_bad_steps(self):
        with pytest.raises(StreamError, match="steps"):
            Position("a", _option(), steps=0)

    def test_duplicate_instrument(self):
        book = _book()
        with pytest.raises(StreamError, match="already in"):
            book.add(Position("id-0", _option()))


class TestDirtyMarking:
    def test_new_positions_start_dirty(self):
        book = _book()
        assert set(book.dirty_ids()) == {"id-0", "id-1"}

    def test_tick_while_dirty_is_pending(self):
        book = _book()
        assert book.apply(Tick("id-0", "spot", 101.0, 0.001)) == "pending"

    def test_unknown_instrument_rejected(self):
        with pytest.raises(StreamError, match="unknown instrument"):
            _book().apply(Tick("ghost", "spot", 1.0, 0.0))

    def test_drain_clears_and_snapshots_live(self):
        book = _book(n=1)
        book.apply(Tick("id-0", "spot", 123.0, 0.001))
        drained = book.drain_dirty()
        assert len(drained) == 1
        name, option, steps = drained[0]
        assert (name, steps) == ("id-0", 16)
        assert option.spot == 123.0
        assert book.dirty_ids() == ()
        assert book.drain_dirty() == []

    def test_material_move_marks_clean_instrument(self):
        book = _book(n=1)
        _price_all(book)
        assert book.apply(Tick("id-0", "spot", 105.0, 0.001)) == "marked"
        assert book.dirty_ids() == ("id-0",)

    def test_within_tolerance_is_suppressed(self):
        book = _book({"spot": Tolerance(rel_tol=0.01)}, n=1)
        _price_all(book)
        assert book.apply(Tick("id-0", "spot", 100.5, 0.001)) == "suppressed"
        assert book.dirty_ids() == ()
        # the live view still moved even though nothing is owed
        assert book.live_inputs("id-0")["spot"] == 100.5
        assert book.effective_inputs("id-0")["spot"] == 100.0

    def test_cumulative_drift_cannot_hide_below_the_gate(self):
        # each move is sub-tolerance vs its predecessor, but the gate
        # compares against the EFFECTIVE value, so drift accumulates
        book = _book({"spot": Tolerance(rel_tol=0.01)}, n=1)
        _price_all(book)
        assert book.apply(Tick("id-0", "spot", 100.6, 0.001)) == "suppressed"
        assert book.apply(Tick("id-0", "spot", 101.2, 0.002)) == "marked"


class TestCommitAndAggregate:
    def test_commit_promotes_effective(self):
        book = _book(n=1)
        book.apply(Tick("id-0", "spot", 111.0, 0.001))
        name, option, _steps = book.drain_dirty()[0]
        book.commit(name, option, 2.5)
        assert book.effective_inputs("id-0")["spot"] == 111.0
        assert book.effective_option("id-0").spot == 111.0

    def test_commit_unknown_instrument(self):
        with pytest.raises(StreamError, match="unknown instrument"):
            _book().commit("ghost", _option(), 1.0)

    def test_aggregate_before_pricing_raises(self):
        with pytest.raises(StreamError, match="never priced"):
            _book().aggregate()

    def test_aggregate_is_quantity_weighted(self):
        book = _book()  # quantities 1.0 and 2.0
        _price_all(book)
        out = book.aggregate()
        assert tuple(out) == AGGREGATE_COLUMNS
        assert out["value"] == pytest.approx(3.0)       # 1*1 + 2*1
        assert out["delta"] == pytest.approx(-1.5)      # 3 * -0.5

    def test_price_only_commit_zeroes_greeks(self):
        book = _book(n=1)
        name, option, _steps = book.drain_dirty()[0]
        book.commit(name, option, 4.0, greeks=None)
        out = book.aggregate()
        assert out["value"] == 4.0
        assert all(out[column] == 0.0
                   for column in AGGREGATE_COLUMNS if column != "value")

    def test_aggregation_is_bitwise_repeatable(self):
        book = _book(n=3)
        _price_all(book)
        first = {k: v.hex() for k, v in book.aggregate().items()}
        second = {k: v.hex() for k, v in book.aggregate().items()}
        assert first == second
