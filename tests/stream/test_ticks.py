"""Tick model, recorded replay files, and synthetic determinism."""

import pytest

from repro.errors import StreamError
from repro.stream import (
    TICK_FIELDS,
    TICKS_SCHEMA,
    ReplayTickSource,
    SyntheticTickSource,
    Tick,
    read_ticks,
    write_ticks,
)


def _source(n_steps=5, seed=7):
    initial = {"a": (100.0, 0.25, 0.03), "b": (80.0, 0.4, 0.01)}
    return SyntheticTickSource(initial, seed=seed, n_steps=n_steps)


class TestTickValidation:
    def test_valid_fields_only(self):
        with pytest.raises(StreamError, match="unknown tick field"):
            Tick("a", "strike", 100.0, 0.0)

    def test_value_must_be_finite(self):
        with pytest.raises(StreamError, match="finite"):
            Tick("a", "spot", float("nan"), 0.0)

    @pytest.mark.parametrize("field", ["spot", "volatility"])
    def test_positive_fields_reject_zero(self, field):
        with pytest.raises(StreamError, match="must be > 0"):
            Tick("a", field, 0.0, 0.0)

    def test_rate_may_be_negative(self):
        assert Tick("a", "rate", -0.01, 0.0).value == -0.01

    def test_ts_must_be_non_negative(self):
        with pytest.raises(StreamError, match="ts"):
            Tick("a", "spot", 100.0, -1.0)

    def test_fields_are_market_inputs(self):
        assert TICK_FIELDS == ("spot", "volatility", "rate")


class TestTickFile:
    def test_round_trip_is_bitwise(self, tmp_path):
        ticks = list(_source())
        path = write_ticks(tmp_path / "ticks.jsonl", ticks)
        loaded = read_ticks(path)
        assert loaded == tuple(ticks)
        # bitwise, not just ==: hex round-trip preserves every ULP
        for orig, back in zip(ticks, loaded):
            assert float(orig.value).hex() == float(back.value).hex()
            assert float(orig.ts).hex() == float(back.ts).hex()

    def test_replay_source_matches_file(self, tmp_path):
        ticks = tuple(_source())
        path = write_ticks(tmp_path / "ticks.jsonl", ticks)
        replay = ReplayTickSource(path)
        assert len(replay) == len(ticks)
        assert tuple(replay) == ticks
        assert tuple(replay) == ticks  # re-iterable

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError, match="cannot read tick file"):
            read_ticks(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(StreamError, match="empty"):
            read_ticks(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"schema": "repro-ticks/v0"}\n')
        with pytest.raises(StreamError, match="declares schema"):
            read_ticks(path)

    def test_malformed_line_is_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"schema": "%s"}\n{"i": "a", "f": "spot"}\n' % TICKS_SCHEMA)
        with pytest.raises(StreamError, match="line 2"):
            read_ticks(path)


class TestSyntheticSource:
    def test_same_seed_same_stream_bitwise(self):
        first = [(t.instrument_id, t.field, t.value.hex(), t.ts.hex())
                 for t in _source(seed=11)]
        second = [(t.instrument_id, t.field, t.value.hex(), t.ts.hex())
                  for t in _source(seed=11)]
        assert first == second

    def test_reiterating_one_source_is_identical(self):
        source = _source(seed=3)
        assert ([t.value.hex() for t in source]
                == [t.value.hex() for t in source])

    def test_different_seeds_differ(self):
        a = [t.value for t in _source(seed=1)]
        b = [t.value for t in _source(seed=2)]
        assert a != b

    def test_len_counts_exactly(self):
        # 20 steps, 2 instruments: vol ticks every 7, rate every 13
        source = _source(n_steps=20)
        assert len(source) == len(list(source))

    def test_emits_vol_and_rate_ticks(self):
        fields = {t.field for t in _source(n_steps=15)}
        assert fields == {"spot", "volatility", "rate"}

    def test_ts_non_decreasing(self):
        times = [t.ts for t in _source(n_steps=10)]
        assert times == sorted(times)

    def test_values_stay_valid(self):
        for tick in _source(n_steps=30, seed=99):
            Tick(tick.instrument_id, tick.field, tick.value, tick.ts)

    def test_rejects_empty_initial(self):
        with pytest.raises(StreamError, match="at least one"):
            SyntheticTickSource({}, seed=1, n_steps=1)

    def test_rejects_bad_dt(self):
        with pytest.raises(StreamError, match="dt"):
            SyntheticTickSource({"a": (1.0, 0.2, 0.0)}, seed=1,
                                n_steps=1, dt=0.0)
