"""Smoke tests: the fast example scripts must run end to end.

(The slower, minute-scale examples — platform_comparison,
accuracy_study, pricing_methods — exercise exactly the code paths the
benchmark suite already runs at full size, so they are not duplicated
here.)
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart",
    "kernel_dataflow_trace",
    "design_space_exploration",
    "trading_day",
    "batched_engine",
    "fault_tolerance",
    "observability",
    "greeks_study",
    "pricing_service",
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report, not a stub


def test_quickstart_content(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "Reference binomial" in out
    assert "Fitter Summary" in out
    assert "options/s" in out


def test_trace_example_shows_both_kernels(capsys):
    load_example("kernel_dataflow_trace").main()
    out = capsys.readouterr().out
    assert "Kernel IV.A" in out and "Kernel IV.B" in out
    assert "matching prices" in out


def test_every_example_file_has_main():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source, path.name
        assert "def main(" in source, path.name
