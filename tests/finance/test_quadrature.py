"""Unit tests for the QUAD-style pricer (Jin et al. [12]'s favourite)."""

import pytest

from repro.errors import FinanceError
from repro.finance import bs_price, price_binomial
from repro.finance.quadrature import price_quadrature


class TestEuropean:
    def test_matches_black_scholes(self, euro_put):
        value = price_quadrature(euro_put, exercise_dates=16,
                                 grid_points=1025)
        assert value == pytest.approx(bs_price(euro_put), abs=5e-4)

    def test_second_order_grid_convergence(self, euro_put):
        analytic = bs_price(euro_put)
        coarse = abs(price_quadrature(euro_put, 16, 257) - analytic)
        fine = abs(price_quadrature(euro_put, 16, 513) - analytic)
        # halving dx should cut the error by ~4 (trapezoid, kink on node)
        assert coarse / fine == pytest.approx(4.0, rel=0.5)

    def test_insensitive_to_date_count_for_european(self, euro_put):
        few = price_quadrature(euro_put, exercise_dates=4, grid_points=513)
        many = price_quadrature(euro_put, exercise_dates=32, grid_points=513)
        assert few == pytest.approx(many, abs=2e-3)


class TestAmerican:
    def test_approaches_binomial_reference(self, put_option):
        reference = price_binomial(put_option, 8192).price
        value = price_quadrature(put_option, exercise_dates=128,
                                 grid_points=1025)
        # Bermudan gap ~O(1/dates): within ~0.1% at 128 dates
        assert value == pytest.approx(reference, rel=2e-3)

    def test_bermudan_increases_with_dates(self, put_option):
        """More exercise rights never lower the value."""
        few = price_quadrature(put_option, exercise_dates=8,
                               grid_points=513)
        many = price_quadrature(put_option, exercise_dates=64,
                                grid_points=513)
        assert many >= few - 1e-9

    def test_american_above_european(self, put_option):
        amer = price_quadrature(put_option, 64, 513)
        euro = price_quadrature(put_option.as_european(), 64, 513)
        assert amer > euro

    def test_call_no_dividend_equals_european(self, call_option):
        amer = price_quadrature(call_option, 64, 513)
        analytic = bs_price(call_option.as_european())
        assert amer == pytest.approx(analytic, abs=5e-3)


class TestValidation:
    def test_parameter_checks(self, put_option):
        with pytest.raises(FinanceError):
            price_quadrature(put_option, exercise_dates=0)
        with pytest.raises(FinanceError):
            price_quadrature(put_option, grid_points=4)
        with pytest.raises(FinanceError):
            price_quadrature(put_option, grid_width_stds=1.0)

    def test_unresolved_kernel_detected(self, put_option):
        """Too many dates on too coarse a grid must refuse, not return
        garbage (the kernel becomes narrower than the grid spacing)."""
        with pytest.raises(FinanceError, match="resolve"):
            price_quadrature(put_option, exercise_dates=2048,
                             grid_points=65)
