"""Property-based tests (hypothesis) for the pricing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finance import (
    ExerciseStyle,
    LatticeFamily,
    Option,
    OptionType,
    bs_price,
    build_lattice_params,
    price_binomial,
    price_binomial_scalar,
)

# Parameter domains chosen so every CRR lattice at >= 8 steps is valid
# (sigma * sqrt(dt) > |r - q| * dt holds comfortably).
spots = st.floats(min_value=10.0, max_value=500.0)
strikes = st.floats(min_value=10.0, max_value=500.0)
rates = st.floats(min_value=0.0, max_value=0.10)
vols = st.floats(min_value=0.05, max_value=0.9)
maturities = st.floats(min_value=0.05, max_value=3.0)
option_types = st.sampled_from([OptionType.CALL, OptionType.PUT])


def make_option(spot, strike, rate, vol, maturity, option_type,
                exercise=ExerciseStyle.AMERICAN):
    return Option(spot=spot, strike=strike, rate=rate, volatility=vol,
                  maturity=maturity, option_type=option_type,
                  exercise=exercise)


@settings(max_examples=60, deadline=None)
@given(spots, strikes, rates, vols, maturities, option_types)
def test_price_bounded_between_intrinsic_and_underlying(
        spot, strike, rate, vol, maturity, option_type):
    """No-arbitrage bounds: intrinsic <= V <= S (call) / K (put)."""
    option = make_option(spot, strike, rate, vol, maturity, option_type)
    price = price_binomial(option, 64).price
    assert price >= option.intrinsic() - 1e-9 * max(spot, strike)
    upper = spot if option.is_call else strike
    assert price <= upper * (1.0 + 1e-12)


@settings(max_examples=60, deadline=None)
@given(spots, strikes, rates, vols, maturities, option_types)
def test_american_dominates_european(spot, strike, rate, vol, maturity,
                                     option_type):
    option = make_option(spot, strike, rate, vol, maturity, option_type)
    amer = price_binomial(option, 48).price
    euro = price_binomial(option.as_european(), 48).price
    assert amer >= euro - 1e-9 * max(spot, strike)


@settings(max_examples=40, deadline=None)
@given(spots, strikes, rates, vols, maturities, option_types,
       st.integers(min_value=8, max_value=40))
def test_vectorised_matches_scalar_everywhere(spot, strike, rate, vol,
                                              maturity, option_type, steps):
    """The numpy pricer IS the loop pricer, over the whole domain."""
    import math

    from hypothesis import assume

    assume(vol > rate * math.sqrt(maturity / steps) * 1.05)  # CRR validity
    option = make_option(spot, strike, rate, vol, maturity, option_type)
    vec = price_binomial(option, steps).price
    scalar = price_binomial_scalar(option, steps).price
    assert np.isclose(vec, scalar, rtol=1e-12, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(spots, strikes, rates, vols, maturities, option_types)
def test_vol_monotonicity(spot, strike, rate, vol, maturity, option_type):
    """American option values never decrease with volatility."""
    option = make_option(spot, strike, rate, vol, maturity, option_type)
    bumped = option.with_volatility(vol + 0.05)
    low = price_binomial(option, 48).price
    high = price_binomial(bumped, 48).price
    assert high >= low - 1e-9 * max(spot, strike)


@settings(max_examples=30, deadline=None)
@given(spots, strikes, rates, vols,
       st.floats(min_value=0.2, max_value=2.0))
def test_european_binomial_tracks_black_scholes(spot, strike, rate, vol,
                                                maturity):
    """At N=512 the CRR error is well under 1% of spot for all params."""
    option = make_option(spot, strike, rate, vol, maturity, OptionType.PUT,
                         ExerciseStyle.EUROPEAN)
    lattice = price_binomial(option, 512).price
    analytic = bs_price(option)
    assert abs(lattice - analytic) < 0.01 * spot


@settings(max_examples=40, deadline=None)
@given(spots, rates, vols, maturities,
       st.integers(min_value=4, max_value=128))
def test_crr_lattice_invariants(spot, rate, vol, maturity, steps):
    """u*d = 1, martingale condition, p in (0,1) across the domain."""
    import math

    from hypothesis import assume

    # CRR validity: sigma*sqrt(dt) must exceed the drift r*dt, i.e.
    # sigma > r*sqrt(T/N); outside it the lattice (correctly) rejects.
    assume(vol > rate * math.sqrt(maturity / steps) * 1.05)
    option = make_option(spot, spot, rate, vol, maturity, OptionType.CALL)
    params = build_lattice_params(option, steps)
    assert np.isclose(params.up * params.down, 1.0, rtol=1e-12)
    growth = np.exp(rate * maturity / steps)
    expectation = params.p_up * params.up + params.p_down * params.down
    assert np.isclose(expectation, growth, rtol=1e-12)
    assert 0.0 < params.p_up < 1.0


@settings(max_examples=20, deadline=None)
@given(spots, strikes, rates, vols, maturities)
def test_lattice_families_agree_at_high_n(spot, strike, rate, vol, maturity):
    """All three parameterisations converge to the same value."""
    option = make_option(spot, strike, rate, vol, maturity, OptionType.PUT,
                         ExerciseStyle.EUROPEAN)
    crr = price_binomial(option, 768, LatticeFamily.CRR).price
    jr = price_binomial(option, 768, LatticeFamily.JARROW_RUDD).price
    tian = price_binomial(option, 768, LatticeFamily.TIAN).price
    tolerance = max(0.01 * spot, 1e-6)
    assert abs(crr - jr) < tolerance
    assert abs(crr - tian) < tolerance
