"""Unit tests for the reference binomial pricers."""

import numpy as np
import pytest

from repro.api import price
from repro.errors import FinanceError
from repro.finance import (
    ExerciseStyle,
    LatticeFamily,
    Option,
    OptionType,
    bs_price,
    exercise_boundary,
    price_binomial,
    price_binomial_scalar,
)


class TestAgainstScalarReference:
    @pytest.mark.parametrize("steps", [2, 3, 16, 101])
    def test_vectorised_equals_scalar(self, put_option, steps):
        vec = price_binomial(put_option, steps).price
        scalar = price_binomial_scalar(put_option, steps).price
        assert vec == pytest.approx(scalar, rel=1e-14)

    def test_call_matches_scalar(self, call_option):
        assert price_binomial(call_option, 64).price == pytest.approx(
            price_binomial_scalar(call_option, 64).price, rel=1e-14)

    def test_european_matches_scalar(self, euro_put):
        assert price_binomial(euro_put, 50).price == pytest.approx(
            price_binomial_scalar(euro_put, 50).price, rel=1e-14)


class TestConvergenceToBlackScholes:
    def test_european_put_converges(self, euro_put):
        analytic = bs_price(euro_put)
        coarse = abs(price_binomial(euro_put, 64).price - analytic)
        fine = abs(price_binomial(euro_put, 2048).price - analytic)
        assert fine < coarse
        assert fine < 5e-3

    def test_european_call_converges(self, call_option):
        euro = call_option.as_european()
        assert price_binomial(euro, 4096).price == pytest.approx(
            bs_price(euro), abs=2e-3)

    @pytest.mark.parametrize("family", list(LatticeFamily))
    def test_all_families_converge(self, euro_put, family):
        price = price_binomial(euro_put, 2048, family).price
        assert price == pytest.approx(bs_price(euro_put), abs=1e-2)


class TestFinancialInvariants:
    def test_american_at_least_european(self, put_option):
        amer = price_binomial(put_option, 256).price
        euro = price_binomial(put_option.as_european(), 256).price
        assert amer >= euro - 1e-12

    def test_american_put_strictly_above_european_deep_itm(self):
        option = Option(spot=60, strike=100, rate=0.08, volatility=0.2,
                        maturity=1.0, option_type=OptionType.PUT)
        amer = price_binomial(option, 256).price
        euro = price_binomial(option.as_european(), 256).price
        assert amer > euro + 0.1

    def test_american_call_no_dividend_equals_european(self, call_option):
        amer = price_binomial(call_option, 512).price
        euro = price_binomial(call_option.as_european(), 512).price
        assert amer == pytest.approx(euro, rel=1e-12)

    def test_price_at_least_intrinsic(self):
        option = Option(spot=70, strike=100, rate=0.05, volatility=0.3,
                        maturity=1.0, option_type=OptionType.PUT)
        assert price_binomial(option, 128).price >= option.intrinsic() - 1e-12

    def test_put_price_below_strike(self, put_option):
        assert price_binomial(put_option, 128).price < put_option.strike

    def test_call_price_below_spot(self, call_option):
        assert price_binomial(call_option, 128).price < call_option.spot

    def test_monotone_in_volatility(self, put_option):
        low = price_binomial(put_option.with_volatility(0.1), 128).price
        high = price_binomial(put_option.with_volatility(0.5), 128).price
        assert high > low

    def test_put_monotone_increasing_in_strike(self, put_option):
        low = price_binomial(put_option.with_strike(90.0), 128).price
        high = price_binomial(put_option.with_strike(110.0), 128).price
        assert high > low

    def test_european_put_call_parity(self):
        base = dict(spot=100.0, strike=105.0, rate=0.03, volatility=0.25,
                    maturity=1.0, exercise=ExerciseStyle.EUROPEAN)
        call = price_binomial(Option(option_type=OptionType.CALL, **base), 2048).price
        put = price_binomial(Option(option_type=OptionType.PUT, **base), 2048).price
        parity = 100.0 - 105.0 * np.exp(-0.03)
        assert call - put == pytest.approx(parity, abs=1e-3)


class TestResultMetadata:
    def test_tree_nodes_counted(self, put_option):
        result = price_binomial(put_option, 64)
        assert result.tree_nodes == 64 * 65 // 2 + 65

    def test_params_attached(self, put_option):
        result = price_binomial(put_option, 64)
        assert result.params.steps == 64

    def test_invalid_steps_raise(self, put_option):
        with pytest.raises(FinanceError):
            price_binomial(put_option, 0)
        with pytest.raises(FinanceError):
            price_binomial_scalar(put_option, -3)


class TestPrecision:
    def test_single_precision_close_but_not_equal(self, put_option):
        double = price_binomial(put_option, 512, dtype=np.float64).price
        single = price_binomial(put_option, 512, dtype=np.float32).price
        assert single == pytest.approx(double, abs=0.05)
        assert single != double

    def test_single_precision_error_order(self, small_batch):
        """Table II: the single-precision reference shows RMSE ~1e-3."""
        double = price(small_batch, steps=512, kernel="reference").prices
        single = price(small_batch, steps=512, kernel="reference",
                       precision="single").prices
        err = np.sqrt(np.mean((double - single) ** 2))
        assert 1e-5 < err < 1e-1


class TestBatch:
    def test_batch_matches_individual(self, small_batch):
        batch = price(small_batch, steps=64, kernel="reference").prices
        individual = [price_binomial(o, 64).price for o in small_batch]
        assert np.allclose(batch, individual, rtol=0, atol=0)

    def test_batch_shape(self, small_batch):
        shape = price(small_batch, steps=16, kernel="reference").prices.shape
        assert shape == (5,)


class TestExerciseBoundary:
    def test_put_boundary_below_strike_and_positive(self, put_option):
        boundary = exercise_boundary(put_option, 128)
        finite = boundary[np.isfinite(boundary)]
        assert len(finite) > 10
        assert np.all(finite <= put_option.strike + 1e-9)
        assert np.all(finite > 0)

    def test_boundary_at_expiry_is_strike(self, put_option):
        boundary = exercise_boundary(put_option, 64)
        assert boundary[-1] == pytest.approx(put_option.strike)

    def test_european_rejected(self, euro_put):
        with pytest.raises(FinanceError):
            exercise_boundary(euro_put, 32)

    def test_no_dividend_call_never_exercised(self, call_option):
        boundary = exercise_boundary(call_option, 64)
        # interior steps should show no early exercise for a no-div call
        assert np.isnan(boundary[:-1]).all()
