"""Unit tests for the implied-volatility solvers."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, FinanceError
from repro.finance import (
    bs_price,
    generate_curve_scenario,
    implied_vol_bisection,
    implied_vol_brent,
    implied_vol_curve,
    implied_vol_newton,
    implied_volatility,
    price_binomial,
)

STEPS = 128  # keep lattice solves quick


class TestRoundTrips:
    """Solve for the vol that produced a known price."""

    def test_bisection_american(self, put_option):
        target = price_binomial(put_option, STEPS).price
        vol = implied_vol_bisection(put_option, target, steps=STEPS, tol=1e-10)
        assert vol == pytest.approx(put_option.volatility, abs=1e-5)

    def test_brent_american(self, put_option):
        target = price_binomial(put_option, STEPS).price
        vol = implied_vol_brent(put_option, target, steps=STEPS)
        assert vol == pytest.approx(put_option.volatility, abs=1e-7)

    def test_newton_european(self, euro_put):
        target = bs_price(euro_put)
        vol = implied_vol_newton(euro_put, target)
        assert vol == pytest.approx(euro_put.volatility, abs=1e-8)

    def test_auto_dispatch_european(self, euro_put):
        vol = implied_volatility(euro_put, bs_price(euro_put))
        assert vol == pytest.approx(euro_put.volatility, abs=1e-8)

    def test_auto_dispatch_american(self, put_option):
        target = price_binomial(put_option, STEPS).price
        vol = implied_volatility(put_option, target, steps=STEPS)
        assert vol == pytest.approx(put_option.volatility, abs=1e-6)

    @pytest.mark.parametrize("true_vol", [0.08, 0.25, 0.9])
    def test_brent_across_vol_range(self, put_option, true_vol):
        option = put_option.with_volatility(true_vol)
        target = price_binomial(option, STEPS).price
        vol = implied_vol_brent(put_option, target, steps=STEPS)
        assert vol == pytest.approx(true_vol, abs=1e-6)


class TestCustomEngine:
    def test_price_fn_used(self, euro_put):
        calls = []

        def engine(option):
            calls.append(option.volatility)
            return bs_price(option)

        vol = implied_vol_brent(euro_put, bs_price(euro_put), price_fn=engine)
        assert vol == pytest.approx(euro_put.volatility, abs=1e-7)
        assert len(calls) > 2


class TestErrorHandling:
    def test_arbitrage_price_rejected(self, put_option):
        deep_itm = put_option.with_strike(200.0)
        with pytest.raises(FinanceError, match="intrinsic"):
            implied_volatility(deep_itm, deep_itm.intrinsic() - 5.0,
                               method="brent", steps=STEPS)

    def test_nonpositive_price_rejected(self, put_option):
        with pytest.raises(FinanceError):
            implied_volatility(put_option, 0.0, steps=STEPS)
        with pytest.raises(FinanceError):
            implied_volatility(put_option, -1.0, steps=STEPS)

    def test_unknown_method(self, put_option):
        with pytest.raises(FinanceError, match="unknown"):
            implied_volatility(put_option, 5.0, method="gradient-descent")

    def test_newton_rejects_american(self, put_option):
        with pytest.raises(FinanceError):
            implied_vol_newton(put_option, 5.0)

    def test_newton_rejects_custom_engine(self, euro_put):
        with pytest.raises(FinanceError):
            implied_volatility(euro_put, 5.0, method="newton",
                               price_fn=lambda o: 1.0)

    def test_unbracketable_price_raises(self, euro_put):
        # price above the spot can never be reached by any volatility
        with pytest.raises(ConvergenceError):
            implied_vol_bisection(euro_put, euro_put.spot * 2.0)


class TestCurve:
    def test_curve_recovers_smile(self):
        scenario = generate_curve_scenario(n_strikes=5, steps=STEPS,
                                           pricing_steps=STEPS)
        points = implied_vol_curve(scenario.base_option, scenario.strikes,
                                   scenario.market_prices, steps=STEPS)
        recovered = np.array([p.implied_vol for p in points])
        assert np.allclose(recovered, scenario.true_vols, atol=1e-6)

    def test_curve_counts_evaluations(self):
        scenario = generate_curve_scenario(n_strikes=3, steps=STEPS,
                                           pricing_steps=STEPS)
        points = implied_vol_curve(scenario.base_option, scenario.strikes,
                                   scenario.market_prices, steps=STEPS)
        assert all(p.evaluations > 2 for p in points)

    def test_length_mismatch(self, put_option):
        with pytest.raises(FinanceError):
            implied_vol_curve(put_option, [90.0, 100.0], [5.0])
