"""Cross-family lattice parity: CRR, Jarrow-Rudd and Tian agree with
an independent exact-per-level reference.

The regression these tests pin down: every backward loop used to roll
node spots with ``prices[:t+1] * down`` — the paper's Equation (1) —
which is only correct under the CRR construction ``d = 1/u``.  For
Jarrow-Rudd and Tian (where ``u * d != 1``) the roll drifted the spot
grid by ``(u*d)**k`` per level, silently corrupting every American
early-exercise comparison.  The family-correct roll is
``prices[:t+1] / u`` (``LatticeParams.pulldown``), which is bitwise
equal to ``down`` under CRR, so the fix cannot move a CRR golden.

The reference below never rolls: it rebuilds the exact node spots
``S * u**(t-k) * d**k`` from scratch at every level, so it has no
accumulated drift by construction and is independent of the code
under test.
"""

import numpy as np
import pytest

import repro
from repro.core.batch_sim import simulate_kernel_a_batch
from repro.finance import price_binomial
from repro.finance.binomial import price_binomial_scalar
from repro.finance.lattice import LatticeFamily, build_lattice_params

STEPS = 512
TOL = 1e-10

FAMILIES = (LatticeFamily.CRR, LatticeFamily.JARROW_RUDD, LatticeFamily.TIAN)


def exact_per_level_price(option, steps, family):
    """American/European binomial price with drift-free node spots.

    Rebuilds ``S[t, k] = S * u**(t-k) * d**k`` exactly at every level
    instead of rolling the previous level's spots — immune by
    construction to the CRR-only ``* down`` drift bug.
    """
    params = build_lattice_params(option, steps, family)
    sign = option.option_type.sign
    rp = params.discounted_p_up
    rq = params.discounted_p_down

    k = np.arange(steps + 1, dtype=np.float64)
    spots = option.spot * params.up ** (steps - k) * params.down**k
    values = np.maximum(sign * (spots - option.strike), 0.0)

    for t in range(steps - 1, -1, -1):
        values = rp * values[: t + 1] + rq * values[1 : t + 2]
        if option.is_american:
            k = np.arange(t + 1, dtype=np.float64)
            spots = option.spot * params.up ** (t - k) * params.down**k
            values = np.maximum(values, sign * (spots - option.strike))
    return float(values[0])


@pytest.fixture(params=["put_option", "call_option", "euro_put"])
def contract(request):
    return request.getfixturevalue(request.param)


@pytest.fixture(params=["put_option", "call_option"])
def american_contract(request):
    """The accelerator kernels always price American exercise (the
    paper's designs apply the early-exercise floor unconditionally),
    so their parity checks use American contracts only."""
    return request.getfixturevalue(request.param)


class TestFamilyParity:
    """Every pricing path, every family, vs the drift-free reference."""

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.value)
    def test_price_binomial(self, contract, family):
        expected = exact_per_level_price(contract, STEPS, family)
        got = price_binomial(contract, STEPS, family).price
        assert abs(got - expected) <= TOL

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.value)
    def test_price_binomial_scalar(self, contract, family):
        expected = exact_per_level_price(contract, STEPS, family)
        got = price_binomial_scalar(contract, STEPS, family).price
        assert abs(got - expected) <= TOL

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.value)
    def test_kernel_a_batch(self, american_contract, family):
        expected = exact_per_level_price(american_contract, STEPS, family)
        got = simulate_kernel_a_batch([american_contract], STEPS,
                                      family=family)[0]
        assert abs(got - expected) <= TOL

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.value)
    @pytest.mark.parametrize("kernel", ("iv_a", "reference"))
    def test_engine_route(self, american_contract, family, kernel):
        expected = exact_per_level_price(american_contract, STEPS, family)
        got = repro.price([american_contract], steps=STEPS, kernel=kernel,
                          family=family).prices[0]
        assert abs(got - expected) <= TOL

    def test_engine_iv_b_crr(self, american_contract):
        expected = exact_per_level_price(american_contract, STEPS,
                                         LatticeFamily.CRR)
        got = repro.price([american_contract], steps=STEPS,
                          kernel="iv_b").prices[0]
        assert abs(got - expected) <= TOL


class TestCRRBitIdentity:
    """The fix must not move a single CRR bit: d is constructed as 1/u,
    so ``pulldown`` (1/u) and ``down`` are the same float64."""

    def test_pulldown_equals_down_under_crr(self, put_option):
        params = build_lattice_params(put_option, STEPS, LatticeFamily.CRR)
        assert params.pulldown == params.down  # bitwise: both are 1/u

    def test_pulldown_differs_for_drifted_families(self, put_option):
        for family in (LatticeFamily.JARROW_RUDD, LatticeFamily.TIAN):
            params = build_lattice_params(put_option, STEPS, family)
            assert params.pulldown != params.down
            assert params.up * params.down != pytest.approx(1.0, abs=1e-12)


class TestKernelBFamilyGate:
    """Kernel IV.B's device-side leaf build uses u**(N-2k), which bakes
    in the CRR recombination — it must refuse other families up front
    rather than return drifted prices."""

    def test_build_params_b_rejects_non_crr(self, small_batch):
        from repro.core.kernel_b import build_params_b
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="CRR"):
            build_params_b(small_batch, 64, LatticeFamily.JARROW_RUDD)

    def test_batch_simulator_rejects_non_crr(self, small_batch):
        from repro.core.batch_sim import simulate_kernel_b_batch
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="CRR"):
            simulate_kernel_b_batch(small_batch, 64,
                                    family=LatticeFamily.TIAN)

    def test_engine_rejects_non_crr_iv_b(self):
        from repro.engine import PricingEngine
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="CRR"):
            PricingEngine(kernel="iv_b", family=LatticeFamily.JARROW_RUDD)
