"""Unit tests for lattice greeks."""

import pytest

from repro.errors import FinanceError
from repro.finance import bs_greeks, lattice_greeks, price_binomial


class TestLatticeGreeks:
    def test_price_matches_pricer(self, put_option):
        greeks = lattice_greeks(put_option, steps=256)
        assert greeks.price == pytest.approx(
            price_binomial(put_option, 256).price, rel=1e-12)

    def test_european_matches_analytic(self, euro_put):
        greeks = lattice_greeks(euro_put, steps=2048)
        analytic = bs_greeks(euro_put)
        assert greeks.delta == pytest.approx(analytic.delta, abs=5e-3)
        assert greeks.gamma == pytest.approx(analytic.gamma, abs=5e-3)
        assert greeks.vega == pytest.approx(analytic.vega, rel=5e-2)
        assert greeks.rho == pytest.approx(analytic.rho, rel=5e-2)
        assert greeks.theta == pytest.approx(analytic.theta, rel=0.1)

    def test_put_delta_negative(self, put_option):
        assert -1.0 < lattice_greeks(put_option, 128).delta < 0.0

    def test_call_delta_positive(self, call_option):
        assert 0.0 < lattice_greeks(call_option, 128).delta < 1.0

    def test_gamma_positive(self, put_option):
        assert lattice_greeks(put_option, 128).gamma > 0.0

    def test_vega_positive(self, put_option):
        assert lattice_greeks(put_option, 128).vega > 0.0

    def test_too_few_steps_rejected(self, put_option):
        with pytest.raises(FinanceError):
            lattice_greeks(put_option, steps=2)


class TestLevelCapture:
    """tree_value_levels + greeks_from_levels — the shared formulas the
    batched engine path composes from."""

    def test_levels_shapes_and_root(self, put_option):
        from repro.finance.greeks import tree_value_levels
        price, level1, level2, params = tree_value_levels(
            put_option, 64, params_family(put_option))
        assert level1.shape == (2,)
        assert level2.shape == (3,)
        assert price == pytest.approx(
            price_binomial(put_option, 64).price, rel=1e-12)

    def test_greeks_from_levels_matches_scalar(self, put_option):
        from repro.finance.greeks import (
            greeks_from_levels,
            tree_value_levels,
        )
        family = params_family(put_option)
        price, level1, level2, params = tree_value_levels(
            put_option, 128, family)
        delta, gamma, theta = greeks_from_levels(
            put_option.spot, params.up, params.down, params.dt, price,
            level1, level2)
        scalar = lattice_greeks(put_option, steps=128)
        assert float(delta) == scalar.delta
        assert float(gamma) == scalar.gamma
        assert float(theta) == scalar.theta

    def test_greeks_from_levels_batched(self, put_option, call_option):
        """Scalar and batch invocations compute identical values."""
        import numpy as np

        from repro.finance.greeks import (
            greeks_from_levels,
            tree_value_levels,
        )
        rows = [tree_value_levels(o, 64, params_family(o))
                for o in (put_option, call_option)]
        spot = np.array([o.spot for o in (put_option, call_option)])
        up = np.array([r[3].up for r in rows])
        down = np.array([r[3].down for r in rows])
        dt = np.array([r[3].dt for r in rows])
        price = np.array([r[0] for r in rows])
        level1 = np.stack([r[1] for r in rows])
        level2 = np.stack([r[2] for r in rows])
        delta, gamma, theta = greeks_from_levels(spot, up, down, dt,
                                                 price, level1, level2)
        for i, (p, l1, l2, params) in enumerate(rows):
            d, g, t = greeks_from_levels(spot[i], up[i], down[i], dt[i],
                                         p, l1, l2)
            assert delta[i] == d and gamma[i] == g and theta[i] == t


def params_family(option):
    from repro.finance.lattice import LatticeFamily
    return LatticeFamily.CRR
