"""Unit tests for lattice greeks."""

import pytest

from repro.errors import FinanceError
from repro.finance import bs_greeks, lattice_greeks, price_binomial


class TestLatticeGreeks:
    def test_price_matches_pricer(self, put_option):
        greeks = lattice_greeks(put_option, steps=256)
        assert greeks.price == pytest.approx(
            price_binomial(put_option, 256).price, rel=1e-12)

    def test_european_matches_analytic(self, euro_put):
        greeks = lattice_greeks(euro_put, steps=2048)
        analytic = bs_greeks(euro_put)
        assert greeks.delta == pytest.approx(analytic.delta, abs=5e-3)
        assert greeks.gamma == pytest.approx(analytic.gamma, abs=5e-3)
        assert greeks.vega == pytest.approx(analytic.vega, rel=5e-2)
        assert greeks.rho == pytest.approx(analytic.rho, rel=5e-2)
        assert greeks.theta == pytest.approx(analytic.theta, rel=0.1)

    def test_put_delta_negative(self, put_option):
        assert -1.0 < lattice_greeks(put_option, 128).delta < 0.0

    def test_call_delta_positive(self, call_option):
        assert 0.0 < lattice_greeks(call_option, 128).delta < 1.0

    def test_gamma_positive(self, put_option):
        assert lattice_greeks(put_option, 128).gamma > 0.0

    def test_vega_positive(self, put_option):
        assert lattice_greeks(put_option, 128).vega > 0.0

    def test_too_few_steps_rejected(self, put_option):
        with pytest.raises(FinanceError):
            lattice_greeks(put_option, steps=2)
