"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.errors import FinanceError
from repro.finance import (
    PAPER_BATCH_SIZE,
    PAPER_STEPS,
    OptionType,
    WorkloadSpec,
    generate_batch,
    generate_curve_scenario,
)


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.n_options == PAPER_BATCH_SIZE == 2000
        assert PAPER_STEPS == 1024

    def test_invalid_count(self):
        with pytest.raises(FinanceError):
            WorkloadSpec(n_options=0)

    def test_inverted_range(self):
        with pytest.raises(FinanceError):
            WorkloadSpec(vol_range=(0.5, 0.1))


class TestGenerateBatch:
    def test_reproducible(self):
        a = generate_batch(n_options=10, seed=1)
        b = generate_batch(n_options=10, seed=1)
        assert a.options == b.options

    def test_different_seeds_differ(self):
        a = generate_batch(n_options=10, seed=1)
        b = generate_batch(n_options=10, seed=2)
        assert a.options != b.options

    def test_overrides_apply(self):
        batch = generate_batch(n_options=7, option_type=OptionType.CALL)
        assert len(batch) == 7
        assert all(o.is_call for o in batch)

    def test_spec_plus_overrides(self):
        spec = WorkloadSpec(n_options=4, seed=5)
        batch = generate_batch(spec, n_options=6)
        assert len(batch) == 6
        assert batch.spec.seed == 5

    def test_ranges_respected(self):
        spec = WorkloadSpec(n_options=200, vol_range=(0.2, 0.3),
                            maturity_range=(0.5, 1.0))
        batch = generate_batch(spec)
        for option in batch:
            assert 0.2 <= option.volatility <= 0.3
            assert 0.5 <= option.maturity <= 1.0
            assert option.spot == spec.spot

    def test_iteration_and_indexing(self):
        batch = generate_batch(n_options=3)
        assert batch[0] is batch.options[0]
        assert list(batch) == list(batch.options)

    def test_parameter_matrix_layout(self):
        batch = generate_batch(n_options=4)
        matrix = batch.parameter_matrix()
        assert matrix.shape == (4, 5)
        option = batch[2]
        assert np.allclose(
            matrix[2],
            [option.spot, option.strike, option.rate,
             option.volatility, option.maturity],
        )


class TestCurveScenario:
    def test_scenario_consistency(self):
        scenario = generate_curve_scenario(n_strikes=5, pricing_steps=64)
        assert len(scenario.strikes) == len(scenario.true_vols) == 5
        assert len(scenario.market_prices) == 5
        assert np.all(scenario.market_prices > 0)

    def test_smile_shape(self):
        scenario = generate_curve_scenario(n_strikes=9, pricing_steps=32,
                                           skew=0.0, smile_curvature=0.4)
        mid = len(scenario.true_vols) // 2
        # pure parabola: ATM vol is (close to) the minimum
        assert scenario.true_vols[mid] <= scenario.true_vols[0]
        assert scenario.true_vols[mid] <= scenario.true_vols[-1]

    def test_too_few_strikes(self):
        with pytest.raises(FinanceError):
            generate_curve_scenario(n_strikes=2)

    def test_negative_vol_smile_rejected(self):
        with pytest.raises(FinanceError):
            generate_curve_scenario(atm_vol=0.05, skew=1.0,
                                    smile_curvature=0.0, pricing_steps=16)


class TestSurfaceScenario:
    def test_surface_structure(self):
        from repro.finance import generate_surface_scenario

        surface = generate_surface_scenario(
            maturities=(0.25, 0.5, 1.0), n_strikes=5, pricing_steps=32)
        assert len(surface.curves) == 3
        assert surface.total_options == 15
        for maturity, curve in zip(surface.maturities, surface.curves):
            assert curve.base_option.maturity == maturity

    def test_term_structure_rises(self):
        from repro.finance import generate_surface_scenario

        surface = generate_surface_scenario(
            maturities=(0.1, 2.0), n_strikes=3, pricing_steps=16,
            term_slope=0.05)
        atm_short = surface.curves[0].true_vols[1]
        atm_long = surface.curves[1].true_vols[1]
        assert atm_long > atm_short

    def test_paper_five_curve_yardstick(self):
        """Default surface = 5 maturities, echoing the paper's '5
        plotted volatility curve' saturation unit."""
        from repro.finance import generate_surface_scenario

        surface = generate_surface_scenario(n_strikes=3, pricing_steps=8)
        assert len(surface.maturities) == 5

    def test_validation(self):
        from repro.errors import FinanceError
        from repro.finance import generate_surface_scenario

        import pytest as _pytest
        with _pytest.raises(FinanceError):
            generate_surface_scenario(maturities=(), n_strikes=3)
        with _pytest.raises(FinanceError):
            generate_surface_scenario(maturities=(0.5, -1.0), n_strikes=3,
                                      pricing_steps=8)

    def test_surface_recovery_through_solver(self):
        """Full surface round trip: quotes -> implied vols per expiry.

        Quotes pinned at intrinsic (deep-ITM short-dated American puts)
        carry no volatility information — the price is flat in sigma —
        so, as on a real desk, those points are excluded from the fit.
        """
        import numpy as np

        from repro.finance import generate_surface_scenario, implied_vol_curve

        surface = generate_surface_scenario(
            maturities=(0.25, 1.0), n_strikes=3, steps=64, pricing_steps=64)
        identifiable = 0
        for curve in surface.curves:
            points = implied_vol_curve(curve.base_option, curve.strikes,
                                       curve.market_prices, steps=64)
            for point, true_vol in zip(points, curve.true_vols):
                intrinsic = max(point.strike - curve.base_option.spot, 0.0)
                if point.market_price <= intrinsic + 1e-9:
                    continue  # vega ~ 0: vol unidentifiable from this quote
                identifiable += 1
                assert point.implied_vol == pytest.approx(true_vol, abs=1e-6)
        assert identifiable >= 4  # most of the surface is identifiable
