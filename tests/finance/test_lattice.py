"""Unit tests for lattice parameterisations."""

import math

import numpy as np
import pytest

from repro.errors import FinanceError
from repro.finance import (
    LatticeFamily,
    LatticeParams,
    Option,
    OptionType,
    asset_prices_at_step,
    build_lattice_params,
)


class TestCRRParams:
    def test_up_down_reciprocal(self, put_option):
        params = build_lattice_params(put_option, 128)
        assert params.up * params.down == pytest.approx(1.0)

    def test_up_matches_formula(self, put_option):
        params = build_lattice_params(put_option, 100)
        dt = put_option.maturity / 100
        assert params.up == pytest.approx(
            math.exp(put_option.volatility * math.sqrt(dt)))

    def test_probability_in_unit_interval(self, put_option):
        params = build_lattice_params(put_option, 64)
        assert 0.0 < params.p_up < 1.0
        assert params.p_up + params.p_down == pytest.approx(1.0)

    def test_discount_factor(self, put_option):
        params = build_lattice_params(put_option, 10)
        assert params.discount == pytest.approx(
            math.exp(-put_option.rate * put_option.maturity / 10))

    def test_discounted_probabilities_are_equation1_coefficients(self, put_option):
        params = build_lattice_params(put_option, 16)
        assert params.discounted_p_up == pytest.approx(
            params.discount * params.p_up)
        assert params.discounted_p_down == pytest.approx(
            params.discount * params.p_down)

    def test_risk_neutral_expectation_grows_at_rate(self, put_option):
        """p*u + q*d must equal exp(r*dt) (martingale condition)."""
        params = build_lattice_params(put_option, 32)
        dt = put_option.maturity / 32
        expectation = params.p_up * params.up + params.p_down * params.down
        assert expectation == pytest.approx(math.exp(put_option.rate * dt))

    def test_coarse_step_with_tiny_vol_rejected(self):
        option = Option(spot=100, strike=100, rate=0.10, volatility=0.001,
                        maturity=1.0)
        with pytest.raises(FinanceError, match="probability"):
            build_lattice_params(option, 4)

    def test_invalid_steps(self, put_option):
        with pytest.raises(FinanceError):
            build_lattice_params(put_option, 0)


class TestAlternativeFamilies:
    @pytest.mark.parametrize("family", [LatticeFamily.JARROW_RUDD,
                                        LatticeFamily.TIAN])
    def test_martingale_condition(self, put_option, family):
        params = build_lattice_params(put_option, 64, family)
        dt = put_option.maturity / 64
        expectation = params.p_up * params.up + params.p_down * params.down
        assert expectation == pytest.approx(math.exp(put_option.rate * dt))

    def test_jarrow_rudd_probability_near_half(self, put_option):
        params = build_lattice_params(put_option, 256, LatticeFamily.JARROW_RUDD)
        assert abs(params.p_up - 0.5) < 0.05

    def test_families_tagged(self, put_option):
        for family in LatticeFamily:
            params = build_lattice_params(put_option, 16, family)
            assert params.family is family


class TestLatticeParamsProperties:
    def test_node_counts(self, put_option):
        params = build_lattice_params(put_option, 4)
        assert params.levels == 5
        assert params.node_count == 15          # (5*6)/2
        assert params.interior_work_items == 10  # 4*5/2 (paper N(N+1)/2)

    def test_paper_work_item_count(self, put_option):
        params = build_lattice_params(put_option, 1024)
        assert params.interior_work_items == 524_800

    def test_validation_in_constructor(self):
        with pytest.raises(FinanceError):
            LatticeParams(steps=4, dt=0.1, up=1.1, down=0.9,
                          p_up=1.5, discount=0.99)
        with pytest.raises(FinanceError):
            LatticeParams(steps=4, dt=0.1, up=0.9, down=1.1,
                          p_up=0.5, discount=0.99)
        with pytest.raises(FinanceError):
            LatticeParams(steps=0, dt=0.1, up=1.1, down=0.9,
                          p_up=0.5, discount=0.99)


class TestAssetPrices:
    def test_root_is_spot(self, put_option):
        params = build_lattice_params(put_option, 8)
        prices = asset_prices_at_step(put_option, params, 0)
        assert prices.shape == (1,)
        assert prices[0] == pytest.approx(put_option.spot)

    def test_row_length_and_ordering(self, put_option):
        params = build_lattice_params(put_option, 8)
        prices = asset_prices_at_step(put_option, params, 5)
        assert prices.shape == (6,)
        # k = down-move count: index 0 highest price, strictly decreasing
        assert np.all(np.diff(prices) < 0)

    def test_recombination_middle_node(self, put_option):
        """One up + one down returns to the spot (CRR recombines)."""
        params = build_lattice_params(put_option, 8)
        prices = asset_prices_at_step(put_option, params, 2)
        assert prices[1] == pytest.approx(put_option.spot)

    def test_backward_recurrence_s_equals_d_times_child(self, put_option):
        """The paper's Equation (1): S[t,k] = d * S[t+1,k]."""
        params = build_lattice_params(put_option, 8)
        row_t = asset_prices_at_step(put_option, params, 3)
        row_next = asset_prices_at_step(put_option, params, 4)
        for k in range(4):
            assert row_t[k] == pytest.approx(params.down * row_next[k])

    def test_out_of_range_step(self, put_option):
        params = build_lattice_params(put_option, 8)
        with pytest.raises(FinanceError):
            asset_prices_at_step(put_option, params, 9)
        with pytest.raises(FinanceError):
            asset_prices_at_step(put_option, params, -1)
