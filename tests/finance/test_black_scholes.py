"""Unit tests for the Black-Scholes oracle."""

import math

import pytest

from repro.errors import FinanceError
from repro.finance import (
    ExerciseStyle,
    Option,
    OptionType,
    bs_greeks,
    bs_price,
)
from repro.finance.black_scholes import norm_cdf, norm_pdf


class TestNormalHelpers:
    def test_cdf_at_zero(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        assert norm_cdf(1.3) + norm_cdf(-1.3) == pytest.approx(1.0)

    def test_pdf_peak(self):
        assert norm_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_pdf_symmetric(self):
        assert norm_pdf(0.7) == pytest.approx(norm_pdf(-0.7))


def _euro(option_type=OptionType.CALL, **overrides):
    base = dict(spot=100.0, strike=100.0, rate=0.05, volatility=0.2,
                maturity=1.0, option_type=option_type,
                exercise=ExerciseStyle.EUROPEAN)
    base.update(overrides)
    return Option(**base)


class TestBsPrice:
    def test_atm_call_textbook_value(self):
        """Hull's classic S=K=100, r=5%, sigma=20%, T=1 call: 10.4506."""
        assert bs_price(_euro()) == pytest.approx(10.4506, abs=1e-4)

    def test_atm_put_textbook_value(self):
        assert bs_price(_euro(OptionType.PUT)) == pytest.approx(5.5735, abs=1e-4)

    def test_put_call_parity(self):
        call = bs_price(_euro(OptionType.CALL, strike=95.0))
        put = bs_price(_euro(OptionType.PUT, strike=95.0))
        parity = 100.0 - 95.0 * math.exp(-0.05)
        assert call - put == pytest.approx(parity, rel=1e-12)

    def test_dividend_yield_lowers_call(self):
        plain = bs_price(_euro())
        with_div = bs_price(_euro(dividend_yield=0.03))
        assert with_div < plain

    def test_american_rejected(self, put_option):
        with pytest.raises(FinanceError):
            bs_price(put_option)

    def test_deep_itm_call_near_forward_intrinsic(self):
        option = _euro(strike=10.0)
        expected = 100.0 - 10.0 * math.exp(-0.05)
        assert bs_price(option) == pytest.approx(expected, abs=1e-6)


class TestGreeks:
    def test_delta_bounds(self):
        greeks = bs_greeks(_euro())
        assert 0.0 < greeks.delta < 1.0
        put_greeks = bs_greeks(_euro(OptionType.PUT))
        assert -1.0 < put_greeks.delta < 0.0

    def test_delta_call_put_relation(self):
        call = bs_greeks(_euro()).delta
        put = bs_greeks(_euro(OptionType.PUT)).delta
        assert call - put == pytest.approx(1.0)  # zero dividend

    def test_gamma_vega_shared(self):
        call = bs_greeks(_euro())
        put = bs_greeks(_euro(OptionType.PUT))
        assert call.gamma == pytest.approx(put.gamma)
        assert call.vega == pytest.approx(put.vega)

    @pytest.mark.parametrize("option_type", [OptionType.CALL, OptionType.PUT])
    def test_greeks_match_finite_differences(self, option_type):
        option = _euro(option_type)
        greeks = bs_greeks(option)
        h = 1e-4

        from dataclasses import replace
        up = replace(option, spot=option.spot + h)
        dn = replace(option, spot=option.spot - h)
        fd_delta = (bs_price(up) - bs_price(dn)) / (2 * h)
        assert greeks.delta == pytest.approx(fd_delta, abs=1e-6)

        fd_gamma = (bs_price(up) - 2 * bs_price(option) + bs_price(dn)) / h**2
        assert greeks.gamma == pytest.approx(fd_gamma, abs=1e-4)

        fd_vega = (bs_price(option.with_volatility(0.2 + h))
                   - bs_price(option.with_volatility(0.2 - h))) / (2 * h)
        assert greeks.vega == pytest.approx(fd_vega, abs=1e-4)

        fd_rho = (bs_price(replace(option, rate=0.05 + h))
                  - bs_price(replace(option, rate=0.05 - h))) / (2 * h)
        assert greeks.rho == pytest.approx(fd_rho, abs=1e-4)

        fd_theta = -(bs_price(replace(option, maturity=1.0 + h))
                     - bs_price(replace(option, maturity=1.0 - h))) / (2 * h)
        assert greeks.theta == pytest.approx(fd_theta, abs=1e-4)

    def test_american_rejected(self, put_option):
        with pytest.raises(FinanceError):
            bs_greeks(put_option)
