"""Unit tests for the lattice convergence analysis."""

import pytest

from repro.errors import FinanceError
from repro.finance import bs_price, price_binomial
from repro.finance.convergence import (
    ConvergencePoint,
    convergence_study,
    estimate_convergence_order,
    richardson_extrapolation,
)


class TestConvergenceStudy:
    def test_european_uses_analytic_reference(self, euro_put):
        points = convergence_study(euro_put, steps_list=(64, 256))
        analytic = bs_price(euro_put)
        for p in points:
            assert p.error == pytest.approx(p.price - analytic)

    def test_american_uses_deep_lattice(self, put_option):
        points = convergence_study(put_option, steps_list=(32, 64),
                                   reference_steps=2048)
        reference = price_binomial(put_option, 2048).price
        assert points[0].error == pytest.approx(points[0].price - reference)

    def test_errors_shrink(self, put_option):
        points = convergence_study(put_option, steps_list=(16, 64, 256),
                                   reference_steps=4096)
        assert points[-1].abs_error < points[0].abs_error

    def test_reference_must_exceed_study(self, put_option):
        with pytest.raises(FinanceError):
            convergence_study(put_option, steps_list=(512,),
                              reference_steps=512)

    def test_empty_steps_rejected(self, put_option):
        with pytest.raises(FinanceError):
            convergence_study(put_option, steps_list=())


class TestConvergenceOrder:
    def test_crr_is_first_order(self, euro_put):
        points = convergence_study(euro_put,
                                   steps_list=(32, 64, 128, 256, 512, 1024))
        order = estimate_convergence_order(points)
        assert -1.7 < order < -0.5

    def test_degenerate_points_skipped(self):
        points = [ConvergencePoint(steps=16, price=1.0, error=0.0),
                  ConvergencePoint(steps=32, price=1.0, error=1e-3),
                  ConvergencePoint(steps=64, price=1.0, error=5e-4)]
        order = estimate_convergence_order(points)
        assert order < 0

    def test_too_few_points(self):
        with pytest.raises(FinanceError):
            estimate_convergence_order(
                [ConvergencePoint(steps=16, price=1.0, error=0.0)])


class TestRichardson:
    def test_beats_plain_lattice_on_average(self, euro_put):
        """CRR oscillation makes single depths noisy; in geometric mean
        over depths the smoothed extrapolation wins clearly."""
        import numpy as np

        analytic = bs_price(euro_put)
        depths = (64, 128, 256, 512)
        plain = [abs(price_binomial(euro_put, n).price - analytic)
                 for n in depths]
        extrapolated = [abs(richardson_extrapolation(euro_put, n) - analytic)
                        for n in depths]
        gm = lambda xs: float(np.exp(np.mean(np.log(xs))))
        assert gm(extrapolated) < gm(plain) / 2

    def test_smoothing_flag(self, euro_put):
        smooth = richardson_extrapolation(euro_put, 64, smooth=True)
        naive = richardson_extrapolation(euro_put, 64, smooth=False)
        assert smooth != naive

    def test_input_validation(self, euro_put):
        with pytest.raises(FinanceError):
            richardson_extrapolation(euro_put, 1)
