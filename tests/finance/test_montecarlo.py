"""Unit tests for the Monte Carlo pricers (Section II's rival method)."""

import numpy as np
import pytest

from repro.errors import FinanceError
from repro.finance import Option, OptionType, bs_price, price_binomial
from repro.finance.montecarlo import (
    MCResult,
    price_american_lsmc,
    price_european_mc,
)


class TestEuropeanMC:
    def test_converges_to_black_scholes(self, euro_put):
        result = price_european_mc(euro_put, paths=400_000, seed=3)
        analytic = bs_price(euro_put)
        assert abs(result.price - analytic) < 4 * result.std_error
        assert result.std_error < 0.05

    def test_reproducible(self, euro_put):
        a = price_european_mc(euro_put, paths=10_000, seed=7)
        b = price_european_mc(euro_put, paths=10_000, seed=7)
        assert a.price == b.price

    def test_different_seeds_differ(self, euro_put):
        a = price_european_mc(euro_put, paths=10_000, seed=1)
        b = price_european_mc(euro_put, paths=10_000, seed=2)
        assert a.price != b.price

    def test_error_shrinks_as_sqrt_paths(self, euro_put):
        """The 'slow convergence rate' of Section II, measured."""
        small = price_european_mc(euro_put, paths=10_000, seed=5)
        large = price_european_mc(euro_put, paths=160_000, seed=5)
        # 16x the paths -> ~4x smaller standard error
        assert large.std_error == pytest.approx(small.std_error / 4, rel=0.3)

    def test_antithetic_reduces_variance(self, euro_put):
        plain = price_european_mc(euro_put, paths=40_000, seed=9,
                                  antithetic=False)
        anti = price_european_mc(euro_put, paths=40_000, seed=9,
                                 antithetic=True)
        assert anti.std_error < plain.std_error

    def test_confidence_interval(self, euro_put):
        result = price_european_mc(euro_put, paths=50_000, seed=4)
        lo, hi = result.confidence_interval()
        assert lo < result.price < hi

    def test_rejects_american(self, put_option):
        with pytest.raises(FinanceError):
            price_european_mc(put_option)

    def test_path_validation(self, euro_put):
        with pytest.raises(FinanceError):
            price_european_mc(euro_put, paths=1)


class TestLSMC:
    def test_close_to_binomial(self, put_option):
        lattice = price_binomial(put_option, 2048).price
        result = price_american_lsmc(put_option, paths=100_000, steps=50,
                                     seed=11)
        # LSMC carries a small low bias (suboptimal exercise policy);
        # accept agreement within ~1%
        assert result.price == pytest.approx(lattice, rel=0.015)

    def test_american_at_least_european_mc(self, put_option):
        amer = price_american_lsmc(put_option, paths=60_000, steps=50, seed=2)
        euro = price_european_mc(put_option.as_european(), paths=60_000,
                                 seed=2)
        assert amer.price > euro.price - 3 * euro.std_error

    def test_at_least_intrinsic(self):
        deep = Option(spot=60, strike=100, rate=0.08, volatility=0.2,
                      maturity=1.0, option_type=OptionType.PUT)
        result = price_american_lsmc(deep, paths=20_000, steps=25, seed=1)
        assert result.price >= deep.intrinsic() - 1e-12

    def test_call_without_dividends_matches_european(self, call_option):
        lsmc = price_american_lsmc(call_option, paths=100_000, steps=40,
                                   seed=6)
        analytic = bs_price(call_option.as_european())
        assert lsmc.price == pytest.approx(analytic, rel=0.02)

    def test_validation(self, put_option):
        with pytest.raises(FinanceError):
            price_american_lsmc(put_option, steps=1)
        with pytest.raises(FinanceError):
            price_american_lsmc(put_option, basis_degree=0)
        with pytest.raises(FinanceError):
            price_american_lsmc(put_option, paths=1)

    def test_reproducible(self, put_option):
        a = price_american_lsmc(put_option, paths=5_000, steps=20, seed=3)
        b = price_american_lsmc(put_option, paths=5_000, steps=20, seed=3)
        assert a.price == b.price
