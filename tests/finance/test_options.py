"""Unit tests for option contracts and payoffs."""

import math

import numpy as np
import pytest

from repro.errors import FinanceError
from repro.finance import (
    ExerciseStyle,
    Option,
    OptionType,
    intrinsic_value,
    payoff,
)


class TestOptionType:
    def test_call_sign(self):
        assert OptionType.CALL.sign == 1

    def test_put_sign(self):
        assert OptionType.PUT.sign == -1


class TestOptionValidation:
    def test_valid_option_constructs(self, put_option):
        assert put_option.spot == 100.0

    @pytest.mark.parametrize("field,value", [
        ("spot", 0.0), ("spot", -1.0), ("spot", math.nan), ("spot", math.inf),
        ("strike", 0.0), ("strike", -5.0),
        ("volatility", 0.0), ("volatility", -0.2),
        ("maturity", 0.0), ("maturity", -1.0),
        ("rate", math.nan), ("dividend_yield", math.inf),
    ])
    def test_invalid_parameters_raise(self, field, value):
        kwargs = dict(spot=100.0, strike=100.0, rate=0.05,
                      volatility=0.3, maturity=1.0)
        kwargs[field] = value
        with pytest.raises(FinanceError):
            Option(**kwargs)

    def test_negative_rate_allowed(self):
        option = Option(spot=100, strike=100, rate=-0.01,
                        volatility=0.3, maturity=1.0)
        assert option.rate == -0.01

    def test_frozen(self, put_option):
        with pytest.raises(Exception):
            put_option.spot = 50.0


class TestStringCoercion:
    """``Option(option_type="put")`` must become the enum at
    construction, not crash later with ``AttributeError: 'str' object
    has no attribute 'sign'`` deep inside a pricer."""

    @pytest.mark.parametrize("value,expected", [
        ("call", OptionType.CALL), ("put", OptionType.PUT),
        ("CALL", OptionType.CALL), ("Put", OptionType.PUT),
    ])
    def test_option_type_strings_coerced(self, value, expected):
        option = Option(spot=100, strike=100, rate=0.05,
                        volatility=0.3, maturity=1.0, option_type=value)
        assert option.option_type is expected
        assert option.option_type.sign == expected.sign

    @pytest.mark.parametrize("value,expected", [
        ("american", ExerciseStyle.AMERICAN),
        ("european", ExerciseStyle.EUROPEAN),
        ("AMERICAN", ExerciseStyle.AMERICAN),
    ])
    def test_exercise_strings_coerced(self, value, expected):
        option = Option(spot=100, strike=100, rate=0.05,
                        volatility=0.3, maturity=1.0, exercise=value)
        assert option.exercise is expected

    def test_string_constructed_option_prices(self):
        from repro.finance import price_binomial
        coerced = Option(spot=100, strike=105, rate=0.03, volatility=0.25,
                         maturity=1.0, option_type="put",
                         exercise="american")
        enum_built = Option(spot=100, strike=105, rate=0.03, volatility=0.25,
                            maturity=1.0, option_type=OptionType.PUT,
                            exercise=ExerciseStyle.AMERICAN)
        assert (price_binomial(coerced, 64).price
                == price_binomial(enum_built, 64).price)

    @pytest.mark.parametrize("field,value", [
        ("option_type", "pu"), ("option_type", "straddle"),
        ("option_type", 3), ("option_type", None),
        ("exercise", "bermudan"), ("exercise", 1.5),
    ])
    def test_invalid_values_raise_finance_error(self, field, value):
        kwargs = dict(spot=100.0, strike=100.0, rate=0.05,
                      volatility=0.3, maturity=1.0)
        kwargs[field] = value
        with pytest.raises(FinanceError, match=field):
            Option(**kwargs)


class TestOptionViews:
    def test_with_volatility_returns_copy(self, put_option):
        bumped = put_option.with_volatility(0.4)
        assert bumped.volatility == 0.4
        assert put_option.volatility == 0.30
        assert bumped.strike == put_option.strike

    def test_with_strike(self, put_option):
        assert put_option.with_strike(90.0).strike == 90.0

    def test_as_european_as_american_roundtrip(self, put_option):
        euro = put_option.as_european()
        assert euro.exercise is ExerciseStyle.EUROPEAN
        assert euro.as_american().exercise is ExerciseStyle.AMERICAN

    def test_is_call_is_american(self, put_option, call_option):
        assert not put_option.is_call
        assert call_option.is_call
        assert put_option.is_american

    def test_moneyness(self, call_option):
        assert call_option.moneyness() == pytest.approx(100.0 / 95.0)


class TestIntrinsicAndPayoff:
    def test_call_intrinsic_itm(self):
        assert intrinsic_value(110.0, 100.0, OptionType.CALL) == 10.0

    def test_call_intrinsic_otm_is_zero(self):
        assert intrinsic_value(90.0, 100.0, OptionType.CALL) == 0.0

    def test_put_intrinsic(self):
        assert intrinsic_value(90.0, 100.0, OptionType.PUT) == 10.0
        assert intrinsic_value(110.0, 100.0, OptionType.PUT) == 0.0

    def test_intrinsic_vectorised(self):
        spots = np.array([80.0, 100.0, 120.0])
        out = intrinsic_value(spots, 100.0, OptionType.CALL)
        assert np.array_equal(out, [0.0, 0.0, 20.0])

    def test_scalar_returns_float(self):
        out = intrinsic_value(105.0, 100.0, OptionType.CALL)
        assert isinstance(out, float)

    def test_option_intrinsic_method(self, put_option):
        assert put_option.intrinsic() == 0.0
        itm = put_option.with_strike(120.0)
        assert itm.intrinsic() == 20.0

    def test_payoff_matches_intrinsic_at_terminal(self, call_option):
        prices = np.array([50.0, 95.0, 150.0])
        expected = np.maximum(prices - 95.0, 0.0)
        assert np.array_equal(payoff(call_option, prices), expected)
