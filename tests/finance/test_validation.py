"""Unit tests for accuracy metrics."""

import math

import numpy as np
import pytest

from repro.errors import FinanceError
from repro.finance import classify_rmse, max_abs_error, relative_rmse, rmse


class TestRmse:
    def test_identical_is_zero(self):
        data = np.array([1.0, 2.0, 3.0])
        assert rmse(data, data) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(math.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(FinanceError):
            rmse([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(FinanceError):
            rmse([], [])


class TestRelativeRmse:
    def test_scale_invariance(self):
        ref = np.array([1.0, 10.0, 100.0])
        cand = ref * 1.01
        assert relative_rmse(ref, cand) == pytest.approx(0.01)

    def test_floor_skips_tiny_references(self):
        ref = np.array([1e-15, 2.0])
        cand = np.array([1.0, 2.0])
        assert relative_rmse(ref, cand) == pytest.approx(0.0)

    def test_all_below_floor_rejected(self):
        with pytest.raises(FinanceError):
            relative_rmse([1e-15], [1.0])


class TestMaxAbsError:
    def test_known_value(self):
        assert max_abs_error([1.0, 2.0], [1.5, 1.0]) == 1.0


class TestClassify:
    def test_zero_class(self):
        assert classify_rmse(0.0) == "0"
        assert classify_rmse(1e-12) == "0"

    def test_paper_decade(self):
        assert classify_rmse(1e-3) == "~1e-3"
        assert classify_rmse(9.6e-4) == "~1e-3"   # nearest decade
        assert classify_rmse(2.3e-3) == "~1e-3"

    def test_other_decades(self):
        assert classify_rmse(1.2e-6) == "~1e-6"

    def test_invalid_values(self):
        with pytest.raises(FinanceError):
            classify_rmse(-1.0)
        with pytest.raises(FinanceError):
            classify_rmse(float("nan"))
