"""Unit tests for the Barone-Adesi & Whaley control pricer."""

import pytest

from repro.errors import FinanceError
from repro.finance import (
    ExerciseStyle,
    Option,
    OptionType,
    baw_price,
    bs_price,
    price_binomial,
)


class TestBAW:
    def test_put_close_to_binomial(self, put_option):
        approx = baw_price(put_option)
        lattice = price_binomial(put_option, 2048).price
        assert approx == pytest.approx(lattice, rel=0.02)

    def test_call_without_dividend_is_european(self, call_option):
        assert baw_price(call_option) == pytest.approx(
            bs_price(call_option.as_european()), rel=1e-12)

    def test_call_with_dividend_above_european(self):
        option = Option(spot=100, strike=95, rate=0.05, volatility=0.25,
                        maturity=1.0, option_type=OptionType.CALL,
                        dividend_yield=0.07)
        assert baw_price(option) > bs_price(option.as_european())

    def test_dividend_call_close_to_binomial(self):
        option = Option(spot=100, strike=100, rate=0.05, volatility=0.3,
                        maturity=0.5, option_type=OptionType.CALL,
                        dividend_yield=0.08)
        lattice = price_binomial(option, 2048).price
        assert baw_price(option) == pytest.approx(lattice, rel=0.03)

    def test_deep_itm_put_returns_intrinsic(self):
        option = Option(spot=20, strike=100, rate=0.08, volatility=0.2,
                        maturity=0.5, option_type=OptionType.PUT)
        assert baw_price(option) == pytest.approx(option.intrinsic(), rel=1e-6)

    def test_value_at_least_intrinsic(self):
        for spot in (60.0, 85.0, 100.0, 130.0):
            option = Option(spot=spot, strike=100, rate=0.06, volatility=0.35,
                            maturity=1.0, option_type=OptionType.PUT)
            assert baw_price(option) >= option.intrinsic() - 1e-9

    def test_value_at_least_european(self):
        for vol in (0.1, 0.3, 0.6):
            option = Option(spot=95, strike=100, rate=0.05, volatility=vol,
                            maturity=1.0, option_type=OptionType.PUT)
            assert baw_price(option) >= bs_price(option.as_european()) - 1e-9

    def test_european_contract_rejected(self, euro_put):
        with pytest.raises(FinanceError):
            baw_price(euro_put)

    def test_zero_rate_falls_back_to_floor(self):
        option = Option(spot=100, strike=100, rate=0.0, volatility=0.3,
                        maturity=1.0, option_type=OptionType.PUT)
        value = baw_price(option)
        assert value >= bs_price(option.as_european()) - 1e-12
        assert value >= option.intrinsic()
