"""Unit tests for the HLS IR and compile options."""

import pytest

from repro.errors import CompileOptionError, HLSError
from repro.hls import (
    KERNEL_A_OPTIONS,
    KERNEL_B_OPTIONS,
    CompileOptions,
    GlobalAccess,
    KernelIR,
    LiveSet,
    LocalMemSystem,
    OpCount,
)


class TestOpCount:
    def test_positive_count_required(self):
        with pytest.raises(HLSError):
            OpCount("dp_mul", 0)


class TestGlobalAccess:
    def test_kind_validated(self):
        with pytest.raises(HLSError):
            GlobalAccess("fetch")

    def test_width_validated(self):
        with pytest.raises(HLSError):
            GlobalAccess("load", width_bytes=0)


class TestLocalMemSystem:
    def test_validation(self):
        with pytest.raises(HLSError):
            LocalMemSystem(bytes_per_group=0)
        with pytest.raises(HLSError):
            LocalMemSystem(bytes_per_group=8, read_ports=-1)
        with pytest.raises(HLSError):
            LocalMemSystem(bytes_per_group=8, resident_groups=0)


class TestLiveSet:
    def test_bits(self):
        live = LiveSet(f64_values=2, f32_values=1, i32_values=3)
        assert live.bits == 2 * 64 + 1 * 32 + 3 * 32


class TestKernelIR:
    def test_requires_operators(self):
        with pytest.raises(HLSError):
            KernelIR(name="empty")

    def test_precision_validated(self):
        with pytest.raises(HLSError):
            KernelIR(name="k", precision="fp16",
                     init_ops=(OpCount("dp_add"),))

    def test_init_live_fallback(self):
        ir = KernelIR(name="k", init_ops=(OpCount("dp_add"),),
                      live=LiveSet(f64_values=3))
        assert ir.init_live.bits == ir.live.bits

    def test_init_live_override(self):
        ir = KernelIR(name="k", init_ops=(OpCount("dp_add"),),
                      live=LiveSet(f64_values=3),
                      live_init=LiveSet(f64_values=1))
        assert ir.init_live.bits == 64


class TestCompileOptions:
    def test_simd_power_of_two(self):
        with pytest.raises(CompileOptionError, match="power of two"):
            CompileOptions(num_simd_work_items=3)

    def test_positive_knobs(self):
        with pytest.raises(CompileOptionError):
            CompileOptions(num_compute_units=0)
        with pytest.raises(CompileOptionError):
            CompileOptions(unroll=0)

    def test_simd_divides_work_group(self):
        options = CompileOptions(num_simd_work_items=4)
        options.validate_against(256)  # fine
        with pytest.raises(CompileOptionError):
            options.validate_against(6)

    def test_parallel_lanes(self):
        options = CompileOptions(num_simd_work_items=2, num_compute_units=3,
                                 unroll=2)
        assert options.parallel_lanes == 12

    def test_paper_points(self):
        """The exact knob settings of Section V.B."""
        assert KERNEL_A_OPTIONS.num_simd_work_items == 2
        assert KERNEL_A_OPTIONS.num_compute_units == 3
        assert KERNEL_A_OPTIONS.parallel_lanes == 6
        assert KERNEL_B_OPTIONS.num_simd_work_items == 4
        assert KERNEL_B_OPTIONS.unroll == 2
        assert KERNEL_B_OPTIONS.parallel_lanes == 8

    def test_describe(self):
        assert "vectorized x2" in KERNEL_A_OPTIONS.describe()
        assert "replicated x3" in KERNEL_A_OPTIONS.describe()
        assert "unrolled x2" in KERNEL_B_OPTIONS.describe()
        assert CompileOptions().describe() == "baseline (no parallelisation)"
