"""Unit tests for the HLS compile flow: pipeline, resources, fitter,
power, and the end-to-end Table I regeneration tolerance."""

import pytest

from repro.bench.published import TABLE1
from repro.core import kernel_a_ir, kernel_b_ir
from repro.errors import FitError, HLSError
from repro.hls import (
    EP4SGX530,
    KERNEL_A_OPTIONS,
    KERNEL_B_OPTIONS,
    CompileOptions,
    GlobalAccess,
    KernelIR,
    LiveSet,
    OpCount,
    compile_kernel,
    estimate_fmax,
    estimate_pipeline,
    estimate_power,
    get_part,
    op_cost,
)


def tiny_ir(**overrides):
    base = dict(
        name="tiny",
        init_ops=(OpCount("dp_mul", 1), OpCount("dp_add", 1)),
        global_accesses=(GlobalAccess("load"), GlobalAccess("store")),
        live=LiveSet(f64_values=2),
        work_group_size=64,
    )
    base.update(overrides)
    return KernelIR(**base)


class TestOpCosts:
    def test_known_ops(self):
        assert op_cost("mul", "dp").dsp_18bit > 0
        assert op_cost("add", "dp").dsp_18bit == 0  # soft-logic adder

    def test_precision_scaling(self):
        assert op_cost("mul", "sp").dsp_18bit < op_cost("mul", "dp").dsp_18bit

    def test_integer_ops_precision_independent(self):
        assert op_cost("int_add", "dp") is op_cost("int_add", "sp")

    def test_unknown_op_raises(self):
        with pytest.raises(HLSError):
            op_cost("dp_fma")


class TestParts:
    def test_ep4sgx530_capacities(self):
        """The Table I denominators."""
        assert EP4SGX530.registers == 424_960
        assert EP4SGX530.memory_bits == 21_233_664
        assert EP4SGX530.dsp_18bit == 1_024
        assert EP4SGX530.m9k_blocks == 1_280

    def test_lookup(self):
        assert get_part("ep4sgx530") is EP4SGX530
        with pytest.raises(HLSError):
            get_part("xc7z020")


class TestPipeline:
    def test_unroll_deepens_body_only(self):
        ir = tiny_ir(body_ops=(OpCount("dp_mul", 1),))
        p1 = estimate_pipeline(ir, CompileOptions(unroll=1))
        p2 = estimate_pipeline(ir, CompileOptions(unroll=2))
        assert p2.depth_stages - p1.depth_stages == p1.body_depth
        assert p2.init_depth == p1.init_depth

    def test_simd_does_not_deepen(self):
        ir = tiny_ir()
        p1 = estimate_pipeline(ir, CompileOptions())
        p4 = estimate_pipeline(ir, CompileOptions(num_simd_work_items=4))
        assert p1.depth_stages == p4.depth_stages

    def test_parallel_loads_charged_once(self):
        one = tiny_ir(global_accesses=(GlobalAccess("load"),))
        five = tiny_ir(global_accesses=tuple(GlobalAccess("load")
                                             for _ in range(5)))
        d1 = estimate_pipeline(one, CompileOptions()).depth_stages
        d5 = estimate_pipeline(five, CompileOptions()).depth_stages
        assert d1 == d5

    def test_ii_is_one(self):
        assert estimate_pipeline(tiny_ir(), CompileOptions()).initiation_interval == 1


class TestResourceScaling:
    def _resources(self, options):
        return compile_kernel(tiny_ir(), options).resources

    def test_simd_scales_dsp(self):
        base = self._resources(CompileOptions()).dsp_18bit
        wide = self._resources(CompileOptions(num_simd_work_items=4)).dsp_18bit
        assert wide > base

    def test_compute_units_scale_lsus(self):
        base = self._resources(CompileOptions()).m9k_blocks
        repl = self._resources(CompileOptions(num_compute_units=3)).m9k_blocks
        assert repl > base

    def test_unroll_scales_body(self):
        ir = tiny_ir(body_ops=(OpCount("dp_mul", 2),))
        base = compile_kernel(ir, CompileOptions()).resources.dsp_18bit
        unrolled = compile_kernel(ir, CompileOptions(unroll=4)).resources.dsp_18bit
        assert unrolled > base

    def test_report_percentages(self):
        report = self._resources(CompileOptions())
        assert 0.0 < report.logic_utilization < 1.0
        assert report.fits()
        assert report.overflow_description() == ""


class TestFitter:
    def test_fmax_decreases_with_utilization(self):
        assert estimate_fmax(EP4SGX530, 0.3) > estimate_fmax(EP4SGX530, 0.9)

    def test_fmax_floor(self):
        assert estimate_fmax(EP4SGX530, 5.0) == 50e6

    def test_overflow_raises_fit_error(self):
        huge = tiny_ir(init_ops=tuple(OpCount("dp_pow", 40) for _ in range(10)))
        options = CompileOptions(num_simd_work_items=8, num_compute_units=4)
        with pytest.raises(FitError):
            compile_kernel(huge, options)
        # but allow_overflow lets DSE inspect the hypothetical point
        ck = compile_kernel(huge, options, allow_overflow=True)
        assert not ck.resources.fits()
        assert "DSP" in ck.resources.overflow_description()


class TestPower:
    def test_static_floor(self):
        report = compile_kernel(tiny_ir()).resources
        power = estimate_power(report, 1.0)  # ~zero clock
        assert power.total_w == pytest.approx(power.static_w, abs=1e-6)

    def test_linear_in_clock(self):
        report = compile_kernel(tiny_ir()).resources
        p100 = estimate_power(report, 100e6)
        p200 = estimate_power(report, 200e6)
        dynamic100 = p100.total_w - p100.static_w
        dynamic200 = p200.total_w - p200.static_w
        assert dynamic200 == pytest.approx(2 * dynamic100)

    def test_invalid_inputs(self):
        report = compile_kernel(tiny_ir()).resources
        with pytest.raises(HLSError):
            estimate_power(report, 0.0)
        with pytest.raises(HLSError):
            estimate_power(report, 1e8, toggle_rate=-1.0)


class TestTable1Regeneration:
    """End-to-end: both paper kernels within tolerance of Table I."""

    @pytest.mark.parametrize("key,ir,options", [
        ("iv_a", kernel_a_ir(), KERNEL_A_OPTIONS),
        ("iv_b", kernel_b_ir(1024), KERNEL_B_OPTIONS),
    ])
    def test_within_tolerance(self, key, ir, options):
        paper = TABLE1[key]
        ck = compile_kernel(ir, options)
        r = ck.resources
        assert r.fits(), "paper designs must fit the part"
        assert r.logic_utilization == pytest.approx(paper.logic_utilization, rel=0.10)
        assert r.registers == pytest.approx(paper.registers, rel=0.15)
        assert r.memory_bits == pytest.approx(paper.memory_bits, rel=0.15)
        assert r.m9k_blocks == pytest.approx(paper.m9k_blocks, rel=0.15)
        assert r.dsp_18bit == pytest.approx(paper.dsp_18bit, rel=0.10)
        assert ck.fit.fmax_mhz == pytest.approx(paper.clock_mhz, rel=0.10)
        assert ck.power.total_w == pytest.approx(paper.power_w, rel=0.10)

    def test_relationships_between_kernels(self):
        """The qualitative Table I story must hold exactly."""
        a = compile_kernel(kernel_a_ir(), KERNEL_A_OPTIONS)
        b = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        assert a.resources.logic_utilization > b.resources.logic_utilization
        assert a.resources.registers > b.resources.registers
        assert b.resources.dsp_18bit > a.resources.dsp_18bit
        assert b.fit.fmax_hz > a.fit.fmax_hz
        assert b.power.total_w > a.power.total_w
        # both kernels lean hard on M9K blocks (paper Section V.B)
        assert a.resources.m9k_utilization > 0.7
        assert b.resources.m9k_utilization > 0.7

    def test_m9k_usage_stories_via_breakdown(self):
        """Section V.B: 'Kernel IV.B implements its local memory as M9K
        blocks, while kernel IV.A uses those to coalesce its memory
        accesses to the global memory and store its inputs and outputs
        in shallow FIFOs.'"""
        a = compile_kernel(kernel_a_ir(), KERNEL_A_OPTIONS)
        b = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        assert a.resources.breakdown.dominant_memory_source() == "lsu"
        assert b.resources.breakdown.dominant_memory_source() == "local_memory"

    def test_breakdown_sums_to_totals(self):
        ck = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        breakdown = ck.resources.breakdown
        assert sum(breakdown.registers.values()) == ck.resources.registers
        assert sum(breakdown.memory_bits.values()) == ck.resources.memory_bits
        assert sum(breakdown.dsp.values()) == ck.resources.dsp_18bit

    def test_pipeline_registers_not_arithmetic_dominate_kernel_a(self):
        """The reason a six-operator kernel fills 99% of a 530K-LE part:
        pipeline + interface registers, not arithmetic."""
        ck = compile_kernel(kernel_a_ir(), KERNEL_A_OPTIONS)
        regs = ck.resources.breakdown.registers
        assert regs["pipeline"] + regs["lsu"] > 3 * regs["datapath"]

    def test_fitter_summary_text(self):
        ck = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        text = ck.fitter_summary()
        assert "EP4SGX530" in text
        assert "Logic utilization" in text
        assert "MHz" in text

    def test_options_validated_against_work_group(self):
        from repro.errors import CompileOptionError
        ir = kernel_b_ir(1024, work_group_size=6)
        with pytest.raises(CompileOptionError):
            compile_kernel(ir, KERNEL_B_OPTIONS)

    def test_compiled_kernel_duck_types_operating_point(self):
        ck = compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS)
        assert ck.parallel_lanes == 8
        assert ck.fmax_hz > 100e6
        assert ck.power_w > 10.0
