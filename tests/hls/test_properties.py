"""Property-based tests for the HLS compiler model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.hls import (
    EP4SGX230,
    EP4SGX530,
    CompileOptions,
    GlobalAccess,
    KernelIR,
    LiveSet,
    OpCount,
    compile_kernel,
    estimate_fmax,
)

DP_OPS = ("add", "sub", "mul", "max", "div", "exp", "pow")


@st.composite
def kernel_irs(draw):
    """Random small-but-valid kernel IRs."""
    init = draw(st.lists(
        st.builds(OpCount,
                  op=st.sampled_from(DP_OPS),
                  count=st.integers(min_value=1, max_value=3)),
        min_size=1, max_size=4))
    body = draw(st.lists(
        st.builds(OpCount,
                  op=st.sampled_from(DP_OPS[:4]),
                  count=st.integers(min_value=1, max_value=3)),
        min_size=0, max_size=3))
    loads = draw(st.integers(min_value=1, max_value=4))
    stores = draw(st.integers(min_value=1, max_value=2))
    coalesced = draw(st.booleans())
    accesses = tuple(GlobalAccess("load", coalesced=coalesced)
                     for _ in range(loads)) + \
        tuple(GlobalAccess("store", coalesced=coalesced)
              for _ in range(stores))
    return KernelIR(
        name="random",
        init_ops=tuple(init),
        body_ops=tuple(body),
        global_accesses=accesses,
        live=LiveSet(f64_values=draw(st.integers(1, 8)),
                     i32_values=draw(st.integers(0, 4))),
        work_group_size=64,
    )


def _compile(ir, options):
    return compile_kernel(ir, options, allow_overflow=True)


@settings(max_examples=40, deadline=None)
@given(kernel_irs(), st.sampled_from([1, 2, 4]), st.integers(1, 3))
def test_resources_monotone_in_parallelism(ir, simd, cus):
    """More lanes can never need fewer resources."""
    base = _compile(ir, CompileOptions()).resources
    wide = _compile(ir, CompileOptions(num_simd_work_items=simd,
                                       num_compute_units=cus)).resources
    assert wide.registers >= base.registers
    assert wide.dsp_18bit >= base.dsp_18bit
    assert wide.memory_bits >= base.memory_bits
    assert wide.m9k_blocks >= base.m9k_blocks


@settings(max_examples=30, deadline=None)
@given(kernel_irs(), st.sampled_from([2, 4]))
def test_unroll_monotone_when_body_exists(ir, unroll):
    if not ir.body_ops:
        return
    base = _compile(ir, CompileOptions())
    unrolled = _compile(ir, CompileOptions(unroll=unroll))
    assert unrolled.resources.registers >= base.resources.registers
    assert unrolled.pipeline.depth_stages >= base.pipeline.depth_stages


@settings(max_examples=40, deadline=None)
@given(kernel_irs())
def test_breakdown_always_sums(ir):
    report = _compile(ir, CompileOptions(num_simd_work_items=2)).resources
    assert sum(report.breakdown.registers.values()) == report.registers
    assert sum(report.breakdown.memory_bits.values()) == report.memory_bits
    assert sum(report.breakdown.dsp.values()) == report.dsp_18bit


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.5),
       st.floats(min_value=0.0, max_value=1.5))
def test_fmax_antitone_in_utilization(u1, u2):
    lo, hi = sorted((u1, u2))
    assert estimate_fmax(EP4SGX530, lo) >= estimate_fmax(EP4SGX530, hi)


@settings(max_examples=30, deadline=None)
@given(kernel_irs())
def test_fit_consistency(ir):
    """compile_kernel raises FitError exactly when fits() is False."""
    options = CompileOptions(num_simd_work_items=8, num_compute_units=4)
    hypothetical = compile_kernel(ir, options, allow_overflow=True)
    if hypothetical.resources.fits():
        compile_kernel(ir, options)  # must not raise
    else:
        with pytest.raises(FitError):
            compile_kernel(ir, options)
        assert hypothetical.resources.overflow_description()


@settings(max_examples=30, deadline=None)
@given(kernel_irs())
def test_smaller_part_never_fits_more(ir):
    """Anything that fits the EP4SGX230 also fits the EP4SGX530
    (capacities are a strict subset, except DSPs — checked per-resource
    instead of via fits())."""
    options = CompileOptions(num_simd_work_items=2)
    small = compile_kernel(ir, options, part=EP4SGX230,
                           allow_overflow=True).resources
    big = compile_kernel(ir, options, part=EP4SGX530,
                         allow_overflow=True).resources
    # identical design, different part: absolute usage matches
    assert small.registers == big.registers
    assert small.dsp_18bit == big.dsp_18bit
    # utilisation inversely tracks capacity
    assert small.register_utilization >= big.register_utilization
