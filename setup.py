"""Legacy setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists
so fully-offline environments without the ``wheel`` package (where
PEP 517 editable installs cannot build) can still do

    python setup.py develop --user

or fall back to dropping ``src/`` onto ``sys.path`` via a ``.pth`` file.
"""

from setuptools import setup

setup()
