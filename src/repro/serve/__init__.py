"""`repro.serve` — the sharded network serving tier.

The deployment ring above :mod:`repro.service`: an asyncio HTTP
front-end (:class:`PricingServer`) exposing the canonical
:class:`~repro.api.PricingRequest`/:class:`~repro.api.BatchResult` API
over localhost, backed by shared-nothing
:class:`~repro.service.PricingService` shards in worker processes,
routed on :attr:`~repro.api.PricingRequest.batch_key` by a consistent
:class:`~repro.serve.ring.HashRing` and answered over shared-memory
result transport.  See ``docs/wire_schema.md`` for the protocol and
``docs/service.md`` for the architecture and failure modes.
"""

from .client import ServeClient
from .ring import HashRing
from .server import PricingServer, ServeConfig, ServeMetrics, ServeStats
from .shard import ShardHandle, ShardTicket

__all__ = [
    "HashRing",
    "PricingServer",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "ServeStats",
    "ShardHandle",
    "ShardTicket",
]
