"""Blocking HTTP client for the sharded serving tier.

The reference consumer of the wire protocol (``docs/wire_schema.md``):
serialises a :class:`~repro.api.PricingRequest` with ``to_dict()``,
POSTs it to ``/v1/price`` over a kept-alive stdlib
:class:`http.client.HTTPConnection`, and rebuilds the
:class:`~repro.api.ServiceResult` with ``BatchResult.from_dict()`` —
so prices and greeks received over the network are *bitwise* equal to
what the shard computed.  Error envelopes come back as the typed
exceptions of :mod:`repro.errors` via their wire codes: catching
:class:`~repro.errors.DeadlineExceededError` works identically whether
the deadline expired locally or across the wire.

Thread-safety: one client holds one connection; use one client per
thread (the closed-loop bench does exactly that).
"""

from __future__ import annotations

import http.client
import json
import socket

from ..api import BatchResult, PricingRequest, ServiceResult
from ..errors import ReproError, ShardCrashError, error_from_wire

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking client for one :class:`~repro.serve.PricingServer`.

    :param host: server host (as returned by ``PricingServer.host``).
    :param port: server port.
    :param timeout_s: socket timeout per exchange; ``None`` waits
        forever (deadlines are better expressed in the request's own
        ``deadline_ms``, which the *server* enforces).
    """

    def __init__(self, host: str, port: int,
                 timeout_s: "float | None" = None):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self._conn: "http.client.HTTPConnection | None" = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def _exchange(self, method: str, path: str,
                  body: "bytes | None" = None) -> "tuple[int, dict]":
        conn = self._connection()
        headers = {"Content-Type": "application/json"}
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            status = response.status
        except (http.client.HTTPException, ConnectionError, socket.timeout,
                OSError) as exc:
            self.close()  # stale keep-alive; next call reconnects
            raise ShardCrashError(
                f"serve endpoint {self.host}:{self.port} "
                f"unreachable: {exc}") from exc
        try:
            document = json.loads(payload) if payload else {}
        except ValueError as exc:
            raise ReproError(
                f"serve endpoint returned non-JSON body: {exc}") from None
        return status, document

    # -- the request surface --------------------------------------------

    def price(self, request: PricingRequest) -> ServiceResult:
        """Price one request over the wire; typed errors re-raise."""
        body = json.dumps(request.to_dict()).encode("utf-8")
        status, document = self._exchange("POST", "/v1/price", body)
        error = document.get("error")
        if error is not None:
            raise error_from_wire(error.get("code", "internal"),
                                  error.get("message", f"HTTP {status}"))
        if status != 200 or "result" not in document:
            raise ReproError(
                f"serve endpoint answered HTTP {status} without a result")
        result = BatchResult.from_dict(document["result"])
        if not isinstance(result, ServiceResult):
            raise ReproError(
                f"serve endpoint returned a {type(result).__name__}, "
                f"expected a ServiceResult")
        return result

    def shard_of(self, request: PricingRequest) -> int:
        """Which shard served this request (routing diagnostics)."""
        body = json.dumps(request.to_dict()).encode("utf-8")
        status, document = self._exchange("POST", "/v1/price", body)
        error = document.get("error")
        if error is not None:
            raise error_from_wire(error.get("code", "internal"),
                                  error.get("message", f"HTTP {status}"))
        return int(document["shard"])

    def healthz(self) -> "tuple[int, dict]":
        """``(HTTP status, health document)`` — 503 once a shard is dead."""
        return self._exchange("GET", "/healthz")

    def stats(self) -> dict:
        """The server's ``repro-serve-stats/v6`` document."""
        _status, document = self._exchange("GET", "/stats")
        return document

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
