"""One serving shard: a ``PricingService`` in a worker process.

The serving tier is shared-nothing: every shard is a separate OS
process owning a full :class:`~repro.service.PricingService` (its own
coalescer, admission queue, result cache and engines), fed over a
request queue and answered over a response queue.  The parent-side
:class:`ShardHandle` is the only object the asyncio front-end touches —
it hides the process, the queues, the reader thread and the result
transport.

Result transport: for every submit the parent pre-creates a
:class:`multiprocessing.shared_memory.SharedMemory` segment sized for
the request's payload columns (``n_options * 8`` bytes per column; one
column for ``task="price"``, six for greeks).  The shard writes the
float64 columns straight into the segment and sends only a small
metadata dict back over the queue — the arrays themselves never pass
through pickle.  When the segment cannot be created (platform limits,
``/dev/shm`` exhausted) the shard falls back to pickling the arrays
over the response queue; both paths are counted so the split is
observable.

Failure model: a shard that dies or stops answering pings fails its
in-flight futures with :class:`~repro.errors.ShardCrashError` and is
replaced by the server's supervisor (per-shard
:class:`~repro.service.health.HealthMonitor` budget permitting) —
siblings keep serving throughout.
"""

from __future__ import annotations

import mmap
import multiprocessing as mp
import os
import pickle
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, fields as dc_fields
from multiprocessing import shared_memory

import numpy as np

from ..api import GREEKS_COLUMNS, PricingRequest, ServiceResult
from ..engine.reliability import FailureRecord
from ..engine.stats import EngineStats
from ..errors import ShardCrashError, error_from_wire, wire_error

__all__ = ["ShardHandle", "ShardTicket", "RESULT_COLUMNS"]

#: Payload columns in their one wire/shm order (price results use the
#: first; greeks results all six).
RESULT_COLUMNS = ("prices",) + GREEKS_COLUMNS


def _columns_for(task: str) -> "tuple[str, ...]":
    return RESULT_COLUMNS if task == "greeks" else RESULT_COLUMNS[:1]


def _stats_from_dict(data: "dict | None") -> "EngineStats | None":
    if data is None:
        return None
    known = {f.name for f in dc_fields(EngineStats)}
    return EngineStats(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# worker-process side


def _write_columns(result: ServiceResult, columns, shm_name: str) -> bool:
    """Copy the result's payload columns into the named segment.

    The segment is opened by mmap-ing ``/dev/shm`` directly instead of
    attaching a ``SharedMemory`` object: on POSIX (< 3.13) merely
    attaching registers the name with the shard's resource tracker,
    which then fights the parent (who owns create *and* unlink) over
    the registration — spurious leak warnings or double-unregister
    errors at shutdown depending on pipe ordering.  The raw mmap has no
    tracker side effects.  Platforms without ``/dev/shm`` fall back to
    a normal attach and accept the (harmless) tracker warnings.
    """
    n = len(result.prices)
    buffer = None
    segment = None
    try:
        fd = os.open(f"/dev/shm/{shm_name.lstrip('/')}", os.O_RDWR)
        try:
            buffer = mmap.mmap(fd, os.fstat(fd).st_size)
        finally:
            os.close(fd)
    except OSError:
        try:
            segment = shared_memory.SharedMemory(name=shm_name)
            buffer = segment.buf
        except (FileNotFoundError, OSError):
            return False
    try:
        view = np.ndarray((len(columns), n), dtype=np.float64,
                          buffer=buffer)
        for row, column in enumerate(columns):
            view[row, :] = getattr(result, column)
        view = None
        return True
    finally:
        if segment is not None:
            segment.close()
        elif buffer is not None:
            buffer.close()


def _result_meta(result: ServiceResult, columns) -> dict:
    return {
        "n": len(result.prices),
        "columns": list(columns),
        "route": result.route,
        "stats": None if result.stats is None else result.stats.as_dict(),
        "failures": [record.as_dict() for record in result.failures],
        "cache_hit": bool(result.cache_hit),
        "batch_options": int(result.batch_options),
        "wait_s": float(result.wait_s),
    }


def shard_main(index: int, config_bytes: bytes, request_q, response_q):
    """Entry point of one shard worker process.

    Builds a :class:`~repro.service.PricingService` from the pickled
    :class:`~repro.service.ServiceConfig` and dispatches queue messages
    until ``("stop",)``.  The dispatch loop itself never prices — the
    service's own threads do — so it stays responsive to pings and
    cancels while flushes run.
    """
    # imported here so the module picklers never drag the service in
    from ..service import PricingService

    config = pickle.loads(config_bytes)
    service = PricingService(config)
    futures: "dict[int, Future]" = {}

    def _respond(req_id: int, future: Future, shm_name: "str | None"):
        futures.pop(req_id, None)
        if future.cancelled():
            response_q.put(("cancelled", req_id))
            return
        error = future.exception()
        if error is not None:
            code, status = wire_error(error)
            response_q.put(("error", req_id, code, status, str(error)))
            return
        result = future.result()
        columns = [column for column in RESULT_COLUMNS
                   if getattr(result, column, None) is not None]
        meta = _result_meta(result, columns)
        if shm_name is not None and _write_columns(result, columns, shm_name):
            meta["transport"] = "shm"
            response_q.put(("result", req_id, meta))
        else:
            meta["transport"] = "pickle"
            meta["arrays"] = {column: np.asarray(getattr(result, column))
                              for column in columns}
            response_q.put(("result", req_id, meta))

    running = True
    while running:
        message = request_q.get()
        op = message[0]
        if op == "submit":
            _, req_id, request, shm_name = message
            try:
                future = service.submit(request)
            except BaseException as exc:  # overload, closed, chaos
                code, status = wire_error(exc)
                response_q.put(("error", req_id, code, status, str(exc)))
                continue
            futures[req_id] = future
            future.add_done_callback(
                lambda fut, rid=req_id, name=shm_name:
                _respond(rid, fut, name))
        elif op == "cancel":
            future = futures.get(message[1])
            if future is not None:
                future.cancel()  # no-op once flushing; callback answers
        elif op == "ping":
            response_q.put(("pong", message[1],
                            service.health().as_dict()))
        elif op == "stats":
            document = service.stats().as_dict()
            document["health"] = service.health().as_dict()
            response_q.put(("stats", message[1], document))
        elif op == "wedge":
            # test hook: stop dispatching (pings go unanswered) so the
            # supervisor's wedge detection can be exercised for real
            time.sleep(float(message[1]))
        elif op == "stop":
            stats = service.close().as_dict()
            response_q.put(("stopped", stats))
            running = False


# ---------------------------------------------------------------------------
# parent side


@dataclass(frozen=True)
class ShardTicket:
    """Parent-side record of one in-flight shard submit."""

    id: int
    shard: int
    future: "Future[ServiceResult]"


class _Pending:
    __slots__ = ("future", "request", "segment", "started")

    def __init__(self, future, request, segment):
        self.future = future
        self.request = request
        self.segment = segment
        self.started = time.monotonic()


class ShardHandle:
    """Parent-side control of one shard worker process.

    Thread-safe: the asyncio loop submits/cancels from its thread, the
    reader thread resolves futures, and the supervisor pings — all
    under one lock around the pending map.

    :param index: shard slot this process serves (stable across
        restarts; the ring routes to slots).
    :param service_config: the :class:`~repro.service.ServiceConfig`
        the worker builds its :class:`~repro.service.PricingService`
        from.
    :param use_shm: transport result columns through shared memory
        (pickle fallback remains available either way).
    :param generation: restart count of this slot, for observability.
    """

    def __init__(self, index: int, service_config, *, use_shm: bool = True,
                 generation: int = 0):
        self.index = int(index)
        self.generation = int(generation)
        self.use_shm = bool(use_shm)
        self._config_bytes = pickle.dumps(service_config)
        ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._request_q = ctx.Queue()
        self._response_q = ctx.Queue()
        self._process = ctx.Process(
            target=shard_main,
            args=(self.index, self._config_bytes,
                  self._request_q, self._response_q),
            name=f"repro-shard-{self.index}.{self.generation}",
            daemon=True,
        )
        self._lock = threading.Lock()
        self._pending: "dict[int, _Pending]" = {}
        self._zombies: "dict[int, shared_memory.SharedMemory]" = {}
        self._sync: "dict[tuple, Future]" = {}
        self._next_id = 0
        self._next_seq = 0
        # (seq, monotonic time, health dict) of the last pong, swapped
        # as ONE tuple: the reader thread writes it, the supervisor
        # thread reads it, and a single reference assignment is atomic
        # — so `pong_age_s` can never pair a fresh seq with a stale
        # timestamp (or vice versa) the way three separate attribute
        # writes could.
        self._pong: "tuple[int, float, dict | None]" = (-1, 0.0, None)
        self._final_stats: "dict | None" = None
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_responses,
            name=f"repro-shard-reader-{self.index}", daemon=True)
        self.shm_results = 0
        self.pickle_results = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardHandle":
        self._process.start()
        self._reader.start()
        return self

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self, timeout_s: float = 10.0) -> "dict | None":
        """Graceful stop: drain the service, join, return final stats."""
        if self._closed:
            return self._final_stats
        self._closed = True
        try:
            self._request_q.put(("stop",))
        except (ValueError, OSError):
            pass
        self._process.join(timeout=timeout_s)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._abandon(ShardCrashError(
            f"shard {self.index} closed with requests in flight"))
        return self._final_stats

    def terminate(self, reason: str = "terminated") -> None:
        """Hard-kill the worker and fail everything in flight."""
        self._closed = True
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._abandon(ShardCrashError(
            f"shard {self.index} {reason}; retry against the restarted "
            f"server"))

    def _abandon(self, error: ShardCrashError) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            zombies = list(self._zombies.values())
            self._zombies.clear()
            sync = list(self._sync.values())
            self._sync.clear()
        for entry in pending:
            self._discard_segment(entry.segment)
            if not entry.future.done():
                entry.future.set_exception(error)
        for segment in zombies:
            self._discard_segment(segment)
        for future in sync:
            if not future.done():
                future.set_exception(error)

    @staticmethod
    def _discard_segment(segment) -> None:
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass

    # -- request path ---------------------------------------------------

    def submit(self, request: PricingRequest) -> ShardTicket:
        """Queue one request on the shard; resolve via the ticket's future."""
        if self._closed or not self._process.is_alive():
            raise ShardCrashError(
                f"shard {self.index} is not running")
        segment = None
        if self.use_shm:
            size = len(request.options) * 8 * len(_columns_for(request.task))
            try:
                segment = shared_memory.SharedMemory(
                    create=True, size=max(size, 8))
            except (OSError, ValueError):
                segment = None  # pickle fallback
        future: "Future[ServiceResult]" = Future()
        with self._lock:
            req_id = self._next_id
            self._next_id += 1
            self._pending[req_id] = _Pending(future, request, segment)
        try:
            self._request_q.put(
                ("submit", req_id, request,
                 None if segment is None else segment.name))
        except (ValueError, OSError):
            with self._lock:
                self._pending.pop(req_id, None)
            self._discard_segment(segment)
            raise ShardCrashError(f"shard {self.index} queue is closed")
        return ShardTicket(id=req_id, shard=self.index, future=future)

    def cancel(self, ticket: ShardTicket) -> None:
        """Cancel an in-flight submit (client went away).

        The local future is cancelled immediately; the shard is told so
        the request is dropped from its admission queue if it has not
        flushed yet.  The pending entry stays parked as a zombie until
        the shard answers for this id, so a result that raced the
        cancel still gets its segment unlinked.
        """
        with self._lock:
            entry = self._pending.pop(ticket.id, None)
            if entry is not None and entry.segment is not None:
                self._zombies[ticket.id] = entry.segment
        if entry is not None:
            entry.future.cancel()
        try:
            self._request_q.put(("cancel", ticket.id))
        except (ValueError, OSError):
            pass

    # -- health / stats -------------------------------------------------

    def ping(self) -> int:
        """Send one ping; returns its sequence number."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        try:
            self._request_q.put(("ping", seq))
        except (ValueError, OSError):
            pass
        return seq

    @property
    def pong_seq(self) -> int:
        return self._pong[0]

    @property
    def pong_age_s(self) -> float:
        """Seconds since the last pong (``inf`` before the first)."""
        _seq, pong_time, _health = self._pong
        if pong_time == 0.0:
            return float("inf")
        return time.monotonic() - pong_time

    @property
    def health(self) -> "dict | None":
        """The shard service's last reported health dict."""
        return self._pong[2]

    def stats(self, timeout_s: float = 5.0) -> "dict | None":
        """The shard service's stats document (None if unresponsive)."""
        future: Future = Future()
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._sync[("stats", seq)] = future
        try:
            try:
                self._request_q.put(("stats", seq))
            except (ValueError, OSError):
                return None
            try:
                return future.result(timeout=timeout_s)
            except Exception:
                return None
        finally:
            # The reader pops the entry when the shard answers; a
            # wedged shard never answers, and without this the
            # supervisor's periodic stats() calls would grow _sync
            # without bound.
            with self._lock:
                self._sync.pop(("stats", seq), None)

    def inject_wedge(self, seconds: float) -> None:
        """Test hook: make the dispatch loop unresponsive for a while."""
        self._request_q.put(("wedge", float(seconds)))

    # -- response path --------------------------------------------------

    def _read_responses(self) -> None:
        while True:
            try:
                message = self._response_q.get(timeout=0.2)
            except Exception:
                if self._closed and not self._process.is_alive():
                    return
                continue
            op = message[0]
            if op == "result":
                self._on_result(message[1], message[2])
            elif op == "error":
                self._on_error(*message[1:])
            elif op == "cancelled":
                self._on_cancelled(message[1])
            elif op == "pong":
                self._apply_pong(message[1], message[2])
            elif op == "stats":
                with self._lock:
                    future = self._sync.pop(("stats", message[1]), None)
                if future is not None and not future.done():
                    future.set_result(message[2])
            elif op == "stopped":
                self._final_stats = message[1]

    def _apply_pong(self, seq: int, health: "dict | None") -> None:
        """Record one pong: the triple is built first, swapped once."""
        now = time.monotonic()
        self._pong = (max(self._pong[0], seq), now, health)

    def _pop(self, req_id: int) -> "_Pending | None":
        with self._lock:
            entry = self._pending.pop(req_id, None)
            if entry is None:
                zombie = self._zombies.pop(req_id, None)
                if zombie is not None:
                    self._discard_segment(zombie)
            return entry

    def _on_result(self, req_id: int, meta: dict) -> None:
        entry = self._pop(req_id)
        if entry is None:
            return
        n = int(meta["n"])
        columns = meta["columns"]
        arrays: "dict[str, np.ndarray]" = {}
        if meta["transport"] == "shm" and entry.segment is not None:
            view = np.ndarray((len(columns), n), dtype=np.float64,
                              buffer=entry.segment.buf)
            for row, column in enumerate(columns):
                arrays[column] = view[row].copy()
            self.shm_results += 1
        else:
            for column in columns:
                arrays[column] = np.asarray(meta["arrays"][column],
                                            dtype=np.float64)
            self.pickle_results += 1
        self._discard_segment(entry.segment)
        result = ServiceResult(
            route=meta["route"],
            stats=_stats_from_dict(meta["stats"]),
            failures=tuple(FailureRecord.from_dict(record)
                           for record in meta["failures"]),
            cache_hit=meta["cache_hit"],
            batch_options=meta["batch_options"],
            wait_s=meta["wait_s"],
            **arrays,
        )
        if not entry.future.done():
            entry.future.set_result(result)

    def _on_error(self, req_id: int, code: str, status: int,
                  message: str) -> None:
        entry = self._pop(req_id)
        if entry is None:
            return
        self._discard_segment(entry.segment)
        if not entry.future.done():
            entry.future.set_exception(error_from_wire(code, message))

    def _on_cancelled(self, req_id: int) -> None:
        entry = self._pop(req_id)
        if entry is None:
            return  # normal: parent-initiated cancel already parked it
        self._discard_segment(entry.segment)
        entry.future.cancel()
