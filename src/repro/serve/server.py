"""The asyncio HTTP front-end over the sharded serving tier.

One event loop accepts HTTP/1.1 connections on localhost, parses JSON
wire requests (:data:`~repro.api.WIRE_REQUEST_SCHEMA`), routes each on
its :attr:`~repro.api.PricingRequest.batch_key` through the consistent
:class:`~repro.serve.ring.HashRing`, and awaits the owning shard's
result without ever blocking the loop — the shards do all pricing in
their own processes.

Endpoints::

    POST /v1/price    one wire request -> one wire result (or a typed
                      error envelope; codes from repro.errors.WIRE_ERRORS)
    GET  /healthz     200 while every live shard answers pings,
                      503 once any slot is dead or wedged
    GET  /stats       the repro-serve-stats/v6 document plus each
                      shard's own service stats document

Delivery semantics carried end-to-end: ``deadline_ms`` and
``priority`` ride inside the request and are enforced by the shard's
:class:`~repro.service.PricingService` (expiry, shedding); a client
that disconnects mid-request has its shard submit cancelled, so
abandoned work never occupies a flush slot.

Supervision: a per-slot :class:`~repro.service.health.HealthMonitor`
gives each shard a bounded restart budget.  The supervisor pings every
shard each interval; a dead process or a wedged dispatch loop (pings
unanswered past the miss limit) fails that shard's in-flight requests
with :class:`~repro.errors.ShardCrashError` and — budget permitting —
boots a replacement into the *same* ring slot, so no keys move and the
siblings keep serving throughout.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass

from ..errors import (
    CANCELLED_HTTP_STATUS,
    CANCELLED_WIRE_CODE,
    INTERNAL_HTTP_STATUS,
    INTERNAL_WIRE_CODE,
    ReproError,
    ServiceError,
    ShardCrashError,
    wire_error,
)
from ..api import PricingRequest
from ..obs import keys
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import as_tracer
from ..service import HealthMonitor, HealthPolicy, ServiceConfig
from ..service.health import HEALTH_STATE_LEVEL
from .ring import HashRing
from .shard import ShardHandle

__all__ = ["PricingServer", "ServeConfig", "ServeMetrics", "ServeStats"]

#: Protocol tag of the HTTP response envelope (the body wrapping a
#: wire result or error).
SERVE_ENVELOPE_SCHEMA = "repro-serve/v1"

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 << 20

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    499: "Client Closed Request", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`PricingServer`.

    :param host: interface to bind (localhost by default — the tier is
        a data-centre-internal surface, not an internet-facing one).
    :param port: TCP port; 0 picks a free one (read it back from
        :attr:`PricingServer.port`).
    :param shards: shard worker processes (>= 1).
    :param replicas: virtual nodes per shard on the routing ring.
    :param service: the :class:`~repro.service.ServiceConfig` every
        shard builds its :class:`~repro.service.PricingService` from
        (defaults applied when ``None``).
    :param use_shm: transport result columns over
        ``multiprocessing.shared_memory`` (pickle fallback otherwise).
    :param ping_interval_s: supervisor health-ping cadence.
    :param ping_miss_limit: unanswered pings after which a live-but-
        silent shard is declared wedged and restarted.
    :param health: per-shard :class:`~repro.service.HealthPolicy`
        (restart budget/backoff; defaults when ``None``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    replicas: int = 64
    service: "ServiceConfig | None" = None
    use_shm: bool = True
    ping_interval_s: float = 0.25
    ping_miss_limit: int = 20
    health: "HealthPolicy | None" = None

    def __post_init__(self):
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if self.ping_interval_s <= 0:
            raise ServiceError(
                f"ping_interval_s must be > 0, got {self.ping_interval_s}")
        if self.ping_miss_limit < 1:
            raise ServiceError(
                f"ping_miss_limit must be >= 1, got {self.ping_miss_limit}")


class ServeMetrics:
    """Serve-scoped metrics, same pattern as ``ServiceMetrics``."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.requests = reg.counter(
            keys.SERVE_REQUESTS_TOTAL, "Pricing requests received")
        self.options = reg.counter(
            keys.SERVE_OPTIONS_TOTAL, "Options across received requests")
        self.responses = reg.counter(
            keys.SERVE_RESPONSES_TOTAL, "Successful pricing responses")
        self.errors = reg.counter(
            keys.SERVE_ERRORS_TOTAL, "Typed error responses")
        self.bad_requests = reg.counter(
            keys.SERVE_BAD_REQUESTS_TOTAL,
            "Requests rejected before routing (parse/schema)")
        self.cancelled = reg.counter(
            keys.SERVE_CANCELLED_TOTAL,
            "Requests cancelled by client disconnect")
        self.shard_restarts = reg.counter(
            keys.SERVE_SHARD_RESTARTS_TOTAL,
            "Shard worker processes replaced by the supervisor")
        self.shm_results = reg.counter(
            keys.SERVE_SHM_RESULTS_TOTAL,
            "Results transported via shared memory")
        self.pickle_results = reg.counter(
            keys.SERVE_PICKLE_RESULTS_TOTAL,
            "Results transported via the pickle fallback")
        self.shards = reg.gauge(
            keys.SERVE_SHARDS, "Configured shard slots")
        self.request_seconds = reg.histogram(
            keys.SERVE_REQUEST_SECONDS,
            "End-to-end request latency at the server",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0))
        for handle in (self.requests, self.options, self.responses,
                       self.errors, self.bad_requests, self.cancelled,
                       self.shard_restarts, self.shm_results,
                       self.pickle_results):
            handle.inc(0.0)
        self.shards.set(0.0)

    def publish(self) -> None:
        """Merge this server's registry into the process-wide one."""
        get_registry().merge(self.registry)


@dataclass(frozen=True)
class ServeStats:
    """What one :class:`PricingServer` did over its lifetime.

    Snapshot under the stable ``repro-serve-stats/v6`` schema
    (:data:`repro.obs.keys.SERVE_STATS_KEYS`; documented in
    ``docs/stats_schema.md``).
    """

    requests: int = 0
    options: int = 0
    responses: int = 0
    errors: int = 0
    bad_requests: int = 0
    cancelled: int = 0
    shard_restarts: int = 0
    shm_results: int = 0
    pickle_results: int = 0
    shards: int = 0
    mean_request_s: float = 0.0
    health: str = "healthy"

    @classmethod
    def from_metrics(cls, metrics: ServeMetrics, health: str) -> "ServeStats":
        registry = metrics.registry
        counts = {stat: int(registry.value(metric))
                  for stat, metric in keys.SERVE_STATS_TO_METRIC.items()}
        hist = metrics.request_seconds
        mean = hist.sum / hist.count if hist.count else 0.0
        return cls(shards=int(metrics.shards.value()),
                   mean_request_s=mean, health=health, **counts)

    def as_dict(self) -> dict:
        """JSON-ready snapshot: :data:`~repro.obs.keys.SERVE_STATS_KEYS`,
        in order."""
        return {key: getattr(self, key) for key in keys.SERVE_STATS_KEYS}


class _Disconnect(Exception):
    """Peer closed the connection."""


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


class _Conn:
    """Buffered HTTP reader that survives the wait-for-result window.

    While a response future is pending the handler also watches the
    socket; bytes that arrive early (a pipelined request) are kept in
    the buffer, EOF means the client abandoned the request.  The
    single outstanding ``read_task`` is owned here so the two uses —
    parsing and disconnect-watching — never race on the stream.
    """

    def __init__(self, reader: asyncio.StreamReader):
        self.reader = reader
        self.buf = bytearray()
        self.read_task: "asyncio.Task | None" = None

    def _ensure_read(self) -> "asyncio.Task":
        if self.read_task is None:
            self.read_task = asyncio.ensure_future(self.reader.read(65536))
        return self.read_task

    async def _fill(self) -> None:
        task = self._ensure_read()
        data = await task
        self.read_task = None
        if not data:
            raise _Disconnect()
        self.buf += data

    async def read_until(self, sep: bytes, limit: int) -> bytes:
        while sep not in self.buf:
            if len(self.buf) > limit:
                raise _HttpError(413, "bad_request", "headers too large")
            await self._fill()
        index = self.buf.index(sep) + len(sep)
        chunk = bytes(self.buf[:index])
        del self.buf[:index]
        return chunk

    async def read_exactly(self, n: int) -> bytes:
        while len(self.buf) < n:
            await self._fill()
        chunk = bytes(self.buf[:n])
        del self.buf[:n]
        return chunk

    def at_eof_buffer_empty(self) -> bool:
        return not self.buf and self.reader.at_eof()


class PricingServer:
    """The sharded network front-end (see module docstring).

    Run it synchronously — ``start()`` boots the shards and the event
    loop in a background thread and returns once the socket is bound;
    ``stop()`` (or the context manager) drains everything back down::

        with PricingServer(ServeConfig(shards=2)) as server:
            client = ServeClient(server.host, server.port)
            result = client.price(request)

    :param config: :class:`ServeConfig` (defaults when ``None``).
    :param tracer: optional :class:`repro.obs.trace.Tracer`; every
        request gets one ``serve.request`` span carrying the routed
        shard, option count, transport and wire status.
    """

    def __init__(self, config: "ServeConfig | None" = None, *, tracer=None):
        self.config = config or ServeConfig()
        self.tracer = as_tracer(tracer)
        self.metrics = ServeMetrics()
        self._service_config = self.config.service or ServiceConfig()
        self._ring = HashRing(self.config.shards, self.config.replicas)
        self._shards: "list[ShardHandle | None]" = []
        self._monitors: "list[HealthMonitor]" = []
        self._dead: "dict[int, str]" = {}
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._stop_event: "asyncio.Event | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._started = False
        self._closed = False
        self._bound: "tuple[str, int] | None" = None
        self._start_error: "BaseException | None" = None

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self.config.host

    @property
    def port(self) -> int:
        if self._bound is None:
            raise ServiceError("server is not started")
        return self._bound[1]

    def start(self) -> "PricingServer":
        """Boot shards and the event loop; returns once bound."""
        if self._started:
            raise ServiceError("server already started")
        self._started = True
        policy = self.config.health or HealthPolicy()
        for index in range(self.config.shards):
            self._monitors.append(HealthMonitor(policy))
            handle = ShardHandle(index, self._service_config,
                                 use_shm=self.config.use_shm)
            self._shards.append(handle.start())
        self.metrics.shards.set(float(self.config.shards))
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._start_error is not None:
            error = self._start_error
            self.stop()
            raise ServiceError(f"server failed to start: {error}") from error
        return self

    def stop(self) -> ServeStats:
        """Graceful shutdown: loop, then shards; returns final stats."""
        if self._closed:
            return self.stats()
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: self._stop_event.set() if self._stop_event else None)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        for handle in self._shards:
            if handle is not None:
                handle.close()
        self._fold_transport_counts()
        self.metrics.publish()
        return self.stats()

    def __enter__(self) -> "PricingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _fold_transport_counts(self) -> None:
        shm = sum(h.shm_results for h in self._shards if h is not None)
        pickled = sum(h.pickle_results for h in self._shards if h is not None)
        current_shm = self.metrics.shm_results.total()
        current_pickle = self.metrics.pickle_results.total()
        if shm > current_shm:
            self.metrics.shm_results.inc(shm - current_shm)
        if pickled > current_pickle:
            self.metrics.pickle_results.inc(pickled - current_pickle)

    def stats(self) -> ServeStats:
        """Current :class:`ServeStats` snapshot."""
        self._fold_transport_counts()
        return ServeStats.from_metrics(self.metrics, self._worst_health())

    def _worst_health(self) -> str:
        worst = "healthy"
        worst_level = -1
        for index, monitor in enumerate(self._monitors):
            state = monitor.report().state
            level = HEALTH_STATE_LEVEL[state]
            if index in self._dead:
                state_value, level = "unhealthy", 2
            else:
                state_value = state.value
            if level > worst_level:
                worst, worst_level = state_value, level
        return worst

    # -- event loop -----------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface to start()
            if not self._ready.is_set():
                self._start_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host,
                port=self.config.port)
        except OSError as exc:
            self._start_error = exc
            self._ready.set()
            return
        sock = self._server.sockets[0].getsockname()
        self._bound = (sock[0], sock[1])
        supervisor = asyncio.ensure_future(self._supervise())
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            supervisor.cancel()
            self._server.close()
            await self._server.wait_closed()

    async def _supervise(self) -> None:
        """Ping shards, restart dead/wedged ones within their budget."""
        interval = self.config.ping_interval_s
        while True:
            await asyncio.sleep(interval)
            for index in range(self.config.shards):
                if index in self._dead:
                    continue
                handle = self._shards[index]
                if handle is None:
                    continue
                monitor = self._monitors[index]
                sent = handle.ping()
                wedged = (sent - handle.pong_seq) > self.config.ping_miss_limit
                if handle.alive and not wedged:
                    monitor.record_flush(failed=False)
                    continue
                reason = ("process died" if not handle.alive else
                          f"unanswered pings past {self.config.ping_miss_limit}")
                monitor.record_flush(failed=True)
                await self._restart_shard(index, reason)

    async def _restart_shard(self, index: int, reason: str) -> None:
        handle = self._shards[index]
        monitor = self._monitors[index]
        decision = monitor.request_restart(("shard", index))
        handle.terminate(reason=f"restarting ({reason})")
        if not decision.allowed:
            # budget exhausted: pin the slot dead; routed requests fail
            # fast with shard_crash while the siblings keep serving
            self._dead[index] = reason
            self._shards[index] = None
            return
        if decision.backoff_s > 0:
            await asyncio.sleep(decision.backoff_s)
        replacement = ShardHandle(
            index, self._service_config, use_shm=self.config.use_shm,
            generation=handle.generation + 1)
        self._shards[index] = replacement.start()
        self.metrics.shard_restarts.inc()

    # -- HTTP surface ---------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Conn(reader)
        try:
            await self._serve_connection(conn, writer)
        except asyncio.CancelledError:
            return  # loop shutdown: drop the connection quietly
        finally:
            if conn.read_task is not None:
                conn.read_task.cancel()
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_connection(self, conn: "_Conn",
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_http_request(conn)
                except _Disconnect:
                    return
                if request is None:
                    return
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, payload = await self._dispatch(
                        method, path, body, conn)
                except _HttpError as exc:
                    status = exc.status
                    payload = self._error_envelope(exc.code, str(exc))
                except _Disconnect:
                    return
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, _Disconnect):
            return

    async def _read_http_request(self, conn: _Conn):
        """Parse one request; ``None`` on clean EOF between requests."""
        try:
            head = await conn.read_until(b"\r\n\r\n", _MAX_HEADER_BYTES)
        except _Disconnect:
            if conn.at_eof_buffer_empty():
                return None
            raise
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "bad_request",
                             f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers: "dict[str, str]" = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "bad_request",
                             f"body of {length} bytes exceeds the "
                             f"{_MAX_BODY_BYTES}-byte limit")
        body = await conn.read_exactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes,
                        conn: _Conn) -> "tuple[int, dict]":
        if method == "POST" and path == "/v1/price":
            return await self._handle_price(body, conn)
        if method == "GET" and path == "/healthz":
            return self._handle_healthz()
        if method == "GET" and path == "/stats":
            return self._handle_stats()
        raise _HttpError(404, "bad_request", f"no route {method} {path}")

    @staticmethod
    def _error_envelope(code: str, message: str, shard: "int | None" = None
                        ) -> dict:
        payload = {"schema": SERVE_ENVELOPE_SCHEMA,
                   "error": {"code": code, "message": message}}
        if shard is not None:
            payload["shard"] = shard
        return payload

    async def _handle_price(self, body: bytes,
                            conn: _Conn) -> "tuple[int, dict]":
        self.metrics.requests.inc()
        started = self._loop.time()
        try:
            data = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            self.metrics.bad_requests.inc()
            raise _HttpError(400, "bad_request",
                             f"request body is not JSON: {exc}") from None
        try:
            request = PricingRequest.from_dict(data)
        except ReproError as exc:
            self.metrics.bad_requests.inc()
            code, status = wire_error(exc)
            raise _HttpError(status, code, str(exc)) from None
        self.metrics.options.inc(len(request.options))
        shard_index = self._ring.route(request.batch_key)
        span = self.tracer.start_span(
            "serve.request", kind="serve", shard=shard_index,
            task=request.task, options=len(request.options),
            priority=request.priority)
        try:
            status, payload = await self._route_and_await(
                request, shard_index, conn, span)
        except _Disconnect:
            span.set(status=CANCELLED_WIRE_CODE).end()
            raise
        span.set(status=payload.get("error", {}).get("code", "ok"),
                 http_status=status)
        span.end()
        self.metrics.request_seconds.observe(self._loop.time() - started)
        return status, payload

    async def _route_and_await(self, request: PricingRequest,
                               shard_index: int, conn: _Conn,
                               span) -> "tuple[int, dict]":
        handle = self._shards[shard_index]
        if handle is None:
            self.metrics.errors.inc()
            reason = self._dead.get(shard_index, "not running")
            return 503, self._error_envelope(
                "shard_crash", f"shard {shard_index} is down ({reason}) and "
                f"its restart budget is exhausted", shard_index)
        try:
            ticket = handle.submit(request)
        except ShardCrashError as exc:
            self.metrics.errors.inc()
            code, status = wire_error(exc)
            return status, self._error_envelope(code, str(exc), shard_index)
        result_future = asyncio.ensure_future(
            asyncio.wrap_future(ticket.future))
        span.annotate("routed", shard=shard_index,
                      generation=handle.generation)
        while not result_future.done():
            read_task = conn._ensure_read()
            done, _pending = await asyncio.wait(
                {result_future, read_task},
                return_when=asyncio.FIRST_COMPLETED)
            if read_task in done:
                conn.read_task = None
                data = read_task.result()
                if not data:
                    # client went away: cancel the shard-side work
                    handle.cancel(ticket)
                    result_future.cancel()
                    self.metrics.cancelled.inc()
                    raise _Disconnect()
                conn.buf += data  # pipelined bytes; keep waiting
        try:
            result = result_future.result()
        except asyncio.CancelledError:
            self.metrics.cancelled.inc()
            return CANCELLED_HTTP_STATUS, self._error_envelope(
                CANCELLED_WIRE_CODE, "request was cancelled", shard_index)
        except BaseException as exc:
            self.metrics.errors.inc()
            code, status = wire_error(exc)
            return status, self._error_envelope(code, str(exc), shard_index)
        self.metrics.responses.inc()
        return 200, {
            "schema": SERVE_ENVELOPE_SCHEMA,
            "shard": shard_index,
            "result": result.to_dict(),
        }

    def _handle_healthz(self) -> "tuple[int, dict]":
        shards = []
        healthy = True
        for index in range(self.config.shards):
            handle = self._shards[index]
            report = self._monitors[index].report().as_dict()
            entry = {
                "shard": index,
                "alive": handle is not None and handle.alive,
                "generation": 0 if handle is None else handle.generation,
                "supervisor": report,
                "service": None if handle is None else handle.health,
            }
            if index in self._dead:
                entry["dead"] = self._dead[index]
                healthy = False
            shards.append(entry)
        state = self._worst_health()
        status = 200 if healthy and state != "unhealthy" else 503
        return status, {"schema": SERVE_ENVELOPE_SCHEMA, "state": state,
                        "shards": shards}

    def _handle_stats(self) -> "tuple[int, dict]":
        document = {"schema": keys.SERVE_STATS_SCHEMA}
        document.update(self.stats().as_dict())
        document["shards"] = [
            None if handle is None else handle.stats(timeout_s=2.0)
            for handle in self._shards
        ]
        return 200, document

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        payload: dict, keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        text = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
