"""Consistent-hash routing for the sharded serving tier.

The front-end routes every request to one shard on its
:attr:`~repro.api.PricingRequest.batch_key`, so all requests that the
in-process :class:`~repro.service.PricingService` *would* coalesce and
cache together land on the *same* shard — each shard's
:class:`~repro.service.cache.ResultCache` and engine set stay hot for
their (kernel, precision, family, backend, task) buckets instead of
every shard paying warm-up for every configuration.

A consistent ring (rather than ``hash(key) % shards``) keeps the
assignment stable under resizing: adding or removing one shard moves
only ``~1/shards`` of the key space, which is what makes cache-warm
rolling restarts possible.  The hash is :func:`hashlib.blake2b` — the
same deterministic, process-independent primitive the result cache
keys with — never Python's randomised ``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib

from ..errors import ReproError

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """64-bit ring position of an arbitrary string."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Maps coalescing keys to shard indices, stably.

    :param shards: number of shard slots (>= 1).  The ring routes to
        *indices*; the server owns the index -> live process mapping,
        so a shard restart does not move any keys.
    :param replicas: virtual nodes per shard.  More replicas smooth
        the key-space split between shards at the cost of a larger
        (still tiny) ring; 64 keeps the per-shard share within a few
        percent of uniform for the key cardinalities the request
        schema can produce.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1:
            raise ReproError(f"ring needs at least one shard, got {shards}")
        if replicas < 1:
            raise ReproError(
                f"ring needs at least one replica, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points: "list[tuple[int, int]]" = []
        for shard in range(self.shards):
            for replica in range(self.replicas):
                points.append((_point(f"shard-{shard}:vn-{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, key) -> int:
        """Shard index owning ``key`` (any hashable/reprable value).

        Keys are rendered with ``repr`` before hashing, so tuples like
        :attr:`~repro.api.PricingRequest.batch_key` route identically
        across processes and interpreter runs.
        """
        position = _point(repr(key))
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap: the first point owns the top arc
        return self._owners[index]

    def distribution(self, keys) -> "list[int]":
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.route(key)] += 1
        return counts
