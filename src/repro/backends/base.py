"""The ``KernelBackend`` contract: one backward-induction hot path.

The paper's speedup story is a *dataflow fusion* story: kernels IV.A
and IV.B differ only in where the leaves come from (host doubles vs
the in-device ``pow``), while the backward recurrence of Equation (1)
— spot roll, discounted expectation, American exercise-compare — is
the same pipeline in both.  This module mirrors that split in
software: leaf construction stays in :mod:`repro.core.batch_sim`
(it owns the profile's ``pow``/cast semantics), and everything below
the leaves is a :class:`KernelBackend`.

A backend receives **option-major** leaf arrays already cast into the
profile's working dtype plus the per-option Equation (1) constants,
and returns float64 prices (and, on request, the captured level-1/2
value rows that the lattice greeks formulas consume).  Because every
operation in the recurrence is elementwise with a fixed per-element
operation order, any backend that preserves that order — the NumPy
tile loop, the compiled per-option C loop, the numba kernels — is
**bitwise identical** to every other; the ``tests/backends`` suite
holds them to ``rtol=0``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.workspace import Workspace

__all__ = ["KernelBackend", "RollResult"]

#: Return triple of :meth:`KernelBackend.roll_levels`:
#: ``(prices, level1, level2)`` with float64 ``prices`` of shape
#: ``(n,)`` and — when capture was requested — float64 ``level1`` of
#: shape ``(n, 2)`` and ``level2`` of shape ``(n, 3)``; ``None``
#: otherwise.
RollResult = "tuple[np.ndarray, np.ndarray | None, np.ndarray | None]"


class KernelBackend(abc.ABC):
    """One implementation of the fused backward-induction recurrence.

    Subclasses implement :meth:`roll_levels`; :meth:`leaf_payoffs` and
    :meth:`capture_levels` have shared NumPy reference implementations
    (compiled backends fuse the capture into their kernel but must
    produce values bit-identical to the reference helper).

    :cvar name: registry identifier (``"numpy"``, ``"cnative"``,
        ``"numba"``).
    :cvar compiled: True when the backend runs machine code generated
        at runtime (its first use pays a compilation cost, reported
        via :attr:`compile_seconds`).
    """

    name: str = "abstract"
    compiled: bool = False

    #: Wall-clock seconds this process spent making the backend's
    #: kernels executable (codegen + compiler + load for ``cnative``,
    #: ``@njit`` warm-up for ``numba``; 0.0 for the interpreted NumPy
    #: path).  Flows into ``EngineStats.backend_compile_seconds``.
    compile_seconds: float = 0.0

    @classmethod
    @abc.abstractmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current process."""

    @abc.abstractmethod
    def roll_levels(self, leaf_s, leaf_v, pulldown, rp, rq, strike, sign,
                    steps: int, workspace: "Workspace | None" = None,
                    capture: bool = False):
        """Run Equation (1) backward from the leaves to the root.

        Per level ``t = steps-1 .. 0`` and node ``k <= t`` the
        recurrence is, in this exact operation order::

            S'   = pulldown * S[k]
            cont = rp * V[k] + rq * V[k+1]
            intr = sign * (S' - strike)
            V[k] = cont if cont > intr else intr

        :param leaf_s: option-major ``(n, >= steps)`` leaf asset
            prices in the working dtype; only the first ``steps``
            columns are read (node ``k = steps`` never rolls — the
            first level already idles it out).
        :param leaf_v: option-major ``(n, steps + 1)`` leaf option
            values in the working dtype.
        :param pulldown: per-option spot roll factor ``1/u`` (the
            paper's ``d`` under CRR), shape ``(n,)`` or ``(n, 1)``,
            working dtype.  ``rp``/``rq`` are the discounted
            up/down probabilities, ``strike``/``sign`` the payoff
            constants, same shape and dtype.
        :param steps: tree depth ``N``.
        :param workspace: optional tile pool for scratch buffers.
        :param capture: when True, also return the level-1 and
            level-2 value rows (see :meth:`capture_levels`); requires
            ``steps >= 3``.
        :returns: ``(prices, level1, level2)`` — float64 root prices
            ``(n,)``; float64 ``(n, 2)`` / ``(n, 3)`` captured rows
            when ``capture`` else ``(prices, None, None)``.
        """

    # -- shared reference helpers ------------------------------------------

    @staticmethod
    def leaf_payoffs(leaf_s, strike, sign, cast):
        """Exercise values at the leaves: ``max(sign*(S - K), 0)``.

        The shared elementwise payoff used by kernel IV.B's in-device
        leaf initialisation (kernel IV.A's leaves already arrive as
        host-exact values).  ``strike``/``sign`` broadcast against the
        option-major ``leaf_s``; ``cast`` is the profile's rounding
        into the working precision, applied exactly once after the
        subtract-multiply — the same single rounding point as the
        device code.
        """
        payoff = cast(sign * (leaf_s - strike))
        return np.where(payoff > 0.0, payoff, cast(0.0))

    @staticmethod
    def capture_levels(levels: dict, t: int, values) -> None:
        """Record the value row of tree level ``t`` (Hull's trick).

        Called (or fused inline) by :meth:`roll_levels` right after
        level ``t``'s value update when capture is on: levels 1 and 2
        hold everything delta/gamma/theta need, so a greeks run costs
        the same single pricing pass.  ``values`` is the active slice
        of the value buffer; a *copy* is stored — the buffer is about
        to be overwritten by level ``t - 1``.
        """
        levels[t] = np.array(values, copy=True)
