"""The always-available NumPy backend (the library's reference path).

This is the tiled ufunc loop that used to live inline in
:mod:`repro.core.batch_sim`, moved behind the
:class:`~repro.backends.base.KernelBackend` interface verbatim: same
tiles, same ufuncs, same operation order, writing through ``out=`` so
the loop allocates nothing after the first chunk.  Every other
backend is defined as "bit-identical to this one".
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend

__all__ = ["NumpyBackend"]


def _lease_tiles(workspace, n: int, steps: int, dtype):
    """Lease the five float tiles + mask the backward loop writes into.

    Tiles are *time-major*: shape ``(steps + 1, n)``, tree row ``k``
    along axis 0 and option along axis 1.  Narrowing the active range
    then slices leading rows — contiguous memory — so every ufunc in
    the loop runs one straight-line inner loop instead of ``n``
    strided row segments; on a cache-budgeted chunk this is worth
    almost 2x wall clock over the option-major layout (and transposing
    cannot change results: every operation is elementwise).
    """
    if workspace is None:
        from ..engine.workspace import Workspace

        workspace = Workspace()
    shape = (steps + 1, n)
    return (
        workspace.tile("v", shape, dtype),
        workspace.tile("s", shape, dtype),
        workspace.tile("s_new", shape, dtype),
        workspace.tile("cont", shape, dtype),
        workspace.tile("scratch", shape, dtype),
        workspace.tile("mask", shape, np.bool_),
    )


def _backward_induction(v, s, s_new, cont, scratch, mask,
                        pulldown, rp, rq, strike, sign, steps: int,
                        levels: "dict[int, np.ndarray] | None" = None) -> None:
    """Equation (1) backward loop over preallocated time-major tiles.

    Performs, step by step, the exact operation sequence of the
    expression form ``V = max(rp*V[k] + rq*V[k+1], sign*(pd*S - K))``
    — same ufuncs, same order, writing through ``out=`` so no
    temporaries are allocated.  ``pulldown`` is the family-correct
    spot roll factor ``1/u`` (equal to the paper's ``d`` under CRR);
    the active row range narrows exactly as work-items ``k > t`` idle
    out in the kernel; ``s`` and ``s_new`` ping-pong instead of
    copying.  The per-option constants arrive as ``(1, n)`` rows
    broadcast down the tree axis.

    When ``levels`` is a dict, the value rows of tree levels 1 and 2
    are captured into it (``levels[t]`` has shape ``(t + 1, n)``, in
    the working dtype) as the loop passes them — the Hull
    lattice-greeks trick: delta/gamma/theta fall out of these rows
    plus the root, so a greeks run costs the *same single pricing
    pass*.  Capture is a copy after the level's value update; it
    never changes the arithmetic of the loop.
    """
    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_act = s_new[:active]
        np.multiply(pulldown, s[:active], out=s_act)
        continuation = cont[:active]
        intrinsic = scratch[:active]
        exercise = mask[:active]
        np.multiply(rp, v[:active], out=continuation)
        np.multiply(rq, v[1:active + 1], out=intrinsic)
        np.add(continuation, intrinsic, out=continuation)
        np.subtract(s_act, strike, out=intrinsic)
        np.multiply(sign, intrinsic, out=intrinsic)
        np.greater(continuation, intrinsic, out=exercise)
        np.copyto(v[:active], intrinsic)
        np.copyto(v[:active], continuation, where=exercise)
        if levels is not None and t in (1, 2):
            KernelBackend.capture_levels(levels, t, v[:active])
        s, s_new = s_new, s


class NumpyBackend(KernelBackend):
    """Interpreted ufunc backend; the bitwise reference for all others."""

    name = "numpy"
    compiled = False

    @classmethod
    def available(cls) -> bool:
        return True

    def roll_levels(self, leaf_s, leaf_v, pulldown, rp, rq, strike, sign,
                    steps: int, workspace=None, capture: bool = False):
        leaf_v = np.asarray(leaf_v)
        n, _ = leaf_v.shape
        v, s, s_new, cont, scratch, mask = _lease_tiles(
            workspace, n, steps, leaf_v.dtype)
        np.copyto(v, leaf_v.T)
        # rows k = 0..N-1 keep a private S; node N never rolls
        np.copyto(s[:steps], np.asarray(leaf_s)[:, :steps].T)

        def row(column):
            # per-option constants as (1, n) rows broadcast down axis 0
            return np.asarray(column).reshape(1, n)

        levels: "dict[int, np.ndarray] | None" = {} if capture else None
        _backward_induction(v, s, s_new, cont, scratch, mask,
                            row(pulldown), row(rp), row(rq), row(strike),
                            row(sign), steps, levels=levels)
        prices = v[0].astype(np.float64)
        if capture:
            return (prices, levels[1].T.astype(np.float64),
                    levels[2].T.astype(np.float64))
        return prices, None, None
