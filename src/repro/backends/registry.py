"""Backend selection: explicit names, ``auto`` resolution, env override.

Two entry points with deliberately different contracts:

* :func:`get_backend` — a *pinned* lookup.  Ignores the environment,
  raises :class:`~repro.errors.BackendUnavailableError` when the
  backend cannot run here.  This is what parity tests use: asking for
  ``cnative`` and silently getting NumPy would turn every bitwise
  assertion into a tautology.
* :func:`resolve_backend` — the *runtime* policy.  The
  ``REPRO_BACKEND`` environment variable, when set, replaces the
  requested name outright (the operator's override beats the
  program's choice); ``auto`` walks the preference order
  ``numba > cnative > numpy``, swallowing unavailability, and always
  lands on NumPy — the floor that needs nothing but this library's
  hard dependencies.  Each skipped candidate is *recorded*: a bump of
  the process-wide ``repro_backend_fallback_total`` counter on every
  resolution, plus one :class:`RuntimeWarning` per process when the
  resolution landed on NumPy — a missing toolchain degrades loudly
  instead of silently costing 10x throughput, while the common
  numba-extra-not-installed case (landing on the compiled cnative
  backend) stays quiet.

Instances are cached per process (compiled backends pay their
compilation once), and so are construction *failures*, so ``auto``
does not re-attempt a missing toolchain on every engine start.
"""

from __future__ import annotations

import os
import warnings

from ..errors import BackendUnavailableError, ReproError
from .base import KernelBackend
from .cnative import CNativeBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend

__all__ = ["BACKENDS", "AUTO_ORDER", "get_backend", "resolve_backend",
           "available_backends"]

#: Valid values of ``EngineConfig.backend`` / ``REPRO_BACKEND``.
BACKENDS = ("auto", "numpy", "numba", "cnative")

#: Preference order ``auto`` walks (first available wins).
AUTO_ORDER = ("numba", "cnative", "numpy")

_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cnative": CNativeBackend,
}

_instances: "dict[str, KernelBackend]" = {}
_failures: "dict[str, BackendUnavailableError]" = {}
_fallbacks_warned: "set[str]" = set()


def _record_fallback(candidate: str, exc: BackendUnavailableError,
                     landed: str) -> None:
    """Make an ``auto`` skip observable: count always, warn on numpy.

    ``auto`` swallowing unavailability is the right *behaviour* (the
    service keeps answering), but a silently missing toolchain is how
    a 10x performance regression ships unnoticed.  Every skip bumps
    the process-wide ``repro_backend_fallback_total`` counter
    (labelled by the skipped backend).  The :class:`RuntimeWarning`
    (once per process per candidate) only fires when the resolution
    *landed on the interpreted floor*: numba being an optional extra,
    warning on every numba->cnative landing would train operators to
    ignore the signal that matters — compiled throughput lost.
    """
    from ..obs.keys import BACKEND_FALLBACK_TOTAL
    from ..obs.metrics import get_registry

    get_registry().counter(
        BACKEND_FALLBACK_TOTAL,
        "auto backend resolutions that skipped an unavailable backend",
    ).inc(backend=candidate)
    if landed == "numpy" and candidate not in _fallbacks_warned:
        _fallbacks_warned.add(candidate)
        warnings.warn(
            f"backend {candidate!r} is unavailable ({exc}); "
            f"'auto' fell back to the slower numpy backend",
            RuntimeWarning, stacklevel=4)


def get_backend(name: str) -> KernelBackend:
    """The backend called ``name``, constructed (or cached) for real.

    No environment override, no fallback: an unavailable backend
    raises :class:`BackendUnavailableError` every time (the failure is
    cached, so repeated probes stay cheap).
    """
    if name not in _CLASSES:
        raise ReproError(
            f"unknown backend {name!r}; known: "
            f"{sorted(_CLASSES)} (or 'auto')")
    cached = _instances.get(name)
    if cached is not None:
        return cached
    failure = _failures.get(name)
    if failure is not None:
        raise failure
    try:
        instance = _CLASSES[name]()
    except BackendUnavailableError as exc:
        _failures[name] = exc
        raise
    _instances[name] = instance
    return instance


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Pick the backend the runtime should use.

    ``REPRO_BACKEND`` (when set and non-empty) replaces ``name``; an
    explicit name resolves through :func:`get_backend` (and therefore
    raises when unavailable); ``auto`` returns the first available of
    :data:`AUTO_ORDER`.
    """
    override = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if override:
        name = override
    if name == "auto":
        skipped = []
        for candidate in AUTO_ORDER:
            try:
                backend = get_backend(candidate)
            except BackendUnavailableError as exc:
                skipped.append((candidate, exc))
                continue
            for skipped_name, skipped_exc in skipped:
                _record_fallback(skipped_name, skipped_exc, backend.name)
            return backend
        raise BackendUnavailableError(  # pragma: no cover - numpy always up
            "no kernel backend is available")
    return get_backend(name)


def available_backends() -> "tuple[str, ...]":
    """Names (in ``AUTO_ORDER``) that would construct successfully."""
    names = []
    for candidate in AUTO_ORDER:
        try:
            get_backend(candidate)
        except BackendUnavailableError:
            continue
        names.append(candidate)
    return tuple(names)
