"""Numba backend: the same fused kernel, JIT-compiled with ``prange``.

Mirrors the cnative per-option fused loop as ``@njit(parallel=True,
fastmath=False)`` kernels — ``fastmath=False`` is the bitwise-parity
precondition (no FMA contraction, no reassociation), ``parallel=True``
spreads independent option trees across cores.  The import is gated:
environments without numba (this library's floor is plain NumPy)
simply report the backend unavailable and ``auto`` resolution falls
through to :class:`~repro.backends.cnative.CNativeBackend` or the
NumPy path.  Install with ``pip install repro[compiled]``.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import BackendUnavailableError
from .base import KernelBackend

__all__ = ["NumbaBackend"]


def _import_numba():
    try:
        import numba
    except ImportError:
        return None
    return numba


def _build_kernel(numba):
    """Compile the fused roll; one lazily-specialised dispatcher."""

    @numba.njit(parallel=True, fastmath=False, cache=True)
    def roll(leaf_s, leaf_v, pulldown, rp, rq, strike, sign, steps,
             prices, level1, level2, capture):
        n = leaf_v.shape[0]
        cols = steps + 1
        for i in numba.prange(n):
            s = np.empty(cols, dtype=leaf_v.dtype)
            v = np.empty(cols, dtype=leaf_v.dtype)
            for k in range(steps):
                s[k] = leaf_s[i, k]
            for k in range(cols):
                v[k] = leaf_v[i, k]
            pd = pulldown[i]
            p = rp[i]
            q = rq[i]
            strike_i = strike[i]
            sg = sign[i]
            for t in range(steps - 1, -1, -1):
                for k in range(t + 1):
                    sk = pd * s[k]
                    cont = p * v[k] + q * v[k + 1]
                    intr = sg * (sk - strike_i)
                    v[k] = cont if cont > intr else intr
                    s[k] = sk
                if capture:
                    if t == 2:
                        level2[i, 0] = np.float64(v[0])
                        level2[i, 1] = np.float64(v[1])
                        level2[i, 2] = np.float64(v[2])
                    elif t == 1:
                        level1[i, 0] = np.float64(v[0])
                        level1[i, 1] = np.float64(v[1])
            prices[i] = np.float64(v[0])

    return roll


class NumbaBackend(KernelBackend):
    """JIT-compiled backend; available only when numba imports."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        numba = _import_numba()
        if numba is None:
            raise BackendUnavailableError(
                "numba is not installed; install the [compiled] extra "
                "(pip install repro[compiled]) or use the cnative/numpy "
                "backends")
        started = time.perf_counter()
        self._roll = _build_kernel(numba)
        # warm both dtype specialisations so compile cost is paid (and
        # measured) here, not inside the first timed pricing run
        for dtype in (np.float64, np.float32):
            leaf_s = np.ones((1, 3), dtype=dtype)
            leaf_v = np.ones((1, 3), dtype=dtype)
            ones = np.ones(1, dtype=dtype)
            self._roll(leaf_s, leaf_v, ones, ones, ones, ones, ones, 2,
                       np.empty(1), np.empty((1, 2)), np.empty((1, 3)),
                       False)
        self.compile_seconds = time.perf_counter() - started

    @classmethod
    def available(cls) -> bool:
        return _import_numba() is not None

    def roll_levels(self, leaf_s, leaf_v, pulldown, rp, rq, strike, sign,
                    steps: int, workspace=None, capture: bool = False):
        leaf_v = np.ascontiguousarray(leaf_v)
        leaf_s = np.ascontiguousarray(leaf_s)
        n = leaf_v.shape[0]
        dtype = leaf_v.dtype

        def column(values):
            return np.ascontiguousarray(
                np.asarray(values, dtype=dtype).reshape(-1))

        prices = np.empty(n, dtype=np.float64)
        level1 = np.empty((n, 2), dtype=np.float64)
        level2 = np.empty((n, 3), dtype=np.float64)
        self._roll(leaf_s, leaf_v, column(pulldown), column(rp), column(rq),
                   column(strike), column(sign), steps, prices, level1,
                   level2, bool(capture))
        if capture:
            return prices, level1, level2
        return prices, None, None
