"""Kernel backends: interchangeable backward-induction hot paths.

The :class:`KernelBackend` interface (see :mod:`.base`) isolates the
Equation (1) backward recurrence — the part of the paper's kernels
IV.A/IV.B below the leaves — so it can run as interpreted NumPy
(:mod:`.numpy_backend`, the always-available reference), as
runtime-compiled C (:mod:`.cnative`), or through numba
(:mod:`.numba_backend`, optional ``[compiled]`` extra).  All three
are bit-identical by construction; :mod:`.registry` owns selection
(``EngineConfig.backend``, ``REPRO_BACKEND``).
"""

from .base import KernelBackend
from .cnative import CNativeBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend
from .registry import (
    AUTO_ORDER,
    BACKENDS,
    available_backends,
    get_backend,
    resolve_backend,
)

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "CNativeBackend",
    "NumbaBackend",
    "BACKENDS",
    "AUTO_ORDER",
    "get_backend",
    "resolve_backend",
    "available_backends",
]
