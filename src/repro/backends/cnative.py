"""Compiled C backend: the fused per-option backward-induction kernel.

This is the software rendition of the paper's dataflow pipeline: where
the NumPy path dispatches ~9 ufuncs per tree level (each a separate
pass over the level's memory), the generated C kernel fuses the spot
roll, the discounted expectation and the American exercise-compare
into **one pass per level per option**, with the whole working set
(two ``steps + 1`` vectors) resident in L1 — the same fusion the
OpenCL kernels get from channels/pipes on the FPGA.

Bitwise contract.  Every operation in the recurrence is elementwise
with a fixed per-element order, so the per-option scalar loop computes
exactly the numbers the time-major ufunc loop computes — *provided*
the compiler neither contracts multiply-add into FMA nor reorders
float math.  The kernel is therefore compiled with ``-O3 -ffp-contract=off``
and **without** any fast-math flag; auto-vectorisation is safe (it
preserves per-element operation order) and is where the speedup comes
from.  The comparison ``(cont > intr) ? cont : intr`` matches
``np.greater`` + masked ``copyto`` including NaN semantics (NaN
compares false, so the intrinsic branch wins, exactly like the NumPy
sequence).  Level capture widens through an explicit ``(double)``
cast, matching ``.astype(np.float64)``.

The shared object is generated, compiled with the system ``cc``
(overridable via ``REPRO_CC`` or ``CC`` — an explicit override wins
outright, and a broken one fails the backend rather than silently
picking a different compiler) and cached on disk keyed by the source
hash, so every process after the first loads it in milliseconds;
:attr:`CNativeBackend.compile_seconds` reports whatever this process
actually paid.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import time

import numpy as np

from ..errors import BackendUnavailableError
from .base import KernelBackend

__all__ = ["CNativeBackend", "kernel_source"]

#: Bump when the generated C changes — keys the on-disk .so cache.
_SOURCE_VERSION = 1

_KERNEL_TEMPLATE = """
/* Fused binomial backward induction over one batch of options.
 *
 * Per option: copy the leaf rows into the caller's scratch vectors,
 * then roll Equation (1) from the leaves to the root in one fused
 * loop per level.  Operation order per element matches the NumPy
 * reference ufunc sequence exactly; see the module docstring for the
 * bitwise-parity argument.  Compile with -ffp-contract=off and no
 * fast-math.
 */
void roll_{tag}(const long n, const long steps, const long ls_stride,
                const {ctype} *leaf_s, const {ctype} *leaf_v,
                const {ctype} *pulldown, const {ctype} *rp,
                const {ctype} *rq, const {ctype} *strike,
                const {ctype} *sign, {ctype} *s, {ctype} *v,
                double *prices, double *level1, double *level2,
                const int capture)
{{
    const long cols = steps + 1;
    for (long i = 0; i < n; ++i) {{
        const {ctype} pd = pulldown[i];
        const {ctype} p = rp[i];
        const {ctype} q = rq[i];
        const {ctype} K = strike[i];
        const {ctype} sg = sign[i];
        const {ctype} *ls = leaf_s + i * ls_stride;
        const {ctype} *lv = leaf_v + i * cols;
        for (long k = 0; k < steps; ++k) s[k] = ls[k];
        for (long k = 0; k < cols; ++k) v[k] = lv[k];
        for (long t = steps - 1; t >= 0; --t) {{
            const long active = t + 1;
            for (long k = 0; k < active; ++k) {{
                const {ctype} sk = pd * s[k];
                const {ctype} cont = p * v[k] + q * v[k + 1];
                const {ctype} intr = sg * (sk - K);
                v[k] = (cont > intr) ? cont : intr;
                s[k] = sk;
            }}
            if (capture) {{
                if (t == 2) {{
                    level2[i * 3 + 0] = (double)v[0];
                    level2[i * 3 + 1] = (double)v[1];
                    level2[i * 3 + 2] = (double)v[2];
                }} else if (t == 1) {{
                    level1[i * 2 + 0] = (double)v[0];
                    level1[i * 2 + 1] = (double)v[1];
                }}
            }}
        }}
        prices[i] = (double)v[0];
    }}
}}
"""


def kernel_source() -> str:
    """The complete C translation unit (one kernel per dtype)."""
    parts = [f"/* repro cnative kernel, source version {_SOURCE_VERSION} */"]
    for tag, ctype in (("f64", "double"), ("f32", "float")):
        parts.append(_KERNEL_TEMPLATE.format(tag=tag, ctype=ctype))
    return "\n".join(parts)


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        home = os.path.expanduser("~")
        base = (os.path.join(home, ".cache") if home != "~"
                else tempfile.gettempdir())
    return os.path.join(base, "repro", "cnative")


def _compiler() -> "str | None":
    from shutil import which

    for var in ("REPRO_CC", "CC"):
        override = os.environ.get(var, "").strip()
        if override:
            # The operator's override wins outright: a broken override
            # surfaces as a compile failure (and thence an ``auto``
            # fallback to NumPy), never as a silent fall-through to a
            # different system compiler the operator didn't pick.
            return which(override) or override
    for name in ("cc", "gcc", "clang"):
        path = which(name)
        if path:
            return path
    return None


def _build_library(source: str) -> str:
    """Compile ``source`` to a cached .so; returns its path.

    The object is keyed by the source hash so a source change never
    reuses a stale binary; the build lands in a temp file first and is
    published with an atomic rename, making concurrent builders safe.
    """
    digest = hashlib.blake2b(source.encode("utf-8"),
                             digest_size=16).hexdigest()
    directory = _cache_dir()
    library = os.path.join(directory, f"kernels-{digest}.so")
    if os.path.exists(library):
        return library
    compiler = _compiler()
    if compiler is None:
        raise BackendUnavailableError(
            "cnative backend needs a C compiler (cc/gcc/clang) on PATH")
    os.makedirs(directory, exist_ok=True)
    c_path = os.path.join(directory, f"kernels-{digest}.c")
    with open(c_path, "w", encoding="utf-8") as handle:
        handle.write(source)
    scratch = tempfile.NamedTemporaryFile(
        dir=directory, suffix=".so", delete=False)
    scratch.close()
    # -ffp-contract=off: no FMA contraction, the bitwise-parity
    # precondition.  No -ffast-math, ever.
    command = [compiler, "-O3", "-fPIC", "-shared", "-ffp-contract=off",
               c_path, "-o", scratch.name]
    try:
        proc = subprocess.run(command, capture_output=True, text=True)
    except OSError as exc:
        os.unlink(scratch.name)
        raise BackendUnavailableError(
            f"cnative compiler {compiler!r} could not run: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(scratch.name)
        raise BackendUnavailableError(
            f"cnative kernel compilation failed "
            f"({' '.join(command)}):\n{proc.stderr.strip()}")
    os.replace(scratch.name, library)
    return library


class CNativeBackend(KernelBackend):
    """Runtime-compiled C kernels loaded through ``ctypes``."""

    name = "cnative"
    compiled = True

    def __init__(self) -> None:
        started = time.perf_counter()
        library_path = _build_library(kernel_source())
        try:
            library = ctypes.CDLL(library_path)
        except OSError as exc:  # pragma: no cover - corrupt cache entry
            raise BackendUnavailableError(
                f"cnative kernel library failed to load: {exc}") from exc
        self._rolls = {}
        for dtype, tag, ctype in ((np.dtype(np.float64), "f64",
                                   ctypes.c_double),
                                  (np.dtype(np.float32), "f32",
                                   ctypes.c_float)):
            roll = getattr(library, f"roll_{tag}")
            pointer = ctypes.POINTER(ctype)
            double_p = ctypes.POINTER(ctypes.c_double)
            roll.argtypes = [ctypes.c_long, ctypes.c_long, ctypes.c_long,
                             pointer, pointer, pointer, pointer, pointer,
                             pointer, pointer, pointer, pointer,
                             double_p, double_p, double_p, ctypes.c_int]
            roll.restype = None
            self._rolls[dtype] = (roll, pointer)
        self.compile_seconds = time.perf_counter() - started

    @classmethod
    def available(cls) -> bool:
        return _compiler() is not None

    def roll_levels(self, leaf_s, leaf_v, pulldown, rp, rq, strike, sign,
                    steps: int, workspace=None, capture: bool = False):
        leaf_v = np.ascontiguousarray(leaf_v)
        leaf_s = np.asarray(leaf_s)
        if not leaf_s.flags.c_contiguous:
            leaf_s = np.ascontiguousarray(leaf_s)
        n, cols = leaf_v.shape
        dtype = leaf_v.dtype
        try:
            roll, pointer = self._rolls[dtype]
        except KeyError:
            raise BackendUnavailableError(
                f"cnative backend has no kernel for dtype {dtype}") from None
        if workspace is None:
            from ..engine.workspace import Workspace

            workspace = Workspace()
        # per-option scratch: two (steps+1) vectors, L1-resident
        s = workspace.tile("cnative_s", (cols,), dtype)
        v = workspace.tile("cnative_v", (cols,), dtype)
        prices = np.empty(n, dtype=np.float64)
        level1 = np.empty((n, 2), dtype=np.float64) if capture else None
        level2 = np.empty((n, 3), dtype=np.float64) if capture else None

        def column(values):
            return np.ascontiguousarray(
                np.asarray(values, dtype=dtype).reshape(-1))

        def as_pointer(array):
            return array.ctypes.data_as(pointer)

        double_p = ctypes.POINTER(ctypes.c_double)
        null = ctypes.cast(None, double_p)
        roll(ctypes.c_long(n), ctypes.c_long(steps),
             ctypes.c_long(leaf_s.shape[1]),
             as_pointer(leaf_s), as_pointer(leaf_v),
             as_pointer(column(pulldown)), as_pointer(column(rp)),
             as_pointer(column(rq)), as_pointer(column(strike)),
             as_pointer(column(sign)), as_pointer(s), as_pointer(v),
             prices.ctypes.data_as(double_p),
             level1.ctypes.data_as(double_p) if capture else null,
             level2.ctypes.data_as(double_p) if capture else null,
             ctypes.c_int(1 if capture else 0))
        return prices, level1, level2
