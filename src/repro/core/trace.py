"""Event-timeline rendering: a text Gantt of a queue's execution.

Figures 3 and 4 of the paper are dataflow diagrams; this module draws
the *temporal* counterpart from a simulated run — each command as a bar
on its engine's lane (transfers vs kernel launches), scaled by the
simulated clock.  Combined with the overlap queue it makes visible at
a glance why kernel IV.A's ping-pong chain serialises even with a free
DMA engine.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError
from ..opencl.profiling import Event
from ..opencl.types import CommandType

__all__ = ["render_timeline"]

_LANES = {
    CommandType.WRITE_BUFFER: "dma",
    CommandType.READ_BUFFER: "dma",
    CommandType.COPY_BUFFER: "dma",
    CommandType.NDRANGE_KERNEL: "kernel",
    CommandType.MARKER: "host",
}

_GLYPHS = {
    CommandType.WRITE_BUFFER: "W",
    CommandType.READ_BUFFER: "R",
    CommandType.COPY_BUFFER: "C",
    CommandType.NDRANGE_KERNEL: "K",
    CommandType.MARKER: "|",
}


def render_timeline(events: Sequence[Event], width: int = 72,
                    max_events: int | None = None) -> str:
    """Render events as per-engine lanes over the simulated clock.

    :param events: profiled events of one queue (in enqueue order).
    :param width: character width of the time axis.
    :param max_events: truncate to the first N events (None = all).
    """
    if not events:
        raise ReproError("no events to render")
    shown = list(events if max_events is None else events[:max_events])
    t0 = min(e.start_ns for e in shown)
    t1 = max(e.end_ns for e in shown)
    span = max(t1 - t0, 1.0)

    def column(t: float) -> int:
        return min(width - 1, int((t - t0) / span * width))

    lanes = {"dma": [" "] * width, "kernel": [" "] * width,
             "host": [" "] * width}
    for event in shown:
        lane = lanes[_LANES.get(event.command_type, "host")]
        glyph = _GLYPHS.get(event.command_type, "?")
        lo = column(event.start_ns)
        hi = max(column(event.end_ns), lo)
        for i in range(lo, hi + 1):
            lane[i] = glyph

    out = [f"timeline: {len(shown)} events over "
           f"{span / 1e6:.3f} ms (W=write R=read C=copy K=kernel)"]
    for name in ("dma", "kernel", "host"):
        out.append(f"  {name:>6} |{''.join(lanes[name])}|")
    out.append(f"         {'^' + f'{t0 / 1e6:.3f} ms':<{width // 2}}"
               f"{f'{t1 / 1e6:.3f} ms^':>{width // 2}}")
    if max_events is not None and len(events) > max_events:
        out.append(f"  ... {len(events) - max_events} later events omitted")
    return "\n".join(out)
