"""Vectorised execution of the kernels' exact arithmetic.

The coroutine-based simulator in :mod:`repro.core.host_b` is faithful
but interprets every work-item in Python, which caps it at small trees.
The paper's accuracy results need the full configuration — N=1024 over
thousands of options — so this module re-expresses the *same operation
sequence* as array programs:

* :func:`simulate_kernel_b_batch` — kernel IV.B semantics: in-device
  leaf initialisation through the profile's ``pow`` (the flawed
  operator on the FPGA profile), then the barriered backward loop.
* :func:`simulate_kernel_a_batch` — kernel IV.A semantics: leaves from
  exact host doubles, the same Equation (1) recurrence on device.

Integration tests assert bit-for-bit agreement with the coroutine
executor at small N for every math profile, which is what licenses
using these fast paths in the accuracy experiments.

Leaf construction stays here (it owns the profile's ``pow``/``cast``
semantics — the whole point of kernel IV.B); everything below the
leaves runs through a :class:`~repro.backends.KernelBackend`.  The
default backend is the NumPy reference path, which performs the exact
historical operation sequence in preallocated
:class:`~repro.engine.workspace.Workspace` tiles; compiled backends
(``cnative``/``numba``) are bit-identical by contract and verified by
``tests/backends``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from .faithful_math import EXACT_DOUBLE, MathProfile
from .kernel_a import build_leaves_a_batch, build_params_a
from .kernel_b import build_params_b

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..backends import KernelBackend
    from ..engine.workspace import Workspace

__all__ = [
    "simulate_kernel_b_batch",
    "simulate_kernel_a_batch",
    "leaf_exponents_b",
]


@lru_cache(maxsize=128)
def leaf_exponents_b(steps: int) -> np.ndarray:
    """Kernel IV.B's leaf exponents ``N - 2k`` for ``k = 0..N``.

    ``k = N`` is the extra leaf the last work-item initialises
    (exponent ``-N``).  Built once per ``steps`` value with ``arange``
    — the exponents are shared by every chunk of a batch stream, so
    they are hoisted out of the per-chunk path and cached read-only.
    """
    exponents = float(steps) - 2.0 * np.arange(steps + 1, dtype=np.float64)
    exponents.setflags(write=False)
    return exponents


def _roll_backend(backend: "KernelBackend | None") -> "KernelBackend":
    """Default to the NumPy reference path when no backend is pinned.

    Direct callers of the simulators (accuracy experiments, the bench
    baselines) therefore keep today's behaviour exactly; the engine
    passes its resolved backend explicitly.
    """
    if backend is not None:
        return backend
    from ..backends import get_backend

    return get_backend("numpy")


def simulate_kernel_b_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    workspace: "Workspace | None" = None,
    capture_levels: bool = False,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Kernel IV.B arithmetic, vectorised across the whole batch.

    Matrix layout: row = option (work-group), column = tree row
    (work-item).  The backward loop narrows the active column range
    exactly as work-items ``k > t`` idle out in the kernel.

    :param workspace: optional preallocated tile pool; pass the same
        one across calls (e.g. per engine worker) to price a stream of
        chunks without reallocating the ``S``/``V`` tiles.
    :param capture_levels: when True, return
        ``(prices, level1, level2)`` where ``level1``/``level2`` are
        float64 ``(n, 2)``/``(n, 3)`` copies of the value rows at tree
        levels 1 and 2 — the inputs of the lattice delta/gamma/theta
        formulas, captured from the *same* pricing pass.  Requires
        ``steps >= 3``.
    :param backend: the :class:`~repro.backends.KernelBackend` to run
        the backward roll on; ``None`` pins the NumPy reference path.
    """
    if steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    if capture_levels and steps < 3:
        raise ReproError("level capture needs at least 3 steps")
    if not options:
        raise ReproError("empty option batch")
    if family is not LatticeFamily.CRR:
        raise ReproError(
            "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
            "exploits the CRR recombination u*d = 1 (paper Figure 1); "
            "use kernel IV.A (host-computed leaves) for other families"
        )
    backend = _roll_backend(backend)
    params = build_params_b(options, steps, family)
    cast = profile.cast

    s0 = cast(params[:, 0:1])
    up = params[:, 1:2]
    down = cast(params[:, 2:3])
    rp = cast(params[:, 3:4])
    rq = cast(params[:, 4:5])
    strike = cast(params[:, 5:6])
    sign = cast(params[:, 6:7])

    # Leaf initialisation: S[N,k] = s0 * pow(u, N - 2k), device pow.
    exponents = leaf_exponents_b(steps)
    leaf_s = cast(s0 * profile.pow_(up, exponents[None, :]))
    leaf_v = backend.leaf_payoffs(leaf_s, strike, sign, cast)

    prices, level1, level2 = backend.roll_levels(
        leaf_s, leaf_v, down, rp, rq, strike, sign, steps,
        workspace=workspace, capture=capture_levels)
    if capture_levels:
        return prices, level1, level2
    return prices


def simulate_kernel_a_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    workspace: "Workspace | None" = None,
    capture_levels: bool = False,
    backend: "KernelBackend | None" = None,
) -> np.ndarray:
    """Kernel IV.A arithmetic, vectorised across the batch.

    Leaves come from exact host doubles (cast into the device's
    working precision on upload); each batch applies Equation (1) to
    one level.  Option pipelining does not change the arithmetic, so
    the vectorised form prices each option's tree directly.

    :param workspace: optional preallocated tile pool (see
        :func:`simulate_kernel_b_batch`).
    :param capture_levels: when True, return
        ``(prices, level1, level2)`` — see
        :func:`simulate_kernel_b_batch`; requires ``steps >= 3``.
    :param backend: the :class:`~repro.backends.KernelBackend` to run
        the backward roll on; ``None`` pins the NumPy reference path.
    """
    if steps < 2:
        raise ReproError("kernel IV.A needs at least 2 steps")
    if capture_levels and steps < 3:
        raise ReproError("level capture needs at least 3 steps")
    if not options:
        raise ReproError("empty option batch")
    backend = _roll_backend(backend)
    params = build_params_a(options, steps, family)
    cast = profile.cast

    rp = cast(params[:, 0:1])
    rq = cast(params[:, 1:2])
    pulldown = cast(params[:, 2:3])
    strike = cast(params[:, 3:4])
    sign = cast(params[:, 4:5])

    # Host-exact leaves (S and V), cast into the device's working
    # precision when "uploaded".
    leaf_s, leaf_v = build_leaves_a_batch(options, steps, family)
    prices, level1, level2 = backend.roll_levels(
        cast(leaf_s), cast(leaf_v), pulldown, rp, rq, strike, sign, steps,
        workspace=workspace, capture=capture_levels)
    if capture_levels:
        return prices, level1, level2
    return prices
