"""Vectorised execution of the kernels' exact arithmetic.

The coroutine-based simulator in :mod:`repro.core.host_b` is faithful
but interprets every work-item in Python, which caps it at small trees.
The paper's accuracy results need the full configuration — N=1024 over
thousands of options — so this module re-expresses the *same operation
sequence* as numpy array programs:

* :func:`simulate_kernel_b_batch` — kernel IV.B semantics: in-device
  leaf initialisation through the profile's ``pow`` (the flawed
  operator on the FPGA profile), then the barriered backward loop.
* :func:`simulate_kernel_a_batch` — kernel IV.A semantics: leaves from
  exact host doubles, the same Equation (1) recurrence on device.

Integration tests assert bit-for-bit agreement with the coroutine
executor at small N for every math profile, which is what licenses
using these fast paths in the accuracy experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from .faithful_math import EXACT_DOUBLE, MathProfile
from .kernel_a import build_leaves_a, build_params_a
from .kernel_b import build_params_b

__all__ = ["simulate_kernel_b_batch", "simulate_kernel_a_batch"]


def simulate_kernel_b_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """Kernel IV.B arithmetic, vectorised across the whole batch.

    Matrix layout: row = option (work-group), column = tree row
    (work-item).  The backward loop narrows the active column range
    exactly as work-items ``k > t`` idle out in the kernel.
    """
    if steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    if family is not LatticeFamily.CRR:
        raise ReproError(
            "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
            "exploits the CRR recombination u*d = 1 (paper Figure 1); "
            "use kernel IV.A (host-computed leaves) for other families"
        )
    params = build_params_b(options, steps, family)
    cast = profile.cast

    s0 = cast(params[:, 0:1])
    up = params[:, 1:2]
    down = cast(params[:, 2:3])
    rp = cast(params[:, 3:4])
    rq = cast(params[:, 4:5])
    strike = cast(params[:, 5:6])
    sign = cast(params[:, 6:7])

    # Leaf initialisation: S[N,k] = s0 * pow(u, N - 2k), device pow.
    exponents = np.array([float(steps - 2 * k) for k in range(steps)]
                         + [float(-steps)])
    s = cast(s0 * profile.pow_(up, exponents[None, :]))
    payoff = cast(sign * (s - strike))
    v = np.where(payoff > 0.0, payoff, cast(0.0)).astype(profile.dtype)
    s = s[:, :steps]  # rows k=0..N-1 keep a private S; the extra leaf does not

    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_active = cast(down * s[:, :active])
        continuation = cast(
            cast(rp * v[:, :active]) + cast(rq * v[:, 1:active + 1])
        )
        intrinsic = cast(sign * (s_active - strike))
        v[:, :active] = np.where(
            continuation > intrinsic, continuation, intrinsic
        )
        s[:, :active] = s_active

    return v[:, 0].astype(np.float64)


def simulate_kernel_a_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """Kernel IV.A arithmetic, vectorised across the batch.

    Leaves come from exact host doubles (cast into the device's
    working precision on upload); each batch applies Equation (1) to
    one level.  Option pipelining does not change the arithmetic, so
    the vectorised form prices each option's tree directly.
    """
    if steps < 2:
        raise ReproError("kernel IV.A needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    params = build_params_a(options, steps, family)
    cast = profile.cast

    rp = cast(params[:, 0:1])
    rq = cast(params[:, 1:2])
    down = cast(params[:, 2:3])
    strike = cast(params[:, 3:4])
    sign = cast(params[:, 4:5])

    # Host-exact leaves (S and V), cast into the device's working
    # precision when "uploaded".
    leaf_pairs = [build_leaves_a(o, steps, family) for o in options]
    s = cast(np.stack([pair[0] for pair in leaf_pairs]))
    v = cast(np.stack([pair[1] for pair in leaf_pairs])).astype(profile.dtype)

    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_active = cast(down * s[:, :active])
        continuation = cast(
            cast(rp * v[:, :active]) + cast(rq * v[:, 1:active + 1])
        )
        intrinsic = cast(sign * (s_active - strike))
        v = np.where(continuation > intrinsic, continuation, intrinsic).astype(
            profile.dtype
        )
        s = s_active

    return v[:, 0].astype(np.float64)
