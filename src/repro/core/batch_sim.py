"""Vectorised execution of the kernels' exact arithmetic.

The coroutine-based simulator in :mod:`repro.core.host_b` is faithful
but interprets every work-item in Python, which caps it at small trees.
The paper's accuracy results need the full configuration — N=1024 over
thousands of options — so this module re-expresses the *same operation
sequence* as numpy array programs:

* :func:`simulate_kernel_b_batch` — kernel IV.B semantics: in-device
  leaf initialisation through the profile's ``pow`` (the flawed
  operator on the FPGA profile), then the barriered backward loop.
* :func:`simulate_kernel_a_batch` — kernel IV.A semantics: leaves from
  exact host doubles, the same Equation (1) recurrence on device.

Integration tests assert bit-for-bit agreement with the coroutine
executor at small N for every math profile, which is what licenses
using these fast paths in the accuracy experiments.

Both simulators run their backward loop in preallocated
:class:`~repro.engine.workspace.Workspace` tiles (every ufunc writes
through ``out=``), so a caller pricing many chunks — the batched
pricing engine — can reuse one tile set across the whole stream
instead of reallocating ~``batch x (N+1)`` temporaries per call.  The
tiled loop performs the exact same operation sequence as the naive
expression form; the parity tests in ``tests/engine`` hold it to
bit-identical output.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from .faithful_math import EXACT_DOUBLE, MathProfile
from .kernel_a import build_leaves_a_batch, build_params_a
from .kernel_b import build_params_b

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..engine.workspace import Workspace

__all__ = [
    "simulate_kernel_b_batch",
    "simulate_kernel_a_batch",
    "leaf_exponents_b",
]


@lru_cache(maxsize=128)
def leaf_exponents_b(steps: int) -> np.ndarray:
    """Kernel IV.B's leaf exponents ``N - 2k`` for ``k = 0..N``.

    ``k = N`` is the extra leaf the last work-item initialises
    (exponent ``-N``).  Built once per ``steps`` value with ``arange``
    — the exponents are shared by every chunk of a batch stream, so
    they are hoisted out of the per-chunk path and cached read-only.
    """
    exponents = float(steps) - 2.0 * np.arange(steps + 1, dtype=np.float64)
    exponents.setflags(write=False)
    return exponents


def _lease_tiles(workspace, n: int, steps: int, dtype):
    """Lease the five float tiles + mask the backward loop writes into.

    Tiles are *time-major*: shape ``(steps + 1, n)``, tree row ``k``
    along axis 0 and option along axis 1.  Narrowing the active range
    then slices leading rows — contiguous memory — so every ufunc in
    the loop runs one straight-line inner loop instead of ``n``
    strided row segments; on a cache-budgeted chunk this is worth
    almost 2x wall clock over the option-major layout (and transposing
    cannot change results: every operation is elementwise).
    """
    if workspace is None:
        from ..engine.workspace import Workspace

        workspace = Workspace()
    shape = (steps + 1, n)
    return (
        workspace.tile("v", shape, dtype),
        workspace.tile("s", shape, dtype),
        workspace.tile("s_new", shape, dtype),
        workspace.tile("cont", shape, dtype),
        workspace.tile("scratch", shape, dtype),
        workspace.tile("mask", shape, np.bool_),
    )


def _backward_induction(v, s, s_new, cont, scratch, mask,
                        pulldown, rp, rq, strike, sign, steps: int,
                        levels: "dict[int, np.ndarray] | None" = None) -> None:
    """Equation (1) backward loop over preallocated time-major tiles.

    Performs, step by step, the exact operation sequence of the
    expression form ``V = max(rp*V[k] + rq*V[k+1], sign*(pd*S - K))``
    — same ufuncs, same order, writing through ``out=`` so no
    temporaries are allocated.  ``pulldown`` is the family-correct
    spot roll factor ``1/u`` (equal to the paper's ``d`` under CRR);
    the active row range narrows exactly as work-items ``k > t`` idle
    out in the kernel; ``s`` and ``s_new`` ping-pong instead of
    copying.  The per-option constants arrive as ``(1, n)`` rows
    broadcast down the tree axis.

    When ``levels`` is a dict, the value rows of tree levels 1 and 2
    are copied into it (``levels[t]`` has shape ``(t + 1, n)``, in the
    working dtype) as the loop passes them — the Hull lattice-greeks
    trick: delta/gamma/theta fall out of these rows plus the root, so
    a greeks run costs the *same single pricing pass*.  Capture is a
    copy after the level's value update; it never changes the
    arithmetic of the loop.
    """
    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_act = s_new[:active]
        np.multiply(pulldown, s[:active], out=s_act)
        continuation = cont[:active]
        intrinsic = scratch[:active]
        exercise = mask[:active]
        np.multiply(rp, v[:active], out=continuation)
        np.multiply(rq, v[1:active + 1], out=intrinsic)
        np.add(continuation, intrinsic, out=continuation)
        np.subtract(s_act, strike, out=intrinsic)
        np.multiply(sign, intrinsic, out=intrinsic)
        np.greater(continuation, intrinsic, out=exercise)
        np.copyto(v[:active], intrinsic)
        np.copyto(v[:active], continuation, where=exercise)
        if levels is not None and t in (1, 2):
            levels[t] = v[:active].copy()
        s, s_new = s_new, s


def simulate_kernel_b_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    workspace: "Workspace | None" = None,
    capture_levels: bool = False,
) -> np.ndarray:
    """Kernel IV.B arithmetic, vectorised across the whole batch.

    Matrix layout: row = option (work-group), column = tree row
    (work-item).  The backward loop narrows the active column range
    exactly as work-items ``k > t`` idle out in the kernel.

    :param workspace: optional preallocated tile pool; pass the same
        one across calls (e.g. per engine worker) to price a stream of
        chunks without reallocating the ``S``/``V`` tiles.
    :param capture_levels: when True, return
        ``(prices, level1, level2)`` where ``level1``/``level2`` are
        float64 ``(n, 2)``/``(n, 3)`` copies of the value rows at tree
        levels 1 and 2 — the inputs of the lattice delta/gamma/theta
        formulas, captured from the *same* pricing pass.  Requires
        ``steps >= 3``.
    """
    if steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    if capture_levels and steps < 3:
        raise ReproError("level capture needs at least 3 steps")
    if not options:
        raise ReproError("empty option batch")
    if family is not LatticeFamily.CRR:
        raise ReproError(
            "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
            "exploits the CRR recombination u*d = 1 (paper Figure 1); "
            "use kernel IV.A (host-computed leaves) for other families"
        )
    params = build_params_b(options, steps, family)
    cast = profile.cast

    s0 = cast(params[:, 0:1])
    up = params[:, 1:2]
    down = cast(params[:, 2:3])
    rp = cast(params[:, 3:4])
    rq = cast(params[:, 4:5])
    strike = cast(params[:, 5:6])
    sign = cast(params[:, 6:7])

    # Leaf initialisation: S[N,k] = s0 * pow(u, N - 2k), device pow.
    exponents = leaf_exponents_b(steps)
    leaf_s = cast(s0 * profile.pow_(up, exponents[None, :]))
    payoff = cast(sign * (leaf_s - strike))

    n = leaf_s.shape[0]
    v, s, s_new, cont, scratch, mask = _lease_tiles(
        workspace, n, steps, profile.dtype)
    np.copyto(v, np.where(payoff > 0.0, payoff, cast(0.0)).T)
    # rows k=0..N-1 keep a private S; the extra leaf does not
    np.copyto(s[:steps], leaf_s[:, :steps].T)

    levels: "dict[int, np.ndarray] | None" = {} if capture_levels else None
    _backward_induction(v, s, s_new, cont, scratch, mask,
                        down.T, rp.T, rq.T, strike.T, sign.T, steps,
                        levels=levels)
    prices = v[0].astype(np.float64)
    if capture_levels:
        return prices, levels[1].T.astype(np.float64), \
            levels[2].T.astype(np.float64)
    return prices


def simulate_kernel_a_batch(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    workspace: "Workspace | None" = None,
    capture_levels: bool = False,
) -> np.ndarray:
    """Kernel IV.A arithmetic, vectorised across the batch.

    Leaves come from exact host doubles (cast into the device's
    working precision on upload); each batch applies Equation (1) to
    one level.  Option pipelining does not change the arithmetic, so
    the vectorised form prices each option's tree directly.

    :param workspace: optional preallocated tile pool (see
        :func:`simulate_kernel_b_batch`).
    :param capture_levels: when True, return
        ``(prices, level1, level2)`` — see
        :func:`simulate_kernel_b_batch`; requires ``steps >= 3``.
    """
    if steps < 2:
        raise ReproError("kernel IV.A needs at least 2 steps")
    if capture_levels and steps < 3:
        raise ReproError("level capture needs at least 3 steps")
    if not options:
        raise ReproError("empty option batch")
    params = build_params_a(options, steps, family)
    cast = profile.cast

    rp = cast(params[:, 0:1])
    rq = cast(params[:, 1:2])
    pulldown = cast(params[:, 2:3])
    strike = cast(params[:, 3:4])
    sign = cast(params[:, 4:5])

    # Host-exact leaves (S and V), cast into the device's working
    # precision when "uploaded".
    leaf_s, leaf_v = build_leaves_a_batch(options, steps, family)
    n = leaf_s.shape[0]
    v, s, s_new, cont, scratch, mask = _lease_tiles(
        workspace, n, steps, profile.dtype)
    np.copyto(v, cast(leaf_v).T)
    np.copyto(s, cast(leaf_s).T)

    levels: "dict[int, np.ndarray] | None" = {} if capture_levels else None
    _backward_induction(v, s, s_new, cont, scratch, mask,
                        pulldown.T, rp.T, rq.T, strike.T, sign.T, steps,
                        levels=levels)
    prices = v[0].astype(np.float64)
    if capture_levels:
        return prices, levels[1].T.astype(np.float64), \
            levels[2].T.astype(np.float64)
    return prices
