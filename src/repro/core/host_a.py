"""Host program for kernel IV.A (Figure 3's "external operations").

Drives the simulated OpenCL device exactly as the paper describes:
*"Four instructions are executed by the host during each batch:
initializing the data necessary to fill the first addresses of the
input buffer, writing this data to the device global memory,
enqueueing the kernels and reading a result from the global memory."*

Every batch advances the option pipeline by one tree level: the host
writes the entering option's (host-computed) leaves into the read
buffer, launches ``N(N+1)/2`` work-items, reads back results — either
the *full* destination buffer (the paper's original kernel, whose
throughput collapses under the ~buffer-size/batch PCIe readback) or
only the root slot (the paper's "modified version ... with a reduced
number of read operations", 14x faster on the GPU) — and switches the
ping-pong buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from ..opencl import CommandQueue, Context, Device, MemFlag, TransferDirection
from .kernel_a import (
    build_leaves_a,
    build_params_a,
    interior_nodes,
    kernel_a_work_item,
    level_of_slot_table,
    pipeline_slots,
)

__all__ = ["ReadbackMode", "KernelARun", "HostProgramA"]


class ReadbackMode:
    """What the host reads back between batches."""

    #: original kernel IV.A: one full ping-pong buffer per batch
    FULL_BUFFER = "full_buffer"
    #: the paper's modified variant: only the completed root value
    RESULT_ONLY = "result_only"

    _VALID = (FULL_BUFFER, RESULT_ONLY)

    @classmethod
    def check(cls, value: str) -> str:
        if value not in cls._VALID:
            raise ReproError(f"readback must be one of {cls._VALID}, got {value!r}")
        return value


@dataclass(frozen=True)
class KernelARun:
    """Outcome of pricing a batch through the kernel IV.A pipeline."""

    prices: np.ndarray
    batches: int
    simulated_time_s: float
    bytes_read: int
    bytes_written: int
    kernel_launches: int

    @property
    def options_per_second(self) -> float:
        """Simulated throughput of this run."""
        if self.simulated_time_s <= 0:
            return float("inf")
        return len(self.prices) / self.simulated_time_s


class HostProgramA:
    """The kernel IV.A host application bound to one simulated device.

    :param device: simulated OpenCL device (timing model included).
    :param steps: tree discretisation ``N``.
    :param readback: :class:`ReadbackMode` variant.
    :param family: lattice parameterisation for the host-computed
        constants and leaves.
    """

    def __init__(
        self,
        device: Device,
        steps: int,
        readback: str = ReadbackMode.FULL_BUFFER,
        family: LatticeFamily = LatticeFamily.CRR,
        overlap: bool = False,
    ):
        """``overlap=True`` gives the queue the dual-engine timing
        discipline (paper IV.B: "Memory operations and work-items
        executions are overlapped with one another"); the ping-pong
        structure means the level-N leaf write for batch b+1 can ride
        the DMA engine while batch b computes."""
        if steps < 2:
            raise ReproError("kernel IV.A needs at least 2 steps")
        self.device = device
        self.steps = steps
        self.readback = ReadbackMode.check(readback)
        self.family = family

        self.context = Context(device)
        self.queue: CommandQueue = self.context.create_queue(overlap=overlap)
        program = self.context.create_program({"node": kernel_a_work_item})
        self.kernel = program.create_kernel("node")

        slots = pipeline_slots(steps)
        self._slots = slots
        # ping-pong buffer pair: (S, V, option-id) each
        self._buffers = [
            {
                "s": self.context.create_buffer(slots),
                "v": self.context.create_buffer(slots),
                "oid": self.context.create_buffer(slots),
            }
            for _ in range(2)
        ]
        self._level_table = self.context.create_buffer_from(
            level_of_slot_table(steps).astype(np.int64), flags=MemFlag.READ_ONLY
        )
        self._leaf_base = steps * (steps + 1) // 2  # first leaf slot

    def price(self, options: Sequence[Option]) -> KernelARun:
        """Price ``options`` through the pipelined tree network."""
        if not options:
            raise ReproError("empty option batch")
        n_options = len(options)
        steps = self.steps
        queue = self.queue
        queue.reset_clock()

        params = build_params_a(options, steps, self.family)
        params_buf = self.context.create_buffer_from(params, flags=MemFlag.READ_ONLY)
        queue.enqueue_write_buffer(params_buf, params)

        # Empty pipeline: option-id -1 marks unoccupied slots.
        for side in self._buffers:
            queue.enqueue_fill_buffer(side["oid"], -1.0)
            queue.enqueue_fill_buffer(side["s"], 0.0)
            queue.enqueue_fill_buffer(side["v"], 0.0)

        prices = np.empty(n_options)
        total_batches = n_options + steps - 1
        src, dst = 0, 1

        for batch in range(total_batches):
            source = self._buffers[src]
            dest = self._buffers[dst]

            # (1)+(2) host initialises and writes the entering option's
            # leaves (computed on the host: no device pow).
            if batch < n_options:
                leaf_s, leaf_v = build_leaves_a(options[batch], steps, self.family)
                queue.enqueue_write_buffer(source["s"], leaf_s, offset=self._leaf_base)
                queue.enqueue_write_buffer(source["v"], leaf_v, offset=self._leaf_base)
                queue.enqueue_write_buffer(
                    source["oid"],
                    np.full(steps + 1, float(batch)),
                    offset=self._leaf_base,
                )

            # (3) enqueue the full tree network of work-items
            self.kernel.set_args(
                source["s"], source["v"], source["oid"],
                dest["s"], dest["v"], dest["oid"],
                self._level_table, params_buf,
            )
            queue.enqueue_nd_range_kernel(self.kernel, interior_nodes(steps))

            # (4) read a result back — the throughput-deciding step
            if self.readback == ReadbackMode.FULL_BUFFER:
                v_data, _ = queue.enqueue_read_buffer(dest["v"])
                queue.enqueue_read_buffer(dest["s"])
                oid_data, _ = queue.enqueue_read_buffer(dest["oid"])
                root_value, root_oid = v_data[0], oid_data[0]
            else:
                root_value = queue.enqueue_read_buffer(dest["v"], 0, 1)[0][0]
                root_oid = queue.enqueue_read_buffer(dest["oid"], 0, 1)[0][0]

            exiting = batch - (steps - 1)
            if exiting >= 0:
                if int(root_oid) != exiting:
                    raise ReproError(
                        f"pipeline corruption: expected option {exiting} at the "
                        f"root after batch {batch}, found {root_oid}"
                    )
                if not np.isfinite(root_value):
                    raise ReproError(
                        f"kernel IV.A produced a non-finite price for option "
                        f"{exiting} (corrupted pipeline data or invalid "
                        "parameters)"
                    )
                prices[exiting] = root_value

            src, dst = dst, src

        self.context.release(params_buf)
        return KernelARun(
            prices=prices,
            batches=total_batches,
            simulated_time_s=queue.clock_s,
            bytes_read=queue.transfers.total_bytes(TransferDirection.DEVICE_TO_HOST),
            bytes_written=queue.transfers.total_bytes(TransferDirection.HOST_TO_DEVICE),
            kernel_launches=total_batches,
        )
