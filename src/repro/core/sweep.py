"""Design-space exploration and the paper's energy workarounds (E9).

Section V.B: the chosen vectorise/replicate/unroll points came out of
"several compilation iterations to find the best resource consumption
rate" — :func:`explore_design_space` automates that loop over the HLS
model.  Section V.C lists workarounds for the 7 W power overshoot:
lower the clock, lower the parallelism, or pick a smaller board;
:func:`frequency_scaling` and :func:`fit_power_budget` quantify the
first, the design-space sweep the second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import FitError, ReproError
from ..hls import CompiledKernel, CompileOptions, FpgaPart, EP4SGX530, compile_kernel
from ..hls.ir import KernelIR
from ..hls.power import estimate_power
from .metrics import nodes_per_option

__all__ = [
    "DesignPoint",
    "explore_design_space",
    "OperatingPoint",
    "frequency_scaling",
    "fit_power_budget",
    "BoardCandidate",
    "select_board",
]


@dataclass(frozen=True)
class DesignPoint:
    """One compile in a design-space sweep."""

    options: CompileOptions
    compiled: CompiledKernel | None
    fits: bool
    #: post-saturation options/s at the sweep's step count (0 if unfit)
    options_per_second: float
    #: options/J at the sweep's step count (0 if unfit)
    options_per_joule: float

    @property
    def label(self) -> str:
        return self.options.describe()


def explore_design_space(
    ir: KernelIR,
    steps: int = 1024,
    simd_widths: Sequence[int] = (1, 2, 4, 8),
    compute_units: Sequence[int] = (1, 2, 3, 4),
    unrolls: Sequence[int] = (1, 2, 4),
    part: FpgaPart = EP4SGX530,
    pipeline_derate: float = 1.0,
) -> list[DesignPoint]:
    """Compile every (V, R, U) combination and rank what fits.

    Returns all points (fitting and not), sorted by descending
    throughput among the fitting ones first.
    """
    nodes = nodes_per_option(steps)
    points = []
    for simd in simd_widths:
        for cus in compute_units:
            for unroll in unrolls:
                if unroll > 1 and not ir.body_ops:
                    continue  # nothing to unroll in a loop-free kernel
                options = CompileOptions(
                    num_simd_work_items=simd,
                    num_compute_units=cus,
                    unroll=unroll,
                )
                try:
                    compiled = compile_kernel(ir, options, part)
                except FitError:
                    points.append(
                        DesignPoint(options, None, False, 0.0, 0.0)
                    )
                    continue
                rate = (
                    compiled.fmax_hz * options.parallel_lanes * pipeline_derate
                    / nodes
                )
                points.append(
                    DesignPoint(
                        options=options,
                        compiled=compiled,
                        fits=True,
                        options_per_second=rate,
                        options_per_joule=rate / compiled.power_w,
                    )
                )
    points.sort(key=lambda p: (p.fits, p.options_per_second), reverse=True)
    return points


@dataclass(frozen=True)
class OperatingPoint:
    """One clock setting of a compiled kernel (E9's frequency axis)."""

    clock_hz: float
    power_w: float
    options_per_second: float
    options_per_joule: float

    @property
    def clock_mhz(self) -> float:
        return self.clock_hz / 1e6


def frequency_scaling(
    compiled: CompiledKernel,
    steps: int = 1024,
    fractions: Iterable[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3),
    pipeline_derate: float = 1.0,
) -> list[OperatingPoint]:
    """Throughput/power trade-off when under-clocking a fitted kernel.

    Dynamic power scales linearly with the clock (static power does
    not), while pipeline throughput scales linearly too — the basis of
    the paper's "either clock frequency or parallelism levels can be
    lowered to reduce energy consumption".
    """
    nodes = nodes_per_option(steps)
    points = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ReproError("clock fractions must be in (0, 1]")
        clock = compiled.fmax_hz * fraction
        power = estimate_power(compiled.resources, clock).total_w
        rate = clock * compiled.parallel_lanes * pipeline_derate / nodes
        points.append(
            OperatingPoint(
                clock_hz=clock,
                power_w=power,
                options_per_second=rate,
                options_per_joule=rate / power,
            )
        )
    return points


def fit_power_budget(
    compiled: CompiledKernel,
    budget_w: float,
    steps: int = 1024,
    pipeline_derate: float = 1.0,
) -> OperatingPoint:
    """Highest clock meeting a power budget (the paper's 10 W target).

    Inverts the linear dynamic-power model; raises if even the static
    power exceeds the budget.
    """
    full_power = estimate_power(compiled.resources, compiled.fmax_hz)
    dynamic = full_power.total_w - full_power.static_w
    headroom = budget_w - full_power.static_w
    if headroom <= 0:
        raise ReproError(
            f"budget {budget_w} W below static power {full_power.static_w} W"
        )
    fraction = min(1.0, headroom / dynamic)
    clock = compiled.fmax_hz * fraction
    nodes = nodes_per_option(steps)
    rate = clock * compiled.parallel_lanes * pipeline_derate / nodes
    power = estimate_power(compiled.resources, clock).total_w
    return OperatingPoint(
        clock_hz=clock,
        power_w=power,
        options_per_second=rate,
        options_per_joule=rate / power,
    )


@dataclass(frozen=True)
class BoardCandidate:
    """Best fitting design point of one kernel on one FPGA part."""

    part: FpgaPart
    best: DesignPoint | None

    @property
    def feasible(self) -> bool:
        return self.best is not None

    @property
    def options_per_second(self) -> float:
        return self.best.options_per_second if self.best else 0.0

    @property
    def power_w(self) -> float:
        return self.best.compiled.power_w if self.best else 0.0


def select_board(
    ir: KernelIR,
    parts: Sequence[FpgaPart],
    steps: int = 1024,
    power_budget_w: float | None = None,
    simd_widths: Sequence[int] = (1, 2, 4, 8),
    compute_units: Sequence[int] = (1, 2, 3),
    unrolls: Sequence[int] = (1, 2, 4),
    pipeline_derate: float = 1.0,
) -> list[BoardCandidate]:
    """The paper's third energy workaround: pick a different board.

    For each candidate part, explores the parallelisation space and
    keeps the fastest fitting point (optionally further constrained to
    a power budget).  Returns one :class:`BoardCandidate` per part, in
    the order given, so callers can weigh throughput against power
    across boards — Section V.C's "a less power consuming FPGA board
    can be selected that would better fit our goal".
    """
    candidates = []
    for part in parts:
        points = explore_design_space(
            ir, steps=steps, simd_widths=simd_widths,
            compute_units=compute_units, unrolls=unrolls, part=part,
            pipeline_derate=pipeline_derate,
        )
        fitting = [p for p in points if p.fits]
        if power_budget_w is not None:
            fitting = [p for p in fitting
                       if p.compiled.power_w <= power_budget_w]
        best = fitting[0] if fitting else None
        candidates.append(BoardCandidate(part=part, best=best))
    return candidates
