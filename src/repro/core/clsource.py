"""OpenCL C source emission for the two kernels.

The simulator executes the kernels as Python work-items; this module
emits the equivalent **OpenCL C** a real deployment would feed to
Altera's ``aoc`` (or any OpenCL compiler — the paper's future work is
precisely to carry these sources to other targets).  The generated
code mirrors the simulated kernels statement for statement, including
the Altera attributes and ``#pragma unroll`` that realise the paper's
parallelisation choices, so the textual artifact and the executable
model cannot drift apart silently (the tests cross-check operator
censuses between this source and the HLS IR).
"""

from __future__ import annotations

from ..errors import ReproError
from ..hls.options import CompileOptions

__all__ = ["kernel_a_source", "kernel_b_source", "PRECISION_TYPES"]

#: OpenCL scalar type per precision.
PRECISION_TYPES = {"dp": "double", "sp": "float"}


def _check_precision(precision: str) -> str:
    if precision not in PRECISION_TYPES:
        raise ReproError(f"precision must be 'dp' or 'sp', got {precision!r}")
    return PRECISION_TYPES[precision]


def _pragma_header(precision: str) -> str:
    lines = []
    if precision == "dp":
        lines.append("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
    return "\n".join(lines)


def kernel_b_source(
    n_steps: int,
    options: CompileOptions | None = None,
    precision: str = "dp",
) -> str:
    """OpenCL C for kernel IV.B (Section IV.B / Figure 4).

    One work-group per option, one work-item per tree row, leaves
    initialised in-device through ``pow`` (the operator whose 13.0
    implementation the paper found inaccurate), the shared value row in
    ``__local`` memory behind barriers.
    """
    if n_steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    scalar = _check_precision(precision)
    options = options or CompileOptions()
    unroll = (f"#pragma unroll {options.unroll}\n    "
              if options.unroll > 1 else "")
    simd = (f"__attribute__((num_simd_work_items({options.num_simd_work_items})))\n"
            if options.num_simd_work_items > 1 else "")
    cus = (f"__attribute__((num_compute_units({options.num_compute_units})))\n"
           if options.num_compute_units > 1 else "")

    return f"""{_pragma_header(precision)}

/* Kernel IV.B -- optimized work-group implementation.
 * One work-group prices one option; work-item k owns tree row k.
 * Parameters per option: s0, u, d, rp, rq, K, sign (host-precomputed).
 */
#define N_STEPS {n_steps}

{simd}{cus}__attribute__((reqd_work_group_size({n_steps}, 1, 1)))
__kernel void binomial_tree_iv_b(
    __global const {scalar} * restrict params,
    __global {scalar} * restrict results,
    __local {scalar} * v_row)
{{
    const int k = get_local_id(0);
    const int group = get_group_id(0);

    /* private memory: option constants and this row's asset price */
    const {scalar} s0     = params[group * 7 + 0];
    const {scalar} up     = params[group * 7 + 1];
    const {scalar} down   = params[group * 7 + 2];
    const {scalar} rp     = params[group * 7 + 3];
    const {scalar} rq     = params[group * 7 + 4];
    const {scalar} strike = params[group * 7 + 5];
    const {scalar} sign   = params[group * 7 + 6];

    /* leaf initialisation in-device: the pow operator (paper V.C) */
    {scalar} s = s0 * pow(up, ({scalar})(N_STEPS - 2 * k));
    {scalar} payoff = sign * (s - strike);
    v_row[k] = payoff > ({scalar})0 ? payoff : ({scalar})0;
    if (k == N_STEPS - 1) {{
        const {scalar} s_last = s0 * pow(up, ({scalar})(-N_STEPS));
        const {scalar} payoff_last = sign * (s_last - strike);
        v_row[N_STEPS] = payoff_last > ({scalar})0 ? payoff_last
                                                   : ({scalar})0;
    }}
    barrier(CLK_LOCAL_MEM_FENCE);

    /* backward induction; idle rows keep hitting the barriers */
    {unroll}for (int t = N_STEPS - 1; t >= 0; --t) {{
        {scalar} value = ({scalar})0;
        const int active = (k <= t);
        if (active) {{
            s = down * s;                     /* Eq. (1): S[t,k] = d*S[t+1,k] */
            const {scalar} continuation = rp * v_row[k] + rq * v_row[k + 1];
            const {scalar} intrinsic = sign * (s - strike);
            value = continuation > intrinsic ? continuation : intrinsic;
        }}
        barrier(CLK_LOCAL_MEM_FENCE);         /* reads done */
        if (active) {{
            v_row[k] = value;
        }}
        barrier(CLK_LOCAL_MEM_FENCE);         /* row updated */
    }}

    if (k == 0) {{
        results[group] = v_row[0];
    }}
}}
"""


def kernel_a_source(
    options: CompileOptions | None = None,
    precision: str = "dp",
) -> str:
    """OpenCL C for kernel IV.A (Section IV.A / Figure 3).

    One work-item per tree node over the flattened pipeline buffers;
    the host drives batches and switches the ping-pong buffers.
    """
    scalar = _check_precision(precision)
    options = options or CompileOptions()
    simd = (f"__attribute__((num_simd_work_items({options.num_simd_work_items})))\n"
            if options.num_simd_work_items > 1 else "")
    cus = (f"__attribute__((num_compute_units({options.num_compute_units})))\n"
           if options.num_compute_units > 1 else "")

    return f"""{_pragma_header(precision)}

/* Kernel IV.A -- straightforward dataflow implementation.
 * One work-item computes one tree node per batch; state flows through
 * global ping-pong buffers switched by the host between batches.
 * Slot layout: node (t, k) at slot t*(t+1)/2 + k; children of a slot
 * at level t sit at slot + t + 1 and slot + t + 2.
 */
{simd}{cus}__kernel void binomial_node_iv_a(
    __global const {scalar} * restrict src_s,
    __global const {scalar} * restrict src_v,
    __global const {scalar} * restrict src_oid,
    __global {scalar} * restrict dst_s,
    __global {scalar} * restrict dst_v,
    __global {scalar} * restrict dst_oid,
    __global const long * restrict level_of_slot,
    __global const {scalar} * restrict params)
{{
    const int slot = get_global_id(0);
    const int t = (int)level_of_slot[slot];

    const int child_up = slot + t + 1;
    const int child_dn = slot + t + 2;

    const int oid = (int)src_oid[child_up];
    if (oid < 0) {{
        /* pipeline stage not yet occupied: propagate the empty marker */
        dst_oid[slot] = ({scalar})-1;
        dst_s[slot] = ({scalar})0;
        dst_v[slot] = ({scalar})0;
        return;
    }}

    const {scalar} rp       = params[oid * 5 + 0];
    const {scalar} rq       = params[oid * 5 + 1];
    const {scalar} pulldown = params[oid * 5 + 2];  /* 1/u; == d under CRR */
    const {scalar} strike   = params[oid * 5 + 3];
    const {scalar} sign     = params[oid * 5 + 4];

    /* S[t,k] = S[t+1,k] / u (Eq. (1) writes d*S, the CRR special case) */
    const {scalar} s = pulldown * src_s[child_up];
    const {scalar} continuation = rp * src_v[child_up]
                                + rq * src_v[child_dn];
    const {scalar} intrinsic = sign * (s - strike);

    dst_s[slot] = s;
    dst_v[slot] = continuation > intrinsic ? continuation : intrinsic;
    dst_oid[slot] = ({scalar})oid;
}}
"""
