"""Analytic throughput/energy model (the Table II generator).

The functional simulator proves the kernels *correct*; this module
computes how fast and how hungry each configuration is, from the
calibrated device models and the host-program structure:

* **kernel IV.A** — throughput is one option per *batch*, and a batch
  costs host overhead + leaf upload + the tree-network launch + the
  readback (full ping-pong buffer or root-only);
* **kernel IV.B** — one parameter upload, one launch processing
  ``N x Nop`` work-items at the device's sustained node rate, one
  result download.

Sub-saturation behaviour follows the paper's Section V.C description
(throughput becomes linear in the workload only after "device
saturation"): the effective rate is ``peak * n / (n + n_sat / 19)``,
reaching 95% of peak at the device's saturation point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.base import ComputeModel
from ..devices.calibration import SATURATION_KNEE_RATIO
from ..errors import ReproError
from ..opencl.types import TransferDirection
from .host_a import ReadbackMode
from .kernel_a import interior_nodes, pipeline_buffer_bytes, pipeline_slots
from .kernel_b import PARAM_FIELDS_B

__all__ = [
    "PerfEstimate",
    "kernel_a_estimate",
    "kernel_b_estimate",
    "reference_estimate",
    "saturation_efficiency",
]


def saturation_efficiency(n_options: float, saturation_options: float) -> float:
    """Fraction of peak rate achieved at a workload of ``n_options``."""
    if n_options <= 0:
        raise ReproError("n_options must be positive")
    return n_options / (n_options + saturation_options / SATURATION_KNEE_RATIO)


@dataclass(frozen=True)
class PerfEstimate:
    """Predicted steady-state performance of one configuration."""

    name: str
    options_per_second: float
    options_per_joule: float
    tree_nodes_per_second: float
    power_w: float
    saturation_options: float
    steps: int

    def time_for(self, n_options: float) -> float:
        """Cold-start seconds to price ``n_options``.

        Includes the sub-saturation loss of filling an idle device —
        the curve whose knee the paper's Section V.C places at ~1e5
        (FPGA) / ~1e6 (GPU IV.B) options.
        """
        eff = saturation_efficiency(n_options, self.saturation_options)
        return n_options / (self.options_per_second * eff)

    def steady_state_time_for(self, n_options: float) -> float:
        """Seconds per ``n_options`` once the device is saturated.

        The paper's headline "more than 2000 options ... in less than a
        second" is a post-saturation throughput claim ("All the
        presented results were sampled after device saturation"): the
        trader's accelerator streams curve after curve through a warm
        pipeline.
        """
        if n_options <= 0:
            raise ReproError("n_options must be positive")
        return n_options / self.options_per_second

    def effective_rate(self, n_options: float) -> float:
        """options/s actually achieved at a given workload size."""
        return n_options / self.time_for(n_options)

    def energy_for(self, n_options: float) -> float:
        """Joules to price ``n_options``."""
        return self.time_for(n_options) * self.power_w

    def joules_per_option(self, n_options: float = 1e6) -> float:
        """The de Schryver benchmark's J/option criterion."""
        return self.energy_for(n_options) / n_options


def kernel_a_estimate(
    model: ComputeModel,
    steps: int = 1024,
    readback: str = ReadbackMode.FULL_BUFFER,
) -> PerfEstimate:
    """Steady-state performance of the kernel IV.A host loop.

    One option completes per batch once the pipeline is full.
    """
    ReadbackMode.check(readback)
    nodes_per_batch = interior_nodes(steps)

    # leaf upload: S, V and option-id rows (8 B each) + one param row
    write_bytes = (steps + 1) * 3 * 8 + len(PARAM_FIELDS_B) * 8
    if readback == ReadbackMode.FULL_BUFFER:
        read_bytes = pipeline_buffer_bytes(steps)
        read_transfers = 3  # S, V, oid arrays
    else:
        read_bytes = 2 * 8  # root value + root option-id
        read_transfers = 2

    batch_s = (
        model.launch_overhead_ns
        + model.transfer_ns(write_bytes, TransferDirection.HOST_TO_DEVICE) * 1
        + nodes_per_batch / model.node_rate_per_s * 1e9
        + model.transfer_ns(read_bytes // read_transfers,
                            TransferDirection.DEVICE_TO_HOST) * read_transfers
    ) * 1e-9

    options_per_s = 1.0 / batch_s
    return PerfEstimate(
        name=f"{model.name} / readback={readback}",
        options_per_second=options_per_s,
        options_per_joule=options_per_s / model.power_w,
        tree_nodes_per_second=options_per_s * nodes_per_batch,
        power_w=model.power_w,
        saturation_options=model.saturation_options,
        steps=steps,
    )


def kernel_b_estimate(model: ComputeModel, steps: int = 1024) -> PerfEstimate:
    """Steady-state performance of the kernel IV.B configuration.

    Per-option cost: the parameter-row upload, ``N(N+1)/2`` node
    updates through the pipeline, and the single-value download; the
    one-off launch overhead amortises to zero post-saturation.
    """
    nodes = interior_nodes(steps)
    # The 56 B parameter upload and 8 B result download per option are
    # overlapped with ~0.4 ms of compute by the DMA engine; steady-state
    # throughput is compute-bound.
    per_option_ns = nodes / model.node_rate_per_s * 1e9
    options_per_s = 1e9 / per_option_ns
    return PerfEstimate(
        name=model.name,
        options_per_second=options_per_s,
        options_per_joule=options_per_s / model.power_w,
        tree_nodes_per_second=options_per_s * nodes,
        power_w=model.power_w,
        saturation_options=model.saturation_options,
        steps=steps,
    )


def reference_estimate(model: ComputeModel, steps: int = 1024) -> PerfEstimate:
    """Steady-state performance of the single-core software reference."""
    nodes = interior_nodes(steps)
    options_per_s = model.options_per_second(nodes)
    return PerfEstimate(
        name=model.name,
        options_per_second=options_per_s,
        options_per_joule=options_per_s / model.power_w,
        tree_nodes_per_second=model.node_rate_per_s,
        power_w=model.power_w,
        saturation_options=model.saturation_options,
        steps=steps,
    )
