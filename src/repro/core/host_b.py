"""Host program for kernel IV.B (Figure 4's three host commands).

*"From the host point of view, three commands must be executed to run
this computation: 1) copying all option parameters in global memory,
2) enqueueing enough kernels to process all the data, 3) and read back
the final results from global memory."* — Section IV.B.

One work-group per option, ``steps`` work-items per group, leaves
initialised in-device.  This module runs the kernel *functionally* on
the simulated device (coroutine work-items with real barriers); for
full-size accuracy experiments use
:func:`repro.core.batch_sim.simulate_kernel_b_batch`, which executes
the identical arithmetic vectorised (the equivalence of the two paths
is asserted by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from ..opencl import (
    CommandQueue,
    Context,
    Device,
    LocalMemory,
    MemFlag,
    TransferDirection,
)
from .faithful_math import EXACT_DOUBLE, MathProfile
from .kernel_b import build_params_b, make_kernel_b

__all__ = ["KernelBRun", "HostProgramB"]


@dataclass(frozen=True)
class KernelBRun:
    """Outcome of pricing a batch through kernel IV.B."""

    prices: np.ndarray
    simulated_time_s: float
    bytes_read: int
    bytes_written: int
    barriers_per_group: int
    local_bytes_per_group: int

    @property
    def options_per_second(self) -> float:
        """Simulated throughput of this run."""
        if self.simulated_time_s <= 0:
            return float("inf")
        return len(self.prices) / self.simulated_time_s


class HostProgramB:
    """The kernel IV.B host application bound to one simulated device.

    :param device: simulated OpenCL device.
    :param steps: tree discretisation ``N`` — also the work-group size
        (one work-item per tree row).
    :param profile: device math profile; pass
        :data:`~repro.core.faithful_math.ALTERA_13_0_DOUBLE` to model
        the FPGA's flawed ``pow``.
    """

    def __init__(
        self,
        device: Device,
        steps: int,
        profile: MathProfile = EXACT_DOUBLE,
        family: LatticeFamily = LatticeFamily.CRR,
    ):
        if steps < 2:
            raise ReproError("kernel IV.B needs at least 2 steps")
        if steps > device.max_work_group_size:
            raise ReproError(
                f"work-group size {steps} exceeds device limit "
                f"{device.max_work_group_size}; lower the step count"
            )
        if family is not LatticeFamily.CRR:
            raise ReproError(
                "kernel IV.B's in-device leaf initialisation requires the "
                "CRR lattice (u*d = 1); use kernel IV.A for other families"
            )
        self.device = device
        self.steps = steps
        self.profile = profile
        self.family = family
        self.context = Context(device)
        self.queue: CommandQueue = self.context.create_queue()
        program = self.context.create_program(
            {"tree": make_kernel_b(steps, profile)}
        )
        self.kernel = program.create_kernel("tree")

    def price(self, options: Sequence[Option]) -> KernelBRun:
        """Price ``options``, one work-group each (three host commands)."""
        if not options:
            raise ReproError("empty option batch")
        n_options = len(options)
        queue = self.queue
        queue.reset_clock()

        # (1) copy all option parameters to global memory
        params = build_params_b(options, self.steps, self.family)
        params_buf = self.context.create_buffer_from(params, flags=MemFlag.READ_ONLY)
        queue.enqueue_write_buffer(params_buf, params)
        results_buf = self.context.create_buffer(n_options, flags=MemFlag.WRITE_ONLY)

        # (2) enqueue enough kernels to process all the data
        self.kernel.set_args(
            params_buf,
            results_buf,
            LocalMemory(self.steps + 1, dtype=self.profile.dtype),
        )
        event = queue.enqueue_nd_range_kernel(
            self.kernel,
            global_size=n_options * self.steps,
            local_size=self.steps,
        )

        # (3) read back the final results (WRITE_ONLY constrains the
        # kernel side only; host reads go through the queue)
        prices, _ = queue.enqueue_read_buffer(results_buf)
        if not np.all(np.isfinite(prices)):
            bad = int(np.flatnonzero(~np.isfinite(prices))[0])
            raise ReproError(
                f"kernel IV.B produced a non-finite price for option {bad}: "
                "the device math profile returned NaN/inf (check the "
                "option parameters and the profile's operator domain)"
            )

        run = KernelBRun(
            prices=prices,
            simulated_time_s=queue.clock_s,
            bytes_read=queue.transfers.total_bytes(TransferDirection.DEVICE_TO_HOST),
            bytes_written=queue.transfers.total_bytes(TransferDirection.HOST_TO_DEVICE),
            barriers_per_group=event.info["barriers_per_group"],
            local_bytes_per_group=event.info["local_bytes_per_group"],
        )
        self.context.release(params_buf)
        self.context.release(results_buf)
        return run
