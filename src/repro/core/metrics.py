"""Performance-row assembly: the four metrics of the paper's Table II.

Each Table II column is one :class:`PerformanceRow`: options/s, RMSE
(in the paper's "~1e-3"/"0" notation), options/J and tree-nodes/s.
Rows are built either from a :class:`~repro.core.perf_model.PerfEstimate`
plus a measured RMSE, or carried verbatim for literature entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..finance.validation import classify_rmse
from .perf_model import PerfEstimate

__all__ = ["PerformanceRow", "nodes_per_option", "row_from_estimate"]


def nodes_per_option(steps: int) -> int:
    """Interior node updates per option, ``N(N+1)/2`` (paper's unit)."""
    return steps * (steps + 1) // 2


@dataclass(frozen=True)
class PerformanceRow:
    """One column of Table II."""

    label: str
    platform: str
    precision: str
    options_per_second: float
    rmse_display: str
    options_per_joule: float | None
    tree_nodes_per_second: float

    def formatted(self) -> dict:
        """Human-oriented cell strings (used by the bench tables)."""
        def _rate(value: float) -> str:
            if value >= 1e9:
                return f"{value / 1e9:.2f} G"
            if value >= 1e6:
                return f"{value / 1e6:.0f} M"
            return f"{value:.0f}"

        return {
            "label": self.label,
            "platform": self.platform,
            "precision": self.precision,
            "options/s": f"{self.options_per_second:,.1f}",
            "RMSE": self.rmse_display,
            "options/J": (
                "N/A" if self.options_per_joule is None
                else f"{self.options_per_joule:.2f}"
            ),
            "tree nodes/s": _rate(self.tree_nodes_per_second),
        }


def row_from_estimate(
    label: str,
    platform: str,
    precision: str,
    estimate: PerfEstimate,
    rmse_value: float,
) -> PerformanceRow:
    """Assemble a row from a perf estimate and a measured RMSE."""
    return PerformanceRow(
        label=label,
        platform=platform,
        precision=precision,
        options_per_second=estimate.options_per_second,
        rmse_display=classify_rmse(rmse_value),
        options_per_joule=estimate.options_per_joule,
        tree_nodes_per_second=estimate.tree_nodes_per_second,
    )
