"""Trading-session energy model: the use case over a whole day.

The paper argues per-option energy (options/J); a deployment decides
on *session* energy: a trader refreshes one volatility curve per
second, six and a half market hours a day, and the accelerator sits
partly idle between refreshes.  This model folds the calibrated
performance estimates into a daily energy/feasibility report — the
quantity a desk would actually compare against the 10 W workstation
budget of Section I.

Idle draws are typical published figures (an FPGA holds its static
power; a discrete GPU idles at ~15 W; one Xeon core's share of a busy
socket is taken as its TDP slice), documented here rather than
calibrated — no session-level ground truth exists in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .perf_model import PerfEstimate

__all__ = ["SessionReport", "TradingSessionModel", "TYPICAL_IDLE_POWER_W"]

#: Typical idle power by platform family (see module docstring).
TYPICAL_IDLE_POWER_W = {
    "fpga": 3.0,   # static power of the configured Stratix IV
    "gpu": 15.0,   # discrete-card idle draw
    "cpu": 25.0,   # one core's slice of an idling 2008-era Xeon socket
}


@dataclass(frozen=True)
class SessionReport:
    """Energy/feasibility of one trading session on one configuration."""

    configuration: str
    hours: float
    refresh_interval_s: float
    curve_options: int
    curves_refreshed: int
    busy_fraction: float
    active_energy_j: float
    idle_energy_j: float
    meets_refresh_rate: bool

    @property
    def total_energy_j(self) -> float:
        return self.active_energy_j + self.idle_energy_j

    @property
    def total_energy_wh(self) -> float:
        return self.total_energy_j / 3600.0

    @property
    def energy_per_curve_j(self) -> float:
        if self.curves_refreshed == 0:
            return float("inf")
        return self.total_energy_j / self.curves_refreshed


class TradingSessionModel:
    """Project a performance estimate onto a trader's day.

    :param estimate: steady-state performance of the configuration.
    :param idle_power_w: draw while waiting for the next refresh.
    :param configuration: label carried into the report.
    """

    def __init__(self, estimate: PerfEstimate, idle_power_w: float,
                 configuration: str | None = None):
        if idle_power_w < 0:
            raise ReproError("idle power cannot be negative")
        if idle_power_w > estimate.power_w:
            raise ReproError("idle power above active power makes no sense")
        self.estimate = estimate
        self.idle_power_w = idle_power_w
        self.configuration = configuration or estimate.name

    def curve_time_s(self, curve_options: int = 2000) -> float:
        """Seconds to refresh one curve (steady-state pipeline)."""
        return self.estimate.steady_state_time_for(curve_options)

    def session(self, hours: float = 6.5, refresh_interval_s: float = 1.0,
                curve_options: int = 2000) -> SessionReport:
        """One trading session of periodic curve refreshes.

        If a refresh takes longer than the interval, the device runs
        flat out and refreshes as fast as it can (``meets_refresh_rate``
        goes False — the CPU reference's fate at 2000-option curves).
        """
        if hours <= 0 or refresh_interval_s <= 0 or curve_options < 1:
            raise ReproError("session parameters must be positive")
        total_s = hours * 3600.0
        curve_s = self.curve_time_s(curve_options)
        meets = curve_s <= refresh_interval_s
        effective_interval = refresh_interval_s if meets else curve_s
        curves = int(total_s / effective_interval)
        busy_s = curves * curve_s
        idle_s = max(total_s - busy_s, 0.0)
        return SessionReport(
            configuration=self.configuration,
            hours=hours,
            refresh_interval_s=refresh_interval_s,
            curve_options=curve_options,
            curves_refreshed=curves,
            busy_fraction=busy_s / total_s,
            active_energy_j=busy_s * self.estimate.power_w,
            idle_energy_j=idle_s * self.idle_power_w,
            meets_refresh_rate=meets,
        )
