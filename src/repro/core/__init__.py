"""The paper's contribution: two OpenCL binomial-pricing accelerators.

* :mod:`~repro.core.kernel_a` / :mod:`~repro.core.host_a` — the
  straightforward dataflow design (Section IV.A / Figure 3);
* :mod:`~repro.core.kernel_b` / :mod:`~repro.core.host_b` — the
  optimized work-group design (Section IV.B / Figure 4);
* :mod:`~repro.core.faithful_math` — device math incl. the Altera 13.0
  ``pow`` defect;
* :mod:`~repro.core.batch_sim` — vectorised kernel semantics for
  full-size accuracy runs;
* :mod:`~repro.core.perf_model` / :mod:`~repro.core.metrics` — the
  analytic Table II generator;
* :mod:`~repro.core.accelerator` — the user-facing facade;
* :mod:`~repro.core.sweep` — design-space exploration and the energy
  workarounds of Section V.C.
"""

from .accelerator import AcceleratorResult, BinomialAccelerator
from .batch_sim import (
    leaf_exponents_b,
    simulate_kernel_a_batch,
    simulate_kernel_b_batch,
)
from .clsource import kernel_a_source, kernel_b_source
from .faithful_math import (
    ALTERA_13_0_DOUBLE,
    ALTERA_POW_FRACTION_BITS,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    MathProfile,
    get_profile,
    quantized_pow,
)
from .host_a import HostProgramA, KernelARun, ReadbackMode
from .host_b import HostProgramB, KernelBRun
from .kernel_a import (
    build_leaves_a,
    build_leaves_a_batch,
    build_params_a,
    interior_nodes,
    kernel_a_ir,
    kernel_a_work_item,
    level_of_slot_table,
    pipeline_buffer_bytes,
    pipeline_slots,
)
from .kernel_b import build_params_b, kernel_b_ir, make_kernel_b
from .metrics import PerformanceRow, nodes_per_option, row_from_estimate
from .trace import render_timeline
from .session import (
    TYPICAL_IDLE_POWER_W,
    SessionReport,
    TradingSessionModel,
)
from .perf_model import (
    PerfEstimate,
    kernel_a_estimate,
    kernel_b_estimate,
    reference_estimate,
    saturation_efficiency,
)
from .sweep import (
    DesignPoint,
    OperatingPoint,
    explore_design_space,
    fit_power_budget,
    frequency_scaling,
)

__all__ = [
    "BinomialAccelerator",
    "AcceleratorResult",
    "simulate_kernel_a_batch",
    "simulate_kernel_b_batch",
    "leaf_exponents_b",
    "kernel_a_source",
    "kernel_b_source",
    "MathProfile",
    "EXACT_DOUBLE",
    "EXACT_SINGLE",
    "ALTERA_13_0_DOUBLE",
    "ALTERA_POW_FRACTION_BITS",
    "quantized_pow",
    "get_profile",
    "HostProgramA",
    "KernelARun",
    "ReadbackMode",
    "HostProgramB",
    "KernelBRun",
    "kernel_a_work_item",
    "kernel_a_ir",
    "build_params_a",
    "build_leaves_a",
    "build_leaves_a_batch",
    "interior_nodes",
    "pipeline_slots",
    "pipeline_buffer_bytes",
    "level_of_slot_table",
    "make_kernel_b",
    "kernel_b_ir",
    "build_params_b",
    "PerformanceRow",
    "nodes_per_option",
    "row_from_estimate",
    "PerfEstimate",
    "kernel_a_estimate",
    "kernel_b_estimate",
    "reference_estimate",
    "saturation_efficiency",
    "render_timeline",
    "TradingSessionModel",
    "SessionReport",
    "TYPICAL_IDLE_POWER_W",
    "DesignPoint",
    "explore_design_space",
    "OperatingPoint",
    "frequency_scaling",
    "fit_power_budget",
]
