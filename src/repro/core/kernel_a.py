"""Kernel IV.A — the "straightforward" dataflow implementation.

One work-item computes one binomial-tree *node* (Section IV.A,
Figure 3).  The whole flattened tree is enqueued every batch
(``N(N+1)/2`` interior work-items); each tree level holds a different
in-flight option, so the network behaves as an N+1-deep option
pipeline.  State lives in global ping-pong buffers that the host
switches between batches; the host writes one new option's leaves
before each batch and reads one completed option's root after it.

Flattening convention (this library): node ``(t, k)`` with ``k`` = the
number of down moves occupies slot ``t(t+1)/2 + k``, so level ``t``'s
slots are contiguous and the two children of slot ``id`` at level
``t`` sit at ``id + t + 1`` and ``id + t + 2``.  (The paper flattens
in the opposite direction — leaves first — which makes its offsets
``id + N - t`` for reads and ``id + N + 1`` for writes; the dataflow
is identical, only the slot numbering differs.)

Each pipeline slot carries three values: the asset price ``S``, the
option value ``V``, and the id of the option currently flowing through
that slot (used to look up the option's constants in the parameter
buffer).  The level-of-slot table is precomputed into a constant
buffer, exactly as the paper does for its ``t`` indexing ("Computing
time steps within the work-item would be too costly in terms of
computing resources. They are stored in a constant buffer").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily, build_lattice_arrays
from ..finance.options import Option, option_arrays
from ..hls import GlobalAccess, KernelIR, LiveSet, OpCount
from ..opencl import kernel_metadata

__all__ = [
    "PARAM_FIELDS",
    "interior_nodes",
    "pipeline_slots",
    "pipeline_buffer_bytes",
    "level_of_slot_table",
    "build_params_a",
    "build_leaves_a",
    "build_leaves_a_batch",
    "kernel_a_work_item",
    "kernel_a_ir",
]

#: Per-option constants the host precomputes into the parameter
#: buffer: [rp, rq, pulldown, strike, sign] — the coefficients of the
#: paper's Equation (1) plus the payoff sign (call/put).  The third
#: field is the family-correct roll factor ``1/u`` (bit-identical to
#: the paper's ``d`` under CRR, where ``u*d = 1`` by construction),
#: so the device datapath stays a single multiply for every family.
PARAM_FIELDS = ("rp", "rq", "pulldown", "strike", "sign")


def interior_nodes(n_steps: int) -> int:
    """Work-items enqueued per batch: ``N(N+1)/2`` (paper IV.A)."""
    return n_steps * (n_steps + 1) // 2


def pipeline_slots(n_steps: int) -> int:
    """Slots of one ping-pong buffer: all levels incl. leaves."""
    return (n_steps + 1) * (n_steps + 2) // 2


def pipeline_buffer_bytes(n_steps: int) -> int:
    """Bytes of one ping-pong buffer (S, V, option-id; 8 B each).

    At the paper's N=1024 this is ~12.6 MB; the paper quotes "~19 MB"
    for its layout (which also shuttles index metadata) — same order,
    recorded in EXPERIMENTS.md.
    """
    return pipeline_slots(n_steps) * 3 * 8


def level_of_slot_table(n_steps: int) -> np.ndarray:
    """Constant buffer mapping slot id -> tree level ``t``."""
    table = np.empty(pipeline_slots(n_steps), dtype=np.int32)
    slot = 0
    for t in range(n_steps + 1):
        table[slot:slot + t + 1] = t
        slot += t + 1
    return table


def build_params_a(
    options: Sequence[Option],
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """Host-side parameter rows ``[rp, rq, pulldown, strike, sign]``.

    All derived constants are computed on the host in exact double
    precision (this is kernel IV.A's accuracy story: no transcendental
    runs on the device).  Array-native; validates its arguments (same
    :class:`~repro.errors.ReproError` messages as the simulators)
    before anything is allocated.
    """
    if steps < 2:
        raise ReproError("kernel IV.A needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    fields = option_arrays(options)
    lattice = build_lattice_arrays(options, steps, family)
    rows = np.empty((len(options), len(PARAM_FIELDS)), dtype=np.float64)
    rows[:, 0] = lattice.discounted_p_up
    rows[:, 1] = lattice.discounted_p_down
    rows[:, 2] = lattice.pulldown
    rows[:, 3] = fields.strike
    rows[:, 4] = fields.sign
    return rows


def build_leaves_a_batch(
    options: Sequence[Option],
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> tuple[np.ndarray, np.ndarray]:
    """Host-computed leaf matrices ``(S[N], V[N])`` for a whole batch.

    Row ``i`` holds option ``i``'s ``steps + 1`` leaves; both matrices
    are built with a single broadcast expression, no per-option loop.
    """
    fields = option_arrays(options)
    lattice = build_lattice_arrays(options, steps, family)
    k = np.arange(steps + 1, dtype=np.float64)
    prices = (
        fields.spot[:, None]
        * lattice.up[:, None] ** (steps - k)[None, :]
        * lattice.down[:, None] ** k[None, :]
    )
    values = np.maximum(
        fields.sign[:, None] * (prices - fields.strike[:, None]), 0.0
    )
    return prices, values


def build_leaves_a(
    option: Option,
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> tuple[np.ndarray, np.ndarray]:
    """Host-computed leaf rows ``(S[N,k], V[N,k])`` for one option.

    "The tree leaves are computed by the host and then transferred to
    the device" (paper Section V.C) — which is why kernel IV.A never
    touches the flawed device ``pow``.  Delegates to
    :func:`build_leaves_a_batch` so the single-option and batched
    paths are bit-identical by construction.
    """
    prices, values = build_leaves_a_batch([option], steps, family)
    return prices[0], values[0]


@kernel_metadata(work_per_item=lambda global_size, local_size: 1.0)
def kernel_a_work_item(wi, src_s, src_v, src_oid, dst_s, dst_v, dst_oid,
                       level_of_slot, params):
    """One tree-node update (Equation 1) reading the ping buffer.

    Arguments (all global memory, as in the paper's Figure 3):

    :param src_s / src_v / src_oid: the buffer being read this batch.
    :param dst_s / dst_v / dst_oid: the buffer being written.
    :param level_of_slot: constant slot->level table.
    :param params: per-option constants, rows of :data:`PARAM_FIELDS`.
    """
    slot = wi.get_global_id()
    t = int(level_of_slot[slot])

    child_up = slot + t + 1  # (t+1, k): one more step, same down-count
    child_dn = slot + t + 2  # (t+1, k+1)

    oid = int(src_oid[child_up])
    if oid < 0:
        # No option occupies this pipeline stage yet (pipe still filling):
        # propagate the empty marker.
        dst_oid[slot] = -1.0
        dst_s[slot] = 0.0
        dst_v[slot] = 0.0
        return

    rp = params[oid, 0]
    rq = params[oid, 1]
    pulldown = params[oid, 2]
    strike = params[oid, 3]
    sign = params[oid, 4]

    # S[t,k] = S[t+1,k] / u for every family (host precomputes 1/u);
    # the paper's Equation (1) form d * S[t+1,k] is the CRR special case.
    s = pulldown * src_s[child_up]
    continuation = rp * src_v[child_up] + rq * src_v[child_dn]
    intrinsic = sign * (s - strike)
    value = continuation if continuation > intrinsic else intrinsic

    dst_s[slot] = s
    dst_v[slot] = value
    dst_oid[slot] = float(oid)


def kernel_a_ir(precision: str = "dp") -> KernelIR:
    """Structural IR of kernel IV.A for the HLS compiler model.

    Operator census of the datapath above: three multiplies (``d*S``,
    ``rp*V``, ``rq*V``), one add, one subtract, one max, and integer
    slot/child address arithmetic.  Memory interface: five coalesced
    load units (level table, S, the two V reads, parameters) and two
    coalesced store units (S+id packed, V) per compute unit — the
    shallow-FIFO/coalescing M9K usage the paper describes for this
    kernel in Section V.B.

    :param precision: ``"dp"`` (the paper's configuration) or ``"sp"``.
    """
    width = 8 if precision == "dp" else 4
    if precision == "dp":
        live = LiveSet(f64_values=8, i32_values=4)
    else:
        live = LiveSet(f32_values=8, i32_values=4)
    return KernelIR(
        name="binomial_node_iv_a",
        precision=precision,
        init_ops=(
            OpCount("int_add", 3),
            OpCount("int_mul", 2),
            OpCount("mul", 3),
            OpCount("add", 1),
            OpCount("sub", 1),
            OpCount("max", 1),
        ),
        body_ops=(),
        global_accesses=(
            GlobalAccess("load", width_bytes=8, coalesced=True),      # level table
            GlobalAccess("load", width_bytes=width, coalesced=True),  # S child
            GlobalAccess("load", width_bytes=width, coalesced=True),  # V up
            GlobalAccess("load", width_bytes=width, coalesced=True),  # V down
            GlobalAccess("load", width_bytes=width, coalesced=True),  # params
            GlobalAccess("store", width_bytes=width, coalesced=True),  # S + oid
            GlobalAccess("store", width_bytes=width, coalesced=True),  # V
        ),
        local_memory=(),
        live=live,
        uses_barriers=False,
        work_group_size=256,
    )
