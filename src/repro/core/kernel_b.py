"""Kernel IV.B — the optimized work-group implementation.

Task parallelism (Section IV.B, Figure 4): one work-*group* prices one
option (a full binomial tree); work-item ``k`` owns tree row ``k``
(all nodes ``(t, k)`` with ``k`` constant).  The asset price ``S`` and
the option constants live in *private* memory; the shared value row
``V`` lives in *local* memory guarded by barriers, with a
register-held temporary between the read and write phases so that no
work-item overwrites a neighbour's operand (the paper's
"temporary copies to avoid memory conflicts").

Leaves are initialised in-device — work-item ``k`` evaluates
``S[N,k] = S0 * u**(N - 2k)`` with the device ``pow`` operator, which
is exactly where the Altera 13.0 accuracy defect enters on the FPGA
(Section V.C).  Work-items whose row is exhausted (``k > t``) idle
through the remaining iterations but keep hitting the barriers, as the
OpenCL work-group model requires ("the corresponding work-item is
either left idle or its results are ignored").

Host interaction collapses to three commands: write the parameter
buffer, enqueue ``N x Nop`` work-items, read the result buffer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..finance.lattice import LatticeFamily, build_lattice_arrays
from ..finance.options import Option, option_arrays
from ..hls import (
    GlobalAccess,
    KernelIR,
    LiveSet,
    LocalMemSystem,
    OpCount,
)
from ..opencl import kernel_metadata
from .faithful_math import EXACT_DOUBLE, MathProfile

__all__ = ["PARAM_FIELDS_B", "build_params_b", "make_kernel_b", "kernel_b_ir"]

#: Per-option constants the host writes to global memory:
#: [s0, up, down, rp, rq, strike, sign].  Derived quantities (u, d,
#: rp, rq) are precomputed exactly on the host; only the leaf ``pow``
#: runs on the device, matching the paper's error analysis.
PARAM_FIELDS_B = ("s0", "up", "down", "rp", "rq", "strike", "sign")


def build_params_b(
    options: Sequence[Option],
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """Host-side parameter rows of :data:`PARAM_FIELDS_B`.

    Array-native: the per-option tree constants come from one
    vectorised :func:`~repro.finance.lattice.build_lattice_arrays`
    call, so no Python loop runs over the batch.  Arguments are
    validated (same :class:`~repro.errors.ReproError` messages as the
    simulators) before anything is allocated.  Non-CRR families are
    rejected here: the in-device leaf expression ``s0 * u**(N-2k)``
    and the ``d * S`` roll both assume the CRR recombination
    ``u*d = 1``, so this kernel models the paper's CRR-only hardware.
    """
    if steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    if family is not LatticeFamily.CRR:
        raise ReproError(
            "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
            "exploits the CRR recombination u*d = 1 (paper Figure 1); "
            "use kernel IV.A (host-computed leaves) for other families"
        )
    fields = option_arrays(options)
    lattice = build_lattice_arrays(options, steps, family)
    rows = np.empty((len(options), len(PARAM_FIELDS_B)), dtype=np.float64)
    rows[:, 0] = fields.spot
    rows[:, 1] = lattice.up
    rows[:, 2] = lattice.down
    rows[:, 3] = lattice.discounted_p_up
    rows[:, 4] = lattice.discounted_p_down
    rows[:, 5] = fields.strike
    rows[:, 6] = fields.sign
    return rows


def make_kernel_b(n_steps: int, profile: MathProfile = EXACT_DOUBLE):
    """Build the kernel IV.B work-item function for ``n_steps``.

    The returned generator function expects arguments
    ``(params, results, v_row)`` where ``params`` is the per-option
    constant buffer (one row per work-group), ``results`` the output
    buffer (one value per work-group) and ``v_row`` a
    :class:`~repro.opencl.memory.LocalMemory` of ``n_steps + 1``
    elements.

    The work-group size must equal ``n_steps`` (one work-item per
    interior row; the last work-item also initialises the extra leaf).
    """

    pow_ = profile.pow_
    cast = profile.cast

    @kernel_metadata(work_per_item=lambda global_size, local_size: float(n_steps))
    def kernel_b_work_item(wi, params, results, v_row):
        k = wi.get_local_id()
        group = wi.get_group_id()

        # -- private memory: option constants and the row's asset price
        s0 = cast(params[group, 0])
        up = cast(params[group, 1])
        down = cast(params[group, 2])
        rp = cast(params[group, 3])
        rq = cast(params[group, 4])
        strike = cast(params[group, 5])
        sign = cast(params[group, 6])

        # -- leaf initialisation (device-side pow: the flawed operator)
        s = cast(s0 * pow_(up, n_steps - 2 * k))
        payoff = cast(sign * (s - strike))
        v_row[k] = payoff if payoff > 0.0 else 0.0
        if k == n_steps - 1:
            # one more leaf than work-items: the last row also fills it
            s_last = cast(s0 * pow_(up, -n_steps))
            payoff_last = cast(sign * (s_last - strike))
            v_row[n_steps] = payoff_last if payoff_last > 0.0 else 0.0
        yield wi.barrier()

        # -- backward induction over time steps
        for t in range(n_steps - 1, -1, -1):
            value = 0.0
            active = k <= t
            if active:
                # Equation (1): S[t,k] = d * S[t+1,k].  Valid because this
                # kernel is CRR-only (build_params_b rejects other
                # families): under CRR d = 1/u, so rolling by d IS the
                # family-correct S[t+1,k] / u.
                s = cast(down * s)
                continuation = cast(cast(rp * v_row[k]) + cast(rq * v_row[k + 1]))
                intrinsic = cast(sign * (s - strike))
                value = continuation if continuation > intrinsic else intrinsic
            yield wi.barrier()  # everyone finished reading the shared row
            if active:
                v_row[k] = value
            yield wi.barrier()  # row updated before the next iteration

        if k == 0:
            results[group] = v_row[0]

    return kernel_b_work_item


def kernel_b_ir(n_steps: int = 1024, work_group_size: int | None = None,
                precision: str = "dp") -> KernelIR:
    """Structural IR of kernel IV.B for the HLS compiler model.

    Init segment: the leaf path — one ``pow``, the payoff
    multiply/subtract/max and index arithmetic.  Body segment (the
    backward time loop, the part ``#pragma unroll`` replicates): three
    multiplies, one add, one subtract, one max, plus the activity
    compare.  Memory interface: two *simple* (non-coalesced) LSUs for
    the one-shot parameter read and result write; the dominant memory
    consumer is the local-memory system holding the shared value row
    (plus its conflict-avoidance temporary) for every resident
    work-group — the paper's "kernel IV.B implements its local memory
    as M9K blocks".

    :param precision: ``"dp"`` (the paper's configuration) or ``"sp"``
        for the single-precision variant the related work alludes to
        ("restrictions on accuracy are ... alleviated (fixed precision
        implementations)"); single precision halves the element width
        and swaps in the much smaller fp32 operators.
    """
    wg = work_group_size or n_steps
    width = 8 if precision == "dp" else 4
    # V row of wg+1 elements plus the half-row temporary the barrier
    # scheme keeps in flight.
    local_bytes = int((wg + 1) * width * 1.5)
    if precision == "dp":
        live = LiveSet(f64_values=7, i32_values=2)
        live_init = LiveSet(f64_values=5, i32_values=2)
    else:
        live = LiveSet(f32_values=7, i32_values=2)
        live_init = LiveSet(f32_values=5, i32_values=2)
    return KernelIR(
        name="binomial_tree_iv_b",
        precision=precision,
        init_ops=(
            OpCount("int_add", 2),
            OpCount("int_mul", 1),
            OpCount("pow", 1),
            OpCount("mul", 1),
            OpCount("sub", 1),
            OpCount("max", 1),
        ),
        body_ops=(
            OpCount("int_cmp", 1),
            OpCount("mul", 3),
            OpCount("add", 1),
            OpCount("sub", 1),
            OpCount("max", 1),
        ),
        global_accesses=(
            GlobalAccess("load", width_bytes=width, coalesced=False),   # params
            GlobalAccess("store", width_bytes=width, coalesced=False),  # result
        ),
        local_memory=(
            LocalMemSystem(
                bytes_per_group=local_bytes,
                read_ports=2,
                write_ports=1,
                # Work-groups the runtime keeps resident to hide the
                # barrier turnaround; pinned against Table I's M9K
                # budget for this kernel.
                resident_groups=28,
            ),
        ),
        live=live,
        # Leaf path keeps only s0/u/strike/sign and the pow intermediate
        # in flight.
        live_init=live_init,
        uses_barriers=True,
        work_group_size=wg,
    )
