"""`BinomialAccelerator` — the library's front door.

Wraps one *configuration* (platform x kernel architecture x precision,
i.e. one Table II column) behind a single object that:

* prices option batches with the configuration's exact arithmetic
  (including the FPGA's flawed ``pow`` where applicable);
* predicts wall-clock time and energy for the batch from the
  calibrated device models;
* for FPGA configurations, carries the full HLS compile report
  (resources/Fmax/power) of the kernel it "runs".

Example::

    import repro
    from repro import BinomialAccelerator, generate_batch

    acc = BinomialAccelerator(platform="fpga", kernel="iv_b")
    batch = generate_batch(n_options=2000)
    result = repro.price(batch.options, steps=1024, device=acc).modeled
    print(result.options_per_second, result.energy_joules)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..devices.base import ComputeModel, Precision
from ..devices.cpu import cpu_compute_model
from ..devices.fpga import fpga_compute_model
from ..devices.gpu import gpu_compute_model
from ..errors import EngineError, ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from ..hls import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS, CompiledKernel, compile_kernel
from .faithful_math import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    MathProfile,
)
from .host_a import ReadbackMode
from .kernel_a import kernel_a_ir
from .kernel_b import kernel_b_ir
from .perf_model import (
    PerfEstimate,
    kernel_a_estimate,
    kernel_b_estimate,
    reference_estimate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..engine import EngineConfig, PricingEngine

__all__ = ["AcceleratorResult", "BinomialAccelerator"]

_PLATFORMS = ("fpga", "gpu", "cpu")
_KERNELS = ("iv_a", "iv_b", "reference")


@dataclass(frozen=True)
class AcceleratorResult:
    """Prices plus the modeled cost of producing them."""

    prices: np.ndarray
    modeled_time_s: float
    energy_joules: float
    estimate: PerfEstimate

    @property
    def options_per_second(self) -> float:
        """Effective throughput at this batch size."""
        return len(self.prices) / self.modeled_time_s

    @property
    def options_per_joule(self) -> float:
        """Effective energy efficiency at this batch size."""
        return len(self.prices) / self.energy_joules


class BinomialAccelerator:
    """One accelerator configuration, ready to price batches.

    :param platform: ``"fpga"``, ``"gpu"`` or ``"cpu"``.
    :param kernel: ``"iv_a"``, ``"iv_b"`` or ``"reference"`` (CPU only).
    :param precision: ``"double"`` or ``"single"``.
    :param steps: tree discretisation (paper default 1024).
    :param readback: kernel IV.A readback mode.
    :param compile_fpga: derive the FPGA operating point from this
        library's HLS compile of the kernel IR (default) instead of
        the paper's printed Table I point.
    :param family: lattice parameterisation.
    :param engine_config: scheduling configuration for the batched
        pricing engine every :meth:`price_batch` call runs through
        (``None`` = serial engine with a reused workspace).
    :param tracer: optional :class:`repro.obs.trace.Tracer` passed to
        the internal pricing engine, so accelerator-routed batches
        record the same run/group/chunk span hierarchy.
    """

    def __init__(
        self,
        platform: str = "fpga",
        kernel: str = "iv_b",
        precision: str = Precision.DOUBLE,
        steps: int = 1024,
        readback: str = ReadbackMode.FULL_BUFFER,
        compile_fpga: bool = True,
        family: LatticeFamily = LatticeFamily.CRR,
        engine_config: "EngineConfig | None" = None,
        tracer=None,
    ):
        if platform not in _PLATFORMS:
            raise ReproError(f"platform must be one of {_PLATFORMS}, got {platform!r}")
        if kernel not in _KERNELS:
            raise ReproError(f"kernel must be one of {_KERNELS}, got {kernel!r}")
        if kernel == "reference" and platform != "cpu":
            raise ReproError("the reference software runs on the CPU platform")
        if platform == "cpu" and kernel != "reference":
            raise ReproError("the CPU platform runs the reference software only")
        Precision.check(precision)
        ReadbackMode.check(readback)

        self.platform = platform
        self.kernel = kernel
        self.precision = precision
        self.steps = steps
        self.readback = readback
        self.family = family
        self.engine_config = engine_config
        self.tracer = tracer
        self._engine: "PricingEngine | None" = None
        self._closed = False
        self.compiled: CompiledKernel | None = None

        if platform == "fpga":
            if compile_fpga:
                ir = kernel_a_ir() if kernel == "iv_a" else kernel_b_ir(steps)
                options = KERNEL_A_OPTIONS if kernel == "iv_a" else KERNEL_B_OPTIONS
                self.compiled = compile_kernel(ir, options)
            self.model: ComputeModel = fpga_compute_model(
                kernel, operating_point=self.compiled, precision=precision
            )
        elif platform == "gpu":
            self.model = gpu_compute_model(kernel, precision)
        else:
            self.model = cpu_compute_model(precision)

        self.profile = self._select_profile()

    def _select_profile(self) -> MathProfile:
        if self.precision == Precision.SINGLE:
            return EXACT_SINGLE
        if self.platform == "fpga" and self.kernel == "iv_b":
            # the Altera 13.0 double-precision pow defect (paper V.C)
            return ALTERA_13_0_DOUBLE
        return EXACT_DOUBLE

    # -- pricing -----------------------------------------------------------

    def _pricing_engine(self) -> "PricingEngine":
        """Lazily build the batched engine this accelerator prices with."""
        if self._closed:
            raise EngineError(
                "this BinomialAccelerator is closed; pricing after close() "
                "is not supported — construct a new accelerator")
        if self._engine is None:
            # Imported here: the engine package imports core modules.
            from ..engine import PricingEngine

            self._engine = PricingEngine(
                kernel=self.kernel,
                profile=self.profile,
                family=self.family,
                config=self.engine_config,
                tracer=self.tracer,
            )
        return self._engine

    def close(self) -> None:
        """Release the engine's workspace and worker pool, if any.

        Idempotent; pricing a closed accelerator raises
        :class:`~repro.errors.EngineError` (it used to silently build
        a fresh engine, unlike the engine route — the two now agree).
        """
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "BinomialAccelerator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def price_batch(self, options: Sequence[Option]) -> AcceleratorResult:
        """Removed in repro 2.0 — use :func:`repro.api.price`.

        ``repro.price(options, steps=..., device=accelerator)`` returns
        the same modeled result on the unified :class:`PriceResult`
        shape (its ``modeled`` attribute is this method's old return
        value).  This stub exists only to point stragglers there.

        :raises ReproError: always.
        """
        raise ReproError(
            "BinomialAccelerator.price_batch was removed in repro 2.0; "
            "use repro.price(options, steps=..., device=<accelerator>)"
            ".modeled — see the migration table in repro.api")

    def _price_batch_impl(self, options: Sequence[Option]) -> AcceleratorResult:
        """Price a batch with this configuration's exact arithmetic.

        Prices come from the vectorised kernel semantics (validated
        against the coroutine simulator), scheduled through the batched
        pricing engine; time and energy come from the calibrated
        performance model at this batch size.
        """
        if not options:
            raise ReproError("empty option batch")
        options = list(options)

        prices = self._pricing_engine().price(options, self.steps)

        estimate = self.performance()
        time_s = estimate.time_for(len(options))
        return AcceleratorResult(
            prices=prices,
            modeled_time_s=time_s,
            energy_joules=time_s * estimate.power_w,
            estimate=estimate,
        )

    # -- performance ----------------------------------------------------------

    def performance(self) -> PerfEstimate:
        """Steady-state performance prediction for this configuration."""
        if self.kernel == "iv_a":
            return kernel_a_estimate(self.model, self.steps, self.readback)
        if self.kernel == "iv_b":
            return kernel_b_estimate(self.model, self.steps)
        return reference_estimate(self.model, self.steps)

    def describe(self) -> str:
        """One-line configuration summary."""
        parts = [self.platform.upper(), f"kernel {self.kernel}", self.precision,
                 f"N={self.steps}", f"math={self.profile.name}"]
        if self.kernel == "iv_a":
            parts.append(f"readback={self.readback}")
        return " / ".join(parts)
