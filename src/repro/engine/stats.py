"""Execution statistics of one engine run, derived from metrics.

The paper's Table II measures accelerators in options/s and tree
nodes/s; :class:`EngineStats` reports the same units for the *host*
engine (plus scheduling detail: chunk count, tile footprint, wall and
CPU time), and converts into the existing
:class:`~repro.core.metrics.PerformanceRow` machinery so engine
measurements can sit in the same tables as the modeled devices.

Since the observability layer (PR 3) the counters are no longer ad-hoc
attributes threaded through the engine: every run counts into a
run-scoped :class:`~repro.obs.metrics.MetricsRegistry`
(:class:`RunMetrics`), the frozen :class:`EngineStats` is a *snapshot
derived from that registry* (:meth:`EngineStats.from_run`), and the
run's registry is then merged into the process-wide registry
(:func:`repro.obs.metrics.get_registry`) for Prometheus export.  The
snapshot keys — :data:`repro.obs.keys.STATS_KEYS` — are the one stable
snake_case schema shared with the bench-engine JSON (see
``docs/stats_schema.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import PerformanceRow
from ..obs import keys
from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["EngineStats", "RunMetrics"]


class RunMetrics:
    """Run-scoped metrics the engine counts into while pricing.

    One is created per :meth:`PricingEngine.run`; the cached metric
    handles keep the hot path to one method call per event.  When the
    run completes, :meth:`publish` folds the registry into the
    process-wide one and :meth:`EngineStats.from_run` freezes the
    snapshot the caller receives.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.options = reg.counter(
            keys.OPTIONS_PRICED_TOTAL, "Options priced by the engine")
        self.tree_nodes = reg.counter(
            keys.TREE_NODES_TOTAL,
            "Tree-node updates performed (the paper's throughput unit)")
        self.groups = reg.counter(
            keys.GROUPS_TOTAL, "Homogeneous (steps, family, profile) groups")
        self.chunks = reg.counter(
            keys.CHUNKS_TOTAL, "Chunks planned by the scheduler")
        self.retries = reg.counter(
            keys.RETRIES_TOTAL, "Chunk attempts re-dispatched after a failure")
        self.timeouts = reg.counter(
            keys.TIMEOUTS_TOTAL, "Chunk attempts that overran chunk_timeout_s")
        self.pool_rebuilds = reg.counter(
            keys.POOL_REBUILDS_TOTAL,
            "Worker-pool teardowns followed by a rebuild")
        self.degraded_to_serial = reg.counter(
            keys.DEGRADED_TO_SERIAL_TOTAL,
            "Runs whose circuit breaker opened (rest of batch ran serial)")
        self.quarantined_options = reg.counter(
            keys.QUARANTINED_OPTIONS_TOTAL,
            "Options isolated by quarantine bisection (NaN + FailureRecord)")
        self.greeks_options = reg.counter(
            keys.GREEKS_OPTIONS_TOTAL,
            "Options whose full greeks set was computed (run_greeks)")
        self.bump_passes = reg.counter(
            keys.BUMP_PASSES_TOTAL,
            "Bump-and-reprice passes scheduled for vega/rho differences")
        self.chunk_latency = reg.histogram(
            keys.CHUNK_LATENCY_SECONDS,
            "Wall-clock latency of completed chunk pricing attempts")
        self.run_wall = reg.histogram(
            keys.RUN_WALL_SECONDS,
            "End-to-end wall time of engine runs",
            buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0))
        # Seed a zero sample in every counter so a clean run still
        # exposes retries_total/quarantined_options_total = 0 in the
        # Prometheus text (absent-vs-zero is ambiguous to scrapers).
        for handle in (self.options, self.tree_nodes, self.groups,
                       self.chunks, self.retries, self.timeouts,
                       self.pool_rebuilds, self.degraded_to_serial,
                       self.quarantined_options, self.greeks_options,
                       self.bump_passes):
            handle.inc(0.0)

    def finalise(self, wall_time_s: float, options_per_second: float,
                 tree_nodes_per_second: float, peak_tile_bytes: int) -> None:
        """Record the run-level gauges once the clock has stopped."""
        reg = self.registry
        self.run_wall.observe(wall_time_s)
        reg.gauge(keys.OPTIONS_PER_SECOND,
                  "Throughput of the most recent engine run"
                  ).set(options_per_second)
        reg.gauge(keys.TREE_NODES_PER_SECOND,
                  "Node-update throughput of the most recent engine run"
                  ).set(tree_nodes_per_second)
        reg.gauge(keys.PEAK_TILE_BYTES,
                  "Workspace high-water mark of the largest worker"
                  ).set(peak_tile_bytes)

    def publish(self) -> None:
        """Merge this run's registry into the process-wide registry."""
        get_registry().merge(self.registry)


@dataclass(frozen=True)
class EngineStats:
    """What one :meth:`PricingEngine.run` call did and how fast.

    :param options: options priced.
    :param tree_nodes: total node updates (interior + leaves, the
        paper's throughput unit, summed over the possibly
        heterogeneous per-option depths).
    :param groups: homogeneous ``(steps, family, profile)`` groups the
        stream was split into.
    :param chunks: tiles dispatched across all groups.
    :param workers: worker processes used (1 = in-process serial).
    :param wall_time_s: end-to-end wall-clock time of the run.
    :param cpu_time_s: CPU time of the coordinating process (worker
        CPU time is not included when ``workers > 1``).
    :param peak_tile_bytes: workspace high-water mark of the largest
        worker (preallocated S/V tiles + scratch).
    :param retries: chunk attempts re-dispatched after a failure
        (worker exception, timeout, crash or non-finite prices).
    :param timeouts: chunk attempts that overran ``chunk_timeout_s``.
    :param pool_rebuilds: times the worker pool was torn down and
        rebuilt after a pool-level failure.
    :param degraded_to_serial: 1 if the circuit breaker opened and the
        rest of the batch completed on the serial in-process path.
    :param quarantined_options: options isolated by quarantine
        bisection and returned as NaN with a
        :class:`~repro.engine.reliability.FailureRecord`.
    :param greeks_options: options whose full greeks set was computed
        (``run_greeks`` only; ``options`` then counts every tree
        pricing including the bump passes).
    :param bump_passes: vega/rho bump-and-reprice passes scheduled as
        sibling chunk groups (4 per greeks run, 0 otherwise).
    :param backend: name of the :class:`~repro.backends.KernelBackend`
        that priced the run (``"numpy"``, ``"cnative"``, ``"numba"``).
    :param backend_compile_seconds: one-time compile cost this process
        paid to make that backend runnable (0.0 for NumPy, or when a
        compiled backend was already warm/disk-cached).
    :param fused_greeks: 1 when a greeks run took the single-build
        fused path (lattice params + leaves built once, bump variants
        sharing the blocked workspace), 0 for five sibling passes and
        for plain pricing runs.
    """

    options: int
    tree_nodes: int
    groups: int
    chunks: int
    workers: int
    wall_time_s: float
    cpu_time_s: float
    peak_tile_bytes: int
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: int = 0
    quarantined_options: int = 0
    greeks_options: int = 0
    bump_passes: int = 0
    backend: str = "numpy"
    backend_compile_seconds: float = 0.0
    fused_greeks: int = 0

    @classmethod
    def from_run(cls, metrics: RunMetrics, *, workers: int,
                 wall_time_s: float, cpu_time_s: float,
                 peak_tile_bytes: int, backend: str = "numpy",
                 backend_compile_seconds: float = 0.0,
                 fused_greeks: int = 0) -> "EngineStats":
        """Freeze a run's registry into the public snapshot.

        The count fields are read back through
        :data:`repro.obs.keys.STATS_TO_METRIC`, so a counter the
        engine forgot to wire shows up as a zero here and fails the
        schema test — the registry is the single source of truth.  The
        backend-attribution fields are run configuration, not counters,
        and arrive as explicit keyword arguments.
        """
        registry = metrics.registry
        counts = {
            stat: int(registry.value(metric))
            for stat, metric in keys.STATS_TO_METRIC.items()
        }
        return cls(workers=workers, wall_time_s=wall_time_s,
                   cpu_time_s=cpu_time_s, peak_tile_bytes=peak_tile_bytes,
                   backend=backend,
                   backend_compile_seconds=backend_compile_seconds,
                   fused_greeks=fused_greeks, **counts)

    @property
    def options_per_second(self) -> float:
        """Measured batch throughput (the paper's headline unit)."""
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.options / self.wall_time_s

    @property
    def tree_nodes_per_second(self) -> float:
        """Measured node-update throughput."""
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.tree_nodes / self.wall_time_s

    def performance_row(
        self,
        label: str = "Host engine",
        platform: str = "host CPU",
        precision: str = "double",
        rmse_display: str = "0",
    ) -> PerformanceRow:
        """This run as a Table II column (options/J is unmetered)."""
        return PerformanceRow(
            label=label,
            platform=platform,
            precision=precision,
            options_per_second=self.options_per_second,
            rmse_display=rmse_display,
            options_per_joule=None,
            tree_nodes_per_second=self.tree_nodes_per_second,
        )

    @property
    def reliability_counters(self) -> dict:
        """The fault-tolerance counters as a name->count mapping."""
        return {name: getattr(self, name) for name in keys.RELIABILITY_KEYS}

    def describe(self) -> str:
        """One-line ``key=value`` summary in the canonical schema order.

        Keys are exactly :data:`repro.obs.keys.STATS_KEYS` — the same
        names, in the same order, as :meth:`as_dict` and the
        bench-engine JSON.
        """
        snapshot = self.as_dict()
        parts = []
        for key in keys.STATS_KEYS:
            value = snapshot[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.6g}")
            else:
                parts.append(f"{key}={value}")
        return " ".join(parts)

    def as_dict(self) -> dict:
        """JSON-ready snapshot: :data:`~repro.obs.keys.STATS_KEYS`, in
        order (used by the benchmark harness and the trace exporter)."""
        return {key: getattr(self, key) for key in keys.STATS_KEYS}
