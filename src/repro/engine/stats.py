"""Execution statistics of one engine run.

The paper's Table II measures accelerators in options/s and tree
nodes/s; :class:`EngineStats` reports the same units for the *host*
engine (plus scheduling detail: chunk count, tile footprint, wall and
CPU time), and converts into the existing
:class:`~repro.core.metrics.PerformanceRow` machinery so engine
measurements can sit in the same tables as the modeled devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import PerformanceRow

__all__ = ["EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """What one :meth:`PricingEngine.run` call did and how fast.

    :param options: options priced.
    :param tree_nodes: total node updates (interior + leaves, the
        paper's throughput unit, summed over the possibly
        heterogeneous per-option depths).
    :param groups: homogeneous ``(steps, family, profile)`` groups the
        stream was split into.
    :param chunks: tiles dispatched across all groups.
    :param workers: worker processes used (1 = in-process serial).
    :param wall_time_s: end-to-end wall-clock time of the run.
    :param cpu_time_s: CPU time of the coordinating process (worker
        CPU time is not included when ``workers > 1``).
    :param peak_tile_bytes: workspace high-water mark of the largest
        worker (preallocated S/V tiles + scratch).
    :param retries: chunk attempts re-dispatched after a failure
        (worker exception, timeout, crash or non-finite prices).
    :param timeouts: chunk attempts that overran ``chunk_timeout_s``.
    :param pool_rebuilds: times the worker pool was torn down and
        rebuilt after a pool-level failure.
    :param degraded_to_serial: 1 if the circuit breaker opened and the
        rest of the batch completed on the serial in-process path.
    :param quarantined_options: options isolated by quarantine
        bisection and returned as NaN with a
        :class:`~repro.engine.reliability.FailureRecord`.
    """

    options: int
    tree_nodes: int
    groups: int
    chunks: int
    workers: int
    wall_time_s: float
    cpu_time_s: float
    peak_tile_bytes: int
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: int = 0
    quarantined_options: int = 0

    @property
    def options_per_second(self) -> float:
        """Measured batch throughput (the paper's headline unit)."""
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.options / self.wall_time_s

    @property
    def tree_nodes_per_second(self) -> float:
        """Measured node-update throughput."""
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.tree_nodes / self.wall_time_s

    def performance_row(
        self,
        label: str = "Host engine",
        platform: str = "host CPU",
        precision: str = "double",
        rmse_display: str = "0",
    ) -> PerformanceRow:
        """This run as a Table II column (options/J is unmetered)."""
        return PerformanceRow(
            label=label,
            platform=platform,
            precision=precision,
            options_per_second=self.options_per_second,
            rmse_display=rmse_display,
            options_per_joule=None,
            tree_nodes_per_second=self.tree_nodes_per_second,
        )

    @property
    def reliability_counters(self) -> dict:
        """The fault-tolerance counters as a name->count mapping."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_to_serial": self.degraded_to_serial,
            "quarantined_options": self.quarantined_options,
        }

    def describe(self) -> str:
        """One-line run summary including the reliability counters."""
        flagged = {name: count
                   for name, count in self.reliability_counters.items()
                   if count}
        reliability = (
            " / ".join(f"{name}={count}" for name, count in flagged.items())
            if flagged else "clean"
        )
        return (
            f"{self.options} options in {self.chunks} chunks / "
            f"{self.workers} workers / "
            f"{self.options_per_second:,.0f} options/s / "
            f"reliability: {reliability}"
        )

    def as_dict(self) -> dict:
        """JSON-ready form (used by the benchmark harness)."""
        return {
            "options": self.options,
            "tree_nodes": self.tree_nodes,
            "groups": self.groups,
            "chunks": self.chunks,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "peak_tile_bytes": self.peak_tile_bytes,
            "options_per_second": self.options_per_second,
            "tree_nodes_per_second": self.tree_nodes_per_second,
            **self.reliability_counters,
        }
