"""Batched pricing engine: host-side scheduling for the kernel paths.

The paper scales by mapping one option to one work-group and packing
work-groups onto compute units; this subsystem applies the same idea
to the host reproduction — group, tile, fan out, reuse buffers —
without changing a single arithmetic operation:

* :mod:`~repro.engine.workspace` — preallocated, growable tile pool
  the backward-induction loop runs in;
* :mod:`~repro.engine.scheduler` — stream grouping, cache-budgeted
  chunk planning and the picklable per-chunk worker;
* :mod:`~repro.engine.stats` — measured options/s, tree-nodes/s and
  scheduling counters, convertible to Table II rows;
* :mod:`~repro.engine.reliability` — retry/backoff policy, circuit
  breaker, quarantine failure records;
* :mod:`~repro.engine.faults` — deterministic, seeded fault injection
  (chunk faults and simulated transport failures);
* :mod:`~repro.engine.engine` — the :class:`PricingEngine` facade.
"""

from .engine import (
    EngineConfig,
    EngineResult,
    GreeksEngineResult,
    PricingEngine,
)
from .faults import (
    ALWAYS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    TransportFaultInjector,
)
from .reliability import (
    CircuitBreaker,
    FailureRecord,
    RetryPolicy,
    retry_call,
)
from .scheduler import (
    KERNELS,
    TASKS,
    Chunk,
    greeks_chunk,
    group_stream,
    plan_chunks,
    price_chunk,
    split_chunk,
)
from .stats import EngineStats
from .workspace import Workspace, kernel_tile_bytes

__all__ = [
    "PricingEngine",
    "EngineConfig",
    "EngineResult",
    "GreeksEngineResult",
    "EngineStats",
    "Workspace",
    "kernel_tile_bytes",
    "Chunk",
    "KERNELS",
    "TASKS",
    "greeks_chunk",
    "group_stream",
    "plan_chunks",
    "price_chunk",
    "split_chunk",
    "ALWAYS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "TransportFaultInjector",
    "CircuitBreaker",
    "FailureRecord",
    "RetryPolicy",
    "retry_call",
]
