"""Work decomposition for the batched pricing engine.

The engine's scheduling model mirrors the paper's kernel IV.B: the
device prices one option per work-group and keeps a bounded number of
work-groups resident, so host-side throughput comes from feeding it
*tiles* of options rather than one giant buffer.  Here the "compute
units" are worker processes and the "resident work-group set" is the
workspace tile a worker prices one chunk in:

1. **Group** the incoming stream by ``(steps, family, profile)`` so
   heterogeneous requests still vectorise — every chunk is internally
   homogeneous and runs the wide numpy path.
2. **Chunk** each group into tiles whose workspace footprint fits a
   cache/memory budget (``kernel_tile_bytes``); a tile that fits in
   the last-level cache keeps the ~1000-iteration backward loop out
   of DRAM.
3. **Dispatch** chunks over a process pool (or inline for
   ``workers=1``) and scatter results back into input order.

Everything here is deliberately free of policy: the
:class:`~repro.engine.engine.PricingEngine` owns configuration and
statistics, this module owns the mechanics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Sequence

import numpy as np

import os
import time

from ..core.batch_sim import simulate_kernel_a_batch, simulate_kernel_b_batch
from ..core.faithful_math import get_profile
from ..errors import BackendUnavailableError, ReproError
from ..finance.binomial import price_binomial
from ..finance.greeks import greeks_from_levels, tree_value_levels
from ..finance.lattice import LatticeFamily, build_lattice_arrays
from ..finance.options import Option, option_arrays
from ..obs.trace import SpanContext, _worker_record
from .workspace import Workspace, kernel_tile_bytes

__all__ = ["Chunk", "ChunkReport", "KERNELS", "TASKS", "chunk_width",
           "greeks_chunk", "greeks_fused_chunk", "group_stream",
           "plan_chunks", "price_chunk", "price_chunk_observed",
           "split_chunk"]

#: Kernels the engine can schedule: the two paper accelerators plus
#: the reference software pricer (per-option backward induction).
KERNELS = ("iv_a", "iv_b", "reference")

#: Work a chunk can carry: ``"price"`` produces one root value per
#: option; ``"greeks"`` produces ``[price, delta, gamma, theta]`` rows
#: from the same single pricing pass (level capture, no re-pricing);
#: ``"greeks_fused"`` produces the full ``[price, delta, gamma, theta,
#: vega, rho]`` rows from one worker call that prices the base
#: contracts and all four bump variants through a single simulate
#: (lattice params and leaves built once, 5x-wide shared tile).
TASKS = ("price", "greeks", "greeks_fused")


def chunk_width(task: str) -> int:
    """Workspace rows one option of ``task`` occupies in a worker tile.

    The fused greeks task prices five contract variants per option in
    one simulate call, so its tiles are five rows wide per option; the
    planner divides its byte budget by this factor so the fused path
    honours the same cache budget as everything else.
    """
    return 5 if task == "greeks_fused" else 1


@dataclass(frozen=True)
class Chunk:
    """One homogeneous tile of work, ready for a single worker call.

    :param indices: positions of these options in the caller's stream
        (used to scatter prices back into input order).
    :param options: the contracts, aligned with ``indices``.
    :param steps: tree depth shared by every option in the tile.
    :param task: what the worker computes — one of :data:`TASKS`.
    :param group: label of the scheduling group this chunk belongs to
        (empty for plain pricing runs; greeks runs use it to keep the
        base pass and the vega/rho bump passes as sibling span groups).
    :param bump_vol: volatility bump of the fused greeks task (the
        worker builds the vega variants itself; 0 for other tasks).
    :param bump_rate: rate bump of the fused greeks task.
    """

    indices: tuple[int, ...]
    options: tuple[Option, ...]
    steps: int
    task: str = "price"
    group: str = ""
    bump_vol: float = 0.0
    bump_rate: float = 0.0

    def __len__(self) -> int:
        return len(self.options)


@dataclass(frozen=True)
class ChunkReport:
    """Worker-side observation of one pricing attempt.

    Travels back over the pool boundary next to the prices: the
    measured attempt latency always (it feeds the
    ``repro_engine_chunk_latency_seconds`` histogram), plus the
    worker's serialised spans when the parent sent a
    :class:`~repro.obs.trace.SpanContext` (tracing enabled).
    """

    duration_s: float
    pid: int
    spans: "tuple[dict, ...]" = ()


def group_stream(
    options: Sequence[Option],
    steps: "int | Sequence[int]",
) -> "dict[int, tuple[list[int], list[Option]]]":
    """Partition a request stream into vectorisable groups.

    ``steps`` is either one depth for the whole stream or one per
    option; the returned mapping is ``steps -> (indices, options)``
    with indices in ascending input order (so chunking preserves
    locality and results scatter back deterministically).
    """
    options = list(options)
    if not options:
        raise ReproError("empty option batch")
    if np.ndim(steps) == 0:
        per_option = [int(steps)] * len(options)
    else:
        per_option = [int(s) for s in steps]
        if len(per_option) != len(options):
            raise ReproError(
                f"per-option steps length {len(per_option)} does not match "
                f"batch size {len(options)}"
            )
    groups: dict[int, tuple[list[int], list[Option]]] = {}
    for index, (option, n) in enumerate(zip(options, per_option)):
        indices, members = groups.setdefault(n, ([], []))
        indices.append(index)
        members.append(option)
    return groups


def plan_chunks(
    indices: Sequence[int],
    options: Sequence[Option],
    steps: int,
    dtype,
    chunk_options: "int | None",
    tile_budget_bytes: int,
    min_chunk_options: int,
    workers: int,
    task: str = "price",
    group: str = "",
    width: int = 1,
    bump_vol: float = 0.0,
    bump_rate: float = 0.0,
) -> "list[Chunk]":
    """Shard one homogeneous group into workspace-sized tiles.

    Tile rows are chosen so one worker's S/V/scratch footprint stays
    within ``tile_budget_bytes`` (unless ``chunk_options`` pins the
    size explicitly), never below ``min_chunk_options`` rows, and —
    when fanning out — small enough that every worker gets work.
    ``width`` scales the per-option footprint estimate (see
    :func:`chunk_width` — the fused greeks task prices five variants
    per option in one tile).  ``task``/``group``/``bump_*`` are
    stamped onto every chunk unchanged.
    """
    total = len(options)
    if chunk_options is not None:
        rows = max(1, int(chunk_options))
    else:
        per_row = kernel_tile_bytes(1, steps, dtype) * max(1, width)
        rows = max(min_chunk_options, tile_budget_bytes // per_row)
        if workers > 1:
            rows = min(rows, math.ceil(total / workers))
        rows = max(1, rows)
    return [
        Chunk(
            indices=tuple(indices[lo:lo + rows]),
            options=tuple(options[lo:lo + rows]),
            steps=steps,
            task=task,
            group=group,
            bump_vol=bump_vol,
            bump_rate=bump_rate,
        )
        for lo in range(0, total, rows)
    ]


def split_chunk(chunk: Chunk) -> "tuple[Chunk, ...]":
    """Halve a chunk for quarantine bisection.

    A chunk that keeps failing after retries is split and each half
    retried independently, until single failing options are isolated;
    a one-option chunk cannot split further.
    """
    if len(chunk) <= 1:
        return (chunk,)
    mid = len(chunk) // 2
    return (
        dc_replace(chunk, indices=chunk.indices[:mid],
                   options=chunk.options[:mid]),
        dc_replace(chunk, indices=chunk.indices[mid:],
                   options=chunk.options[mid:]),
    )


# -- worker side -----------------------------------------------------------

#: Process-local tile pool: with a fork/forkserver pool each worker
#: process keeps one workspace alive across every chunk it prices, the
#: engine-side analogue of the device keeping its local-memory value
#: rows resident between work-group launches.
_WORKER_WORKSPACE: "Workspace | None" = None


def _worker_workspace() -> Workspace:
    global _WORKER_WORKSPACE
    if _WORKER_WORKSPACE is None:
        _WORKER_WORKSPACE = Workspace()
    return _WORKER_WORKSPACE


#: Process-local backend instances, keyed by name.  The pool path
#: submits the backend *name* (a resolved instance holds an unpicklable
#: ctypes/JIT handle); each worker process resolves it once and reuses
#: the instance — compiled backends therefore pay their compile/load
#: cost once per worker, not once per chunk.
_WORKER_BACKENDS: "dict[str, object]" = {}


def _worker_backend(backend):
    """Resolve a chunk's backend argument into a usable instance.

    ``None`` stays ``None`` (the simulators pin their NumPy default);
    an instance passes through (serial path); a name is resolved via
    the registry with a per-process cache.  A name that cannot be
    realised in the worker (compiler missing in a forkserver child,
    say) falls back to the NumPy reference path — backends are
    bit-identical by contract, so the fallback changes timing, never
    prices.
    """
    if backend is None or not isinstance(backend, str):
        return backend
    resolved = _WORKER_BACKENDS.get(backend)
    if resolved is None:
        from ..backends import get_backend

        try:
            resolved = get_backend(backend)
        except BackendUnavailableError:
            resolved = get_backend("numpy")
        _WORKER_BACKENDS[backend] = resolved
    return resolved


def greeks_chunk(
    kernel: str,
    options: Sequence[Option],
    steps: int,
    profile,
    family: LatticeFamily,
    workspace: "Workspace | None" = None,
    backend=None,
) -> np.ndarray:
    """Price one chunk *and* its level-0..2 sensitivities in one pass.

    Returns ``(n, 4)`` float64 rows ``[price, delta, gamma, theta]``.
    The kernel simulators run with ``capture_levels=True`` — the value
    rows of tree levels 1 and 2 are copied out of the same time-major
    backward loop that produces the price, so the sensitivities cost
    no second pricing.  The reference kernel walks
    :func:`repro.finance.greeks.tree_value_levels` per option, the
    loop-based twin of the same capture.  Both funnel through
    :func:`repro.finance.greeks.greeks_from_levels`, so batch and
    scalar greeks share one formula.
    """
    if kernel in ("iv_a", "iv_b"):
        simulate = (simulate_kernel_a_batch if kernel == "iv_a"
                    else simulate_kernel_b_batch)
        prices, level1, level2 = simulate(
            options, steps, profile, family, workspace=workspace,
            capture_levels=True, backend=backend)
        fields = option_arrays(options)
        lattice = build_lattice_arrays(options, steps, family)
        delta, gamma, theta = greeks_from_levels(
            fields.spot, lattice.up, lattice.down, lattice.dt,
            prices, level1, level2)
        return np.column_stack((prices, delta, gamma, theta))
    if kernel == "reference":
        rows = np.empty((len(options), 4), dtype=np.float64)
        for i, option in enumerate(options):
            price, level1, level2, params = tree_value_levels(
                option, steps, family)
            delta, gamma, theta = greeks_from_levels(
                option.spot, params.up, params.down, params.dt, price,
                level1, level2)
            rows[i] = (price, delta, gamma, theta)
        return rows
    raise ReproError(f"kernel must be one of {KERNELS}, got {kernel!r}")


def greeks_fused_chunk(
    kernel: str,
    options: Sequence[Option],
    steps: int,
    profile,
    family: LatticeFamily,
    bump_vol: float,
    bump_rate: float,
    workspace: "Workspace | None" = None,
    backend=None,
) -> np.ndarray:
    """The full greeks set of one chunk from a single worker call.

    Returns ``(n, 6)`` float64 rows
    ``[price, delta, gamma, theta, vega, rho]``.  Where the five-pass
    schedule prices the base contracts and the four bump variants as
    separate sibling chunk groups (five lattice-parameter builds, five
    leaf builds, five dispatches), the fused task concatenates all
    five variant sets — base, vol ±``bump_vol``, rate ±``bump_rate``,
    in the canonical ``_GREEKS_PASSES`` order — into *one* simulate
    call sharing one 5x-wide workspace tile.  delta/gamma/theta come
    from level capture on the base columns; vega/rho are the central
    differences of the bump columns.

    Bit-compatible with the five-pass path by construction: the
    backward roll is columnwise-independent, so pricing a variant in
    column ``p*n + i`` of the fused tile performs exactly the
    operation sequence pass ``p`` performed on its column ``i``.
    """
    options = list(options)
    n = len(options)
    floor = 1e-8  # keep the down-bumped volatility positive
    variants = (
        options
        + [o.with_volatility(o.volatility + bump_vol) for o in options]
        + [o.with_volatility(max(o.volatility - bump_vol, floor))
           for o in options]
        + [dc_replace(o, rate=o.rate + bump_rate) for o in options]
        + [dc_replace(o, rate=o.rate - bump_rate) for o in options]
    )
    if kernel in ("iv_a", "iv_b"):
        simulate = (simulate_kernel_a_batch if kernel == "iv_a"
                    else simulate_kernel_b_batch)
        prices, level1, level2 = simulate(
            variants, steps, profile, family, workspace=workspace,
            capture_levels=True, backend=backend)
        fields = option_arrays(options)
        lattice = build_lattice_arrays(options, steps, family)
        delta, gamma, theta = greeks_from_levels(
            fields.spot, lattice.up, lattice.down, lattice.dt,
            prices[:n], level1[:n], level2[:n])
    elif kernel == "reference":
        prices = np.empty(5 * n, dtype=np.float64)
        delta = np.empty(n, dtype=np.float64)
        gamma = np.empty(n, dtype=np.float64)
        theta = np.empty(n, dtype=np.float64)
        for i, option in enumerate(variants):
            price, level1, level2, params = tree_value_levels(
                option, steps, family)
            prices[i] = price
            if i < n:
                delta[i], gamma[i], theta[i] = greeks_from_levels(
                    option.spot, params.up, params.down, params.dt,
                    price, level1, level2)
    else:
        raise ReproError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    vega = (prices[n:2 * n] - prices[2 * n:3 * n]) / (2.0 * bump_vol)
    rho = (prices[3 * n:4 * n] - prices[4 * n:5 * n]) / (2.0 * bump_rate)
    return np.column_stack((prices[:n], delta, gamma, theta, vega, rho))


def price_chunk(
    kernel: str,
    options: Sequence[Option],
    steps: int,
    profile_name,
    family_value: str,
    indices: "Sequence[int] | None" = None,
    faults=None,
    attempt: int = 0,
    in_pool: bool = True,
    workspace: "Workspace | None" = None,
    task: str = "price",
    backend=None,
    bump_vol: float = 0.0,
    bump_rate: float = 0.0,
) -> np.ndarray:
    """Price one chunk; the unit of work a pool worker executes.

    The positional arguments take picklable primitives (profile by
    name, family by enum value) so the same entry point serves the
    serial path and ``ProcessPoolExecutor.submit``; the serial path
    may pass a resolved :class:`~repro.core.faithful_math.MathProfile`
    and its own workspace instead.  ``backend`` follows the same
    convention — a resolved :class:`~repro.backends.KernelBackend`
    serially, its *name* over the pool boundary (resolved per worker
    process by :func:`_worker_backend`), or ``None`` for the NumPy
    default.

    ``indices``/``faults``/``attempt`` thread the engine's
    deterministic fault-injection plan (see
    :mod:`repro.engine.faults`) through to the worker: faults keyed to
    an option index fire in whichever chunk carries that option, while
    ``attempt < spec.attempts`` — a pure function of the arguments, so
    the same plan replays identically across processes and retries.

    ``task="greeks"`` routes to :func:`greeks_chunk` and returns
    ``(n, 4)`` rows instead of a price vector; ``task="greeks_fused"``
    routes to :func:`greeks_fused_chunk` (which consumes
    ``bump_vol``/``bump_rate``) and returns ``(n, 6)`` rows; every
    other mechanism (faults, retries, workspace reuse) is identical.
    """
    profile = (get_profile(profile_name) if isinstance(profile_name, str)
               else profile_name)
    family = LatticeFamily(family_value)
    if task not in TASKS:
        raise ReproError(f"task must be one of {TASKS}, got {task!r}")
    backend = _worker_backend(backend)
    if faults is not None and indices is not None:
        faults.fire_before_pricing(indices, attempt, in_pool)
    if workspace is None:
        workspace = _worker_workspace()
    if task == "greeks_fused":
        rows = greeks_fused_chunk(kernel, options, steps, profile, family,
                                  bump_vol, bump_rate, workspace=workspace,
                                  backend=backend)
        if faults is not None and indices is not None:
            rows = faults.corrupt_prices(indices, attempt, rows)
        return rows
    if task == "greeks":
        rows = greeks_chunk(kernel, options, steps, profile, family,
                            workspace=workspace, backend=backend)
        if faults is not None and indices is not None:
            rows = faults.corrupt_prices(indices, attempt, rows)
        return rows
    if kernel == "iv_b":
        prices = simulate_kernel_b_batch(options, steps, profile, family,
                                         workspace=workspace, backend=backend)
    elif kernel == "iv_a":
        prices = simulate_kernel_a_batch(options, steps, profile, family,
                                         workspace=workspace, backend=backend)
    elif kernel == "reference":
        prices = np.array(
            [price_binomial(o, steps, family, dtype=profile.dtype).price
             for o in options],
            dtype=np.float64,
        )
    else:
        raise ReproError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if faults is not None and indices is not None:
        prices = faults.corrupt_prices(indices, attempt, prices)
    return prices


def price_chunk_observed(
    kernel: str,
    options: Sequence[Option],
    steps: int,
    profile_name,
    family_value: str,
    indices: "Sequence[int] | None" = None,
    faults=None,
    attempt: int = 0,
    in_pool: bool = True,
    workspace: "Workspace | None" = None,
    span_context: "SpanContext | None" = None,
    task: str = "price",
    backend=None,
    bump_vol: float = 0.0,
    bump_rate: float = 0.0,
) -> "tuple[np.ndarray, ChunkReport]":
    """Price one chunk and report what the worker saw.

    The observed twin of :func:`price_chunk`, and what the engine's
    pool path actually submits: same pricing, same exceptions, but the
    return value carries a :class:`ChunkReport` with the measured
    attempt latency and — when ``span_context`` says the parent is
    tracing — the worker's spans, serialised so they survive the
    :class:`~concurrent.futures.ProcessPoolExecutor` boundary and can
    be re-attached under the parent's chunk span
    (:meth:`repro.obs.trace.Span.adopt`).  Timestamps are
    CLOCK_MONOTONIC, which is system-wide on Linux, so worker spans
    mesh onto the parent's timeline directly.
    """
    name = f"worker:{kernel}" if task == "price" else f"worker:{kernel}:{task}"
    span = _worker_record(
        span_context, name, "worker",
        options=len(options), steps=steps, attempt=attempt,
        pid=os.getpid(),
    )
    start = time.perf_counter()
    try:
        with span:
            prices = price_chunk(
                kernel, options, steps, profile_name, family_value,
                indices=indices, faults=faults, attempt=attempt,
                in_pool=in_pool, workspace=workspace, task=task,
                backend=backend, bump_vol=bump_vol, bump_rate=bump_rate,
            )
    finally:
        duration_s = time.perf_counter() - start
    report = ChunkReport(
        duration_s=duration_s,
        pid=os.getpid(),
        spans=(span.end().as_dict(),) if span_context is not None else (),
    )
    return prices, report
