"""Reusable tile buffers for the backward-induction hot loop.

Pricing one chunk of ``rows`` options at depth ``N`` needs a handful
of ``rows x (N+1)`` matrices (the asset-price tile ``S``, the value
tile ``V`` and a few scratch operands).  Allocating them afresh for
every chunk — which is what a naive numpy program does implicitly on
every ``a * b`` expression, ~4 temporaries per backward step, ~4 000
allocations per option batch at N=1024 — costs both allocator time
and cache locality.  A :class:`Workspace` keeps one growable flat
buffer per tile name and hands out exactly-shaped views, so a long
stream of equally-shaped chunks runs allocation-free after the first.

This module deliberately imports nothing from the rest of the
library; it is the lowest layer of the execution engine and is also
used by :mod:`repro.core.batch_sim`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace", "kernel_tile_bytes"]

#: Tile names each kernel's backward loop leases, used for footprint
#: accounting: S, its double-buffer twin, the value row, two arithmetic
#: scratch operands (continuation / intrinsic) and the exercise mask.
_FLOAT_TILES_PER_KERNEL = 5
_BOOL_TILES_PER_KERNEL = 1


class Workspace:
    """A named pool of preallocated, growable array tiles.

    ``tile(name, shape, dtype)`` returns a C-contiguous array of
    exactly ``shape`` backed by a cached flat buffer.  The buffer is
    reallocated only when a request outgrows its current capacity (or
    changes dtype), so repeated leases for the same or smaller shapes
    are free.  Contents are *not* zeroed between leases — callers own
    full initialisation, exactly like device global memory.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._peak_bytes = 0

    def tile(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Lease the tile ``name`` with exactly ``shape`` elements."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dtype or buf.size < count:
            buf = np.empty(count, dtype=dtype)
            self._buffers[name] = buf
            self._peak_bytes = max(self._peak_bytes, self.nbytes)
        return buf[:count].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Bytes currently held across all tiles."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`nbytes` over the workspace's life."""
        return max(self._peak_bytes, self.nbytes)

    def release(self) -> None:
        """Drop every buffer (keeps the peak-bytes statistic)."""
        self._peak_bytes = self.peak_bytes
        self._buffers.clear()


def kernel_tile_bytes(rows: int, steps: int, dtype) -> int:
    """Workspace footprint of one ``rows``-option chunk at depth ``steps``.

    Analytic counterpart of :attr:`Workspace.peak_bytes` for the
    kernel simulators' tile set; the scheduler uses it to size chunks
    against a memory budget without allocating anything.
    """
    itemsize = np.dtype(dtype).itemsize
    cols = steps + 1
    return rows * cols * (
        _FLOAT_TILES_PER_KERNEL * itemsize + _BOOL_TILES_PER_KERNEL
    )
