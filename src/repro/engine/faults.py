"""Deterministic, seeded fault injection for the pricing engine.

A production pricing service dies in ways a unit test never sees by
accident: a worker process segfaults, a chunk hangs behind a stuck
driver call, market data carries a NaN, a PCIe transfer times out (the
failure class the data-centre FPGA deployment papers treat as routine).
This module makes every one of those failure modes *reproducible*:

* :class:`FaultPlan` — a picklable schedule of per-option faults the
  engine threads through to its chunk workers.  A spec fires while
  ``attempt < spec.attempts``, so "fail twice then succeed" and
  "fail forever" (:data:`ALWAYS`) are both stateless and therefore
  deterministic across processes, retries and quarantine splits.
* :class:`TransportFaultInjector` — a seeded failure schedule for the
  simulated OpenCL transport, hooked into
  :class:`~repro.opencl.queue.CommandQueue` (per-queue) and
  :mod:`repro.devices.link` (module-level), raising
  :class:`~repro.errors.TransportFaultError` on selected transfers or
  kernel launches.

Nothing here ever fires unless explicitly installed; the zero-fault
path through the engine stays bit-identical to the simulators.
"""

from __future__ import annotations

import enum
import os
import random
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import TransportFaultError, WorkerCrashError

__all__ = [
    "ALWAYS",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFaultError",
    "TransportFaultInjector",
]

#: ``attempts`` value meaning "fire on every attempt" (a poison fault
#: that no amount of retrying fixes — only quarantine isolates it).
ALWAYS = 1 << 30


class InjectedFaultError(RuntimeError):
    """The exception an injected ``RAISE`` fault throws.

    Deliberately a bare :class:`RuntimeError` subclass — *not* a
    :class:`~repro.errors.ReproError` — so tests exercise the engine's
    promise that arbitrary worker exceptions are normalised into the
    :class:`~repro.errors.EngineError` taxonomy.
    """


class FaultKind(enum.Enum):
    """What an injected fault does to the chunk it fires in."""

    #: Raise :class:`InjectedFaultError` before any pricing happens.
    RAISE = "raise"
    #: Price normally, then overwrite the targeted option's price with NaN.
    NAN = "nan"
    #: Sleep ``hang_s`` before pricing (a stuck driver call); with a
    #: ``chunk_timeout_s`` deadline the host sees a hung chunk.
    HANG = "hang"
    #: ``os._exit`` the worker process mid-chunk (pool mode); the serial
    #: path simulates the crash by raising
    #: :class:`~repro.errors.WorkerCrashError` instead of killing the
    #: test process.
    KILL = "kill"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, targeted at a stream position.

    :param option_index: position in the caller's option stream; the
        fault fires in whichever chunk contains that option, including
        the smaller chunks quarantine splits it into.
    :param kind: what happens (see :class:`FaultKind`).
    :param attempts: fire while the chunk's attempt number is below
        this (``1`` = fail once then heal; :data:`ALWAYS` = poison).
    :param hang_s: sleep duration for :attr:`FaultKind.HANG`.
    """

    option_index: int
    kind: FaultKind
    attempts: int = 1
    hang_s: float = 0.25


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of engine faults.

    The plan is immutable and picklable: it crosses the process
    boundary with each chunk, and "has this fault fired?" is a pure
    function of ``(spec, attempt)`` — no shared mutable state, so the
    same plan replays identically in serial, pool and quarantine
    execution.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def active_specs(self, indices: Sequence[int],
                     attempt: int) -> "list[FaultSpec]":
        """Specs that fire for a chunk holding ``indices`` at ``attempt``."""
        targets = set(indices)
        return [spec for spec in self.specs
                if spec.option_index in targets and attempt < spec.attempts]

    def fire_before_pricing(self, indices: Sequence[int], attempt: int,
                            in_pool: bool) -> None:
        """Trigger RAISE / HANG / KILL faults for one chunk attempt."""
        for spec in self.active_specs(indices, attempt):
            if spec.kind is FaultKind.HANG:
                time.sleep(spec.hang_s)
            elif spec.kind is FaultKind.RAISE:
                raise InjectedFaultError(
                    f"injected fault on option {spec.option_index} "
                    f"(attempt {attempt})"
                )
            elif spec.kind is FaultKind.KILL:
                if in_pool:
                    os._exit(13)
                raise WorkerCrashError(
                    f"injected worker crash on option {spec.option_index} "
                    f"(serial path simulates os._exit)"
                )

    def corrupt_prices(self, indices: Sequence[int], attempt: int,
                       prices: np.ndarray) -> np.ndarray:
        """Apply NAN faults to a freshly priced chunk result."""
        positions = {index: pos for pos, index in enumerate(indices)}
        for spec in self.active_specs(indices, attempt):
            if spec.kind is FaultKind.NAN:
                prices[positions[spec.option_index]] = np.nan
        return prices

    @classmethod
    def single(cls, option_index: int, kind: FaultKind,
               attempts: int = 1, hang_s: float = 0.25,
               seed: int = 0) -> "FaultPlan":
        """Convenience constructor for a one-fault plan."""
        return cls(specs=(FaultSpec(option_index=option_index, kind=kind,
                                    attempts=attempts, hang_s=hang_s),),
                   seed=seed)

    @classmethod
    def random(cls, seed: int, n_options: int, n_faults: int = 2,
               kinds: Sequence[FaultKind] = (FaultKind.RAISE, FaultKind.NAN),
               attempts: int = 1, hang_s: float = 0.25) -> "FaultPlan":
        """A seeded plan: same ``seed`` -> same targets and kinds.

        This is what the CI fault-injection matrix drives: three fixed
        seeds, three reproducible failure schedules.
        """
        rng = random.Random(f"fault-plan:{seed}")
        chosen = sorted(rng.sample(range(n_options),
                                   min(n_faults, n_options)))
        specs = tuple(
            FaultSpec(option_index=index, kind=rng.choice(tuple(kinds)),
                      attempts=attempts, hang_s=hang_s)
            for index in chosen
        )
        return cls(specs=specs, seed=seed)


class TransportFaultInjector:
    """Seeded transfer/launch failure schedule for the simulated transport.

    Install one on a :class:`~repro.opencl.queue.CommandQueue`
    (``fault_injector=`` constructor argument) or on the PCIe link model
    (:func:`repro.devices.link.install_fault_injector`).  Failures are
    chosen either explicitly (``fail_transfers`` / ``fail_launches``
    are call ordinals, 0-based) or by a seeded Bernoulli draw per call
    — in both cases the schedule is a pure function of the seed and
    the call sequence, so a failing run replays exactly.

    :param seed: reproducibility seed for the rate-based draws.
    :param transfer_failure_rate: probability a transfer fails.
    :param launch_failure_rate: probability a kernel launch fails.
    :param fail_transfers: transfer call ordinals that always fail.
    :param fail_launches: launch call ordinals that always fail.
    """

    def __init__(self, seed: int = 0,
                 transfer_failure_rate: float = 0.0,
                 launch_failure_rate: float = 0.0,
                 fail_transfers: Sequence[int] = (),
                 fail_launches: Sequence[int] = ()):
        self.seed = seed
        self.transfer_failure_rate = transfer_failure_rate
        self.launch_failure_rate = launch_failure_rate
        self.fail_transfers = frozenset(fail_transfers)
        self.fail_launches = frozenset(fail_launches)
        self._transfer_rng = random.Random(f"transport:{seed}:transfer")
        self._launch_rng = random.Random(f"transport:{seed}:launch")
        self.transfer_calls = 0
        self.launch_calls = 0
        self.transfer_faults = 0
        self.launch_faults = 0

    def on_transfer(self, nbytes: int, direction) -> None:
        """Called before each simulated transfer; raises to fail it."""
        ordinal = self.transfer_calls
        self.transfer_calls += 1
        draw = self._transfer_rng.random()
        if ordinal in self.fail_transfers or draw < self.transfer_failure_rate:
            self.transfer_faults += 1
            raise TransportFaultError(
                f"injected transfer fault (call {ordinal}, {nbytes} B, "
                f"{getattr(direction, 'value', direction)})"
            )

    def on_launch(self, kernel_name: str) -> None:
        """Called before each simulated kernel launch; raises to fail it."""
        ordinal = self.launch_calls
        self.launch_calls += 1
        draw = self._launch_rng.random()
        if ordinal in self.fail_launches or draw < self.launch_failure_rate:
            self.launch_faults += 1
            raise TransportFaultError(
                f"injected launch fault (call {ordinal}, kernel "
                f"{kernel_name!r})",
                code="CL_DEVICE_NOT_AVAILABLE",
            )
