"""Retry, backoff, circuit-breaking and failure records for the engine.

The policy half of fault tolerance (the mechanics — what a fault *is*
— live in :mod:`repro.engine.faults`):

* :class:`RetryPolicy` — per-chunk retry budget, exponential backoff
  with **deterministic** jitter (seeded per ``(key, attempt)``, so two
  replays of the same failing run sleep the same schedule), and the
  optional wall-clock chunk deadline.
* :class:`CircuitBreaker` — pool-level degradation: the first pool
  failure (crashed worker, hung chunk) buys one pool rebuild, the
  second opens the breaker and the engine falls back to the serial
  in-process path so the batch always completes.
* :class:`FailureRecord` — the structured per-option result of
  quarantine: a poison option is returned as NaN plus one of these in
  :attr:`~repro.engine.engine.EngineResult.failures`, instead of
  failing the other N-1 options in the batch.
* :func:`retry_call` — a generic retrying wrapper used by host
  programs around recoverable transport errors (the paper's
  host/device interaction layer is exactly where the deployment
  literature expects transient failures).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

__all__ = [
    "FailureRecord",
    "RetryPolicy",
    "CircuitBreaker",
    "ReliabilityCounters",
    "retry_call",
]


@dataclass(frozen=True)
class FailureRecord:
    """Why one option of a batch could not be priced.

    :param index: position in the caller's option stream (the matching
        entry of ``EngineResult.prices`` is NaN).
    :param error: exception class name (taxonomy of
        :mod:`repro.errors`, e.g. ``"PoisonChunkError"``).
    :param message: human-readable detail from the final failure.
    :param attempts: pricing attempts spent on the isolated option
        before it was quarantined.
    :param exception: the original exception object (when available),
        so strict callers (``PricingEngine.price``) can re-raise it
        with its real type; excluded from equality and ``as_dict``.
    """

    index: int
    error: str
    message: str
    attempts: int
    exception: Optional[BaseException] = field(default=None, compare=False,
                                               repr=False)

    def as_dict(self) -> dict:
        """JSON-ready form (mirrors ``EngineStats.as_dict``)."""
        return {
            "index": self.index,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        """Rebuild a record from :meth:`as_dict` output.

        The wire form carries no live exception object, so strict
        callers on the far side of a network boundary re-raise a
        typed exception reconstructed from ``error`` (see
        :func:`repro.errors.error_from_wire`) rather than the
        original instance; ``index`` stays in the request-local space
        the serialising side scoped it to.
        """
        return cls(
            index=int(data["index"]),
            error=str(data["error"]),
            message=str(data["message"]),
            attempts=int(data["attempts"]),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for one unit of work.

    :param max_retries: additional attempts after the first failure.
    :param backoff_base_s: first-retry backoff ceiling; attempt ``k``
        waits up to ``backoff_base_s * 2**k`` (capped at
        :attr:`max_backoff_s`).  ``0`` disables sleeping entirely.
    :param chunk_timeout_s: wall-clock deadline per chunk attempt
        (pool mode only — the serial path cannot preempt itself);
        ``None`` waits forever, exactly like the pre-reliability
        engine.
    :param max_backoff_s: backoff ceiling, keeping the exponential
        schedule bounded.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    chunk_timeout_s: Optional[float] = None
    max_backoff_s: float = 2.0

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Build from an ``EngineConfig`` (duck-typed on field names)."""
        return cls(
            max_retries=config.max_retries,
            backoff_base_s=config.backoff_base_s,
            chunk_timeout_s=config.chunk_timeout_s,
        )

    def clamp_timeout(self, deadline_s: "float | None") -> "RetryPolicy":
        """This policy with ``chunk_timeout_s`` bounded by a deadline.

        Serving callers propagate a request deadline into the flush
        that carries it: a chunk may never wait longer than the time
        the caller is still willing to wait.  ``None`` (no deadline)
        returns ``self`` unchanged, as does a configured timeout that
        is already tighter.  The bound is floored at one millisecond so
        a nearly-expired deadline still produces a valid timeout
        instead of an instant spurious :class:`ChunkTimeoutError`.
        """
        if deadline_s is None:
            return self
        bound = max(float(deadline_s), 1e-3)
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= bound:
            return self
        return replace(self, chunk_timeout_s=bound)

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt``.

        Exponential ceiling with half-jitter; the jitter is drawn from
        ``random.Random(f"{key}:{attempt}")`` so a replay of the same
        failing chunk sleeps the same schedule (and different chunks
        retrying simultaneously still decorrelate).
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        ceiling = min(self.backoff_base_s * (2.0 ** attempt),
                      self.max_backoff_s)
        jitter = random.Random(f"{key}:{attempt}").random()
        return ceiling * (0.5 + 0.5 * jitter)


class CircuitBreaker:
    """Counts pool-level failures and decides rebuild vs degrade.

    States: *closed* (healthy) -> up to ``rebuild_limit`` pool rebuilds
    -> *open* (pool given up; callers fall back to serial execution).
    """

    def __init__(self, rebuild_limit: int = 1):
        self.rebuild_limit = rebuild_limit
        self.failures = 0

    def record_failure(self) -> None:
        """Register one pool failure (broken pool or hung worker)."""
        self.failures += 1

    @property
    def open(self) -> bool:
        """True once the pool has exhausted its rebuild budget."""
        return self.failures > self.rebuild_limit


@dataclass
class ReliabilityCounters:
    """Mutable accumulator for reliability statistics.

    Superseded: since the observability layer the engine counts
    directly into a run-scoped
    :class:`~repro.engine.stats.RunMetrics` registry and derives
    :class:`~repro.engine.stats.EngineStats` from it.  Kept for
    external callers that used it as a plain tally object.
    """

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: int = 0
    quarantined_options: int = 0


def retry_call(
    fn: Callable,
    policy: RetryPolicy = RetryPolicy(),
    key: str = "call",
    retry_on: "tuple[type[BaseException], ...]" = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: "Callable[[int, BaseException], None] | None" = None,
    span=None,
):
    """Call ``fn`` with the policy's retry/backoff schedule.

    Retries only exceptions matching ``retry_on``; the final failure
    propagates unchanged.  ``on_retry(attempt, exc)`` observes each
    retry (used by tests and by callers keeping counters), and a
    :class:`~repro.obs.trace.Span` passed as ``span`` receives one
    timestamped ``retry`` annotation per re-attempt.
    """
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if span is not None:
                span.annotate("retry", attempt=attempt + 1,
                              error=type(exc).__name__)
            delay = policy.backoff_s(key, attempt)
            if delay > 0.0:
                sleep(delay)
