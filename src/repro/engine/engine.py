"""`PricingEngine` — batched option pricing at host throughput.

The accuracy experiments and the EXPERIMENTS.md workloads price
thousands of options through the vectorised kernel simulators; doing
that as one monolithic single-threaded numpy call leaves most of the
host on the table.  The engine schedules the same arithmetic the way
the paper schedules work-groups across compute units:

* requests are grouped by ``(steps, family, profile)`` and sharded
  into cache-sized chunks (:mod:`repro.engine.scheduler`);
* chunks fan out over worker processes, each reusing one preallocated
  workspace for every tile it prices
  (:mod:`repro.engine.workspace`);
* results scatter back into input order, and the run is measured in
  the paper's units (:mod:`repro.engine.stats`).

The dispatch is fault tolerant (:mod:`repro.engine.reliability`,
:mod:`repro.engine.faults`): a failing chunk is retried with
exponential backoff, a hung chunk is cut off at ``chunk_timeout_s``, a
crashed worker pool is rebuilt once and then the run degrades to the
serial in-process path, and an option that keeps failing is isolated
by quarantine bisection and returned as NaN with a
:class:`~repro.engine.reliability.FailureRecord` — one poison option
never fails the other N-1.

Every run is observable (:mod:`repro.obs`): pass a
:class:`~repro.obs.trace.Tracer` to record a hierarchical span tree
(run -> group -> chunk -> attempt -> worker) with retry and quarantine
events as timestamped annotations; pool workers serialise their spans
into the :class:`~repro.engine.scheduler.ChunkReport` travelling back
with the prices and the parent re-attaches them.  Counters and
latencies always accumulate in a run-scoped metrics registry that is
merged into the process-wide one
(:func:`repro.obs.metrics.get_registry`); the returned
:class:`~repro.engine.stats.EngineStats` is a snapshot derived from
that registry.  With no tracer the span calls hit the no-op
:data:`~repro.obs.trace.NULL_SPAN` — the quick-bench regression gate
holds with instrumentation compiled in.

Prices are bit-identical to calling
:func:`~repro.core.batch_sim.simulate_kernel_b_batch` /
``simulate_kernel_a_batch`` directly — chunking, fan-out, reliability
and observability only restructure (or watch) the schedule, never the
arithmetic (asserted by the parity tests in ``tests/engine``).

Example::

    from repro.engine import EngineConfig, PricingEngine

    with PricingEngine(kernel="iv_b",
                       config=EngineConfig(workers=4)) as engine:
        result = engine.run(batch.options, steps=1024)
    print(result.stats.options_per_second)
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..backends import BACKENDS, resolve_backend
from ..core.faithful_math import EXACT_DOUBLE, MathProfile
from ..core.metrics import nodes_per_option
from ..errors import (
    ChunkTimeoutError,
    EngineError,
    FinanceError,
    PoisonChunkError,
    ReproError,
    WorkerCrashError,
)
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from ..obs.trace import NULL_SPAN, SpanContext, Tracer, as_tracer
from .faults import FaultPlan
from .reliability import (
    CircuitBreaker,
    FailureRecord,
    RetryPolicy,
)
from .scheduler import (
    KERNELS,
    Chunk,
    chunk_width,
    group_stream,
    plan_chunks,
    price_chunk,
    price_chunk_observed,
    split_chunk,
)
from .stats import EngineStats, RunMetrics
from .workspace import Workspace, kernel_tile_bytes

__all__ = ["EngineConfig", "EngineResult", "GreeksEngineResult",
           "PricingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Scheduling and reliability knobs of a :class:`PricingEngine`.

    :param workers: worker processes; ``1`` runs serially in-process
        (no pool, no pickling) and is the right default for small
        batches or when the caller parallelises at a higher level.
    :param chunk_options: pin the tile size to exactly this many
        options (``None`` auto-sizes from the byte budget).
    :param tile_budget_bytes: target workspace footprint per chunk;
        the default keeps one worker's S/V tiles around L2 size so the
        ~1000-iteration backward loop streams from cache, not DRAM
        (measured fastest between 1 and 3 MiB on the reference host).
    :param min_chunk_options: floor for the auto-sized tile (amortises
        per-chunk dispatch overhead at very large ``steps``).
    :param max_retries: additional attempts a failing chunk gets
        before quarantine bisection kicks in.
    :param chunk_timeout_s: wall-clock deadline per chunk attempt when
        fanning out over the pool (``None`` = wait forever); a hung
        chunk counts as a pool failure and forces a pool rebuild.
    :param backoff_base_s: first-retry backoff ceiling; retry ``k``
        sleeps up to ``backoff_base_s * 2**k`` with deterministic
        jitter (``0`` disables backoff sleeping).
    :param backend: which :class:`~repro.backends.KernelBackend` runs
        the backward-induction hot path — ``"auto"`` (fastest
        available compiled backend, NumPy fallback), ``"numpy"``,
        ``"cnative"`` or ``"numba"``.  All backends are bit-identical;
        the ``REPRO_BACKEND`` environment variable overrides this at
        resolution time.
    :param fused_greeks: schedule :meth:`PricingEngine.run_greeks` as
        one fused task per chunk (lattice params and leaves built
        once, base + four bump variants sharing a 5x-wide tile)
        instead of five sibling chunk-group passes.  Same numbers
        either way; the five-pass path remains for per-pass failure
        isolation and as the bench baseline.
    """

    workers: int = 1
    chunk_options: "int | None" = None
    tile_budget_bytes: int = 2 << 20
    min_chunk_options: int = 16
    max_retries: int = 2
    chunk_timeout_s: "float | None" = None
    backoff_base_s: float = 0.05
    backend: str = "auto"
    fused_greeks: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in BACKENDS:
            raise EngineError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.chunk_options is not None and self.chunk_options < 1:
            raise EngineError(
                f"chunk_options must be >= 1, got {self.chunk_options}")
        if self.tile_budget_bytes < 1:
            raise EngineError("tile_budget_bytes must be positive")
        if self.max_retries < 0:
            raise EngineError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise EngineError(
                f"chunk_timeout_s must be positive, got {self.chunk_timeout_s}")
        if self.backoff_base_s < 0:
            raise EngineError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")


@dataclass(frozen=True)
class EngineResult:
    """Prices (in input order), failures, and the run's statistics.

    ``failures`` is non-empty only when quarantine isolated options
    that could not be priced; their ``prices`` entries are NaN and
    every other entry is bit-identical to the fault-free run.
    """

    prices: np.ndarray
    stats: EngineStats
    failures: "tuple[FailureRecord, ...]" = field(default=())


@dataclass(frozen=True)
class GreeksEngineResult:
    """Batch sensitivities (input order), failures, and run statistics.

    ``prices``/``delta``/``gamma``/``theta`` come out of the *same*
    engine pricing pass (tree-level capture, no re-pricing);
    ``vega``/``rho`` are central differences over the four bump passes
    scheduled as sibling chunk groups of the same run.  An option that
    failed in any pass carries NaN in the affected columns and a
    :class:`~repro.engine.reliability.FailureRecord` whose message
    names the pass; every other entry matches the fault-free run.
    """

    prices: np.ndarray
    delta: np.ndarray
    gamma: np.ndarray
    theta: np.ndarray
    vega: np.ndarray
    rho: np.ndarray
    stats: EngineStats
    failures: "tuple[FailureRecord, ...]" = field(default=())


#: Scheduling order of a greeks run's passes: the base pass computes
#: [price, delta, gamma, theta] rows by level capture; the four bump
#: passes re-price bumped contracts for the vega/rho differences.
_GREEKS_PASSES = ("base", "vega+", "vega-", "rho+", "rho-")


class PricingEngine:
    """Batched pricing with one kernel's exact arithmetic.

    :param kernel: ``"iv_b"``, ``"iv_a"`` or ``"reference"``.
    :param profile: device math profile carried into every chunk.
    :param family: lattice parameterisation (kernel IV.B requires CRR,
        exactly like the simulator it wraps).
    :param config: scheduling and reliability configuration.
    :param faults: deterministic fault-injection plan (tests and chaos
        drills only; ``None`` in production use).
    :param tracer: span tracer observing the run hierarchy
        (``None`` = tracing disabled, zero overhead).
    """

    def __init__(
        self,
        kernel: str = "iv_b",
        profile: MathProfile = EXACT_DOUBLE,
        family: LatticeFamily = LatticeFamily.CRR,
        config: "EngineConfig | None" = None,
        faults: "FaultPlan | None" = None,
        tracer: "Tracer | None" = None,
    ):
        if kernel not in KERNELS:
            raise EngineError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if kernel == "iv_b" and family is not LatticeFamily.CRR:
            raise EngineError(
                "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
                "exploits the CRR recombination u*d = 1 (paper Figure 1); "
                "use kernel IV.A (host-computed leaves) for other families"
            )
        self.kernel = kernel
        self.profile = profile
        self.family = family
        self.config = config or EngineConfig()
        self.faults = faults
        self.tracer = as_tracer(tracer)
        # Resolve eagerly: an explicit name that cannot be realised
        # should fail at construction, not mid-batch, and the compile
        # cost lands once here instead of inside the first timed run.
        self._backend = resolve_backend(self.config.backend)
        self._policy = RetryPolicy.from_config(self.config)
        # Per-run view of the policy: a run carrying a caller deadline
        # tightens chunk_timeout_s for its own dispatches only.  Runs
        # on one engine are serialised by the serving layer, so an
        # instance attribute (not a lock) is the right scope.
        self._active_policy = self._policy
        self._workspace = Workspace()  # serial path, reused across runs
        self._pool: "ProcessPoolExecutor | None" = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the engine, even with a run in flight.

        Queued chunks are cancelled and worker processes that do not
        exit promptly are terminated, so closing never blocks behind a
        hung chunk and never leaks workers; an in-flight :meth:`run`
        in another thread aborts with :class:`EngineError`.  Closing
        an already-closed engine is a no-op, but *pricing* on a closed
        engine raises :class:`EngineError` — the engine does not
        silently resurrect (callers that loop over batches should keep
        one engine open, or let :func:`repro.api.price` reuse its
        shared engine).
        """
        already_closed = self._closed and self._pool is None
        self._closed = True
        if already_closed:
            return
        self._abandon_pool()
        self._workspace.release()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed engine stays closed."""
        return self._closed

    def __enter__(self) -> "PricingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool

    def _abandon_pool(self) -> None:
        """Tear the pool down without waiting on in-flight work."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=0.1)
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("pricing engine closed while a batch was in flight")

    def _check_usable(self) -> None:
        """Reject pricing on a closed engine, whatever the route.

        Reuse-after-close used to *work* on the serial path (the run
        reset the closed flag) while the pool path raced the abandoned
        pool — the behaviour differed by route.  Now both routes raise
        the same :class:`EngineError` up front.
        """
        if self._closed:
            raise EngineError(
                "this PricingEngine is closed; pricing after close() is "
                "not supported — construct a new engine, or use "
                "repro.api.price()/greeks(), which manage a shared engine"
            )

    # -- pricing -----------------------------------------------------------

    def price(self, options: Sequence[Option],
              steps: "int | Sequence[int]" = 1024) -> np.ndarray:
        """Price a stream; returns root values in input order.

        Strict variant of :meth:`run`: any quarantined option re-raises
        the failure (with its original exception type) instead of
        returning NaN, so callers that predate the reliability layer —
        the historical batch entry points (removed in repro 2.0), the
        implied-vol bracketing that probes for ``FinanceError`` —
        keep their exception contract.  Use :meth:`run` for the
        fault-tolerant NaN-plus-:class:`FailureRecord` semantics.

        Migration: new code should prefer the façade
        :func:`repro.api.price`, which wraps this method with the
        keyword-only signature shared by every pricing front end.
        """
        result = self.run(options, steps)
        if result.failures:
            first = result.failures[0]
            if first.exception is not None:
                raise first.exception
            raise EngineError(
                f"option {first.index} failed after {first.attempts} "
                f"attempts: {first.error}: {first.message}")
        return result.prices

    def run(self, options: Sequence[Option],
            steps: "int | Sequence[int]" = 1024, *,
            deadline_s: "float | None" = None) -> EngineResult:
        """Price a stream and measure the run.

        ``steps`` may be a single depth or one per option —
        heterogeneous streams are regrouped so every chunk still takes
        the wide vectorised path, and prices come back in input order
        regardless of grouping.

        The run always completes: failures are retried, quarantined
        and reported via :attr:`EngineResult.failures` rather than
        raised, except for request-level validation errors, pricing on
        a closed engine (and :meth:`close` racing the run from another
        thread).

        ``deadline_s`` bounds this run's per-chunk wall-clock timeout
        (``min`` with the configured ``chunk_timeout_s``), so a serving
        caller's request deadline caps how long any one dispatch may
        hang.  Pool mode only — the serial path cannot preempt itself,
        exactly like ``chunk_timeout_s``.
        """
        self._check_usable()
        self._active_policy = self._policy.clamp_timeout(deadline_s)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()

        options = list(options)
        groups = group_stream(options, steps)
        min_steps = 2 if self.kernel in ("iv_a", "iv_b") else 1
        for group_steps in groups:
            if group_steps < min_steps:
                raise EngineError(
                    f"kernel {self.kernel.upper().replace('_', '.')} needs "
                    f"at least {min_steps} steps"
                    if min_steps == 2 else
                    f"steps must be >= 1, got {group_steps}"
                )

        chunks: list[Chunk] = []
        for group_steps, (indices, members) in sorted(groups.items()):
            chunks.extend(plan_chunks(
                indices, members, group_steps, self.profile.dtype,
                self.config.chunk_options, self.config.tile_budget_bytes,
                self.config.min_chunk_options, self.config.workers,
            ))

        tree_nodes = sum(
            len(indices) * (nodes_per_option(s) + s + 1)
            for s, (indices, _) in groups.items()
        )

        metrics = RunMetrics()
        metrics.options.inc(len(options))
        metrics.tree_nodes.inc(tree_nodes)
        metrics.groups.inc(len(groups))
        metrics.chunks.inc(len(chunks))

        run_span = self.tracer.start_span(
            "engine.run", "run",
            kernel=self.kernel, profile=self.profile.name,
            family=self.family.value, workers=self.config.workers,
            backend=self._backend.name,
            options=len(options), chunks=len(chunks), groups=len(groups),
        )
        group_spans: "dict[tuple[str, int], object]" = {}
        if self.tracer.enabled:
            for group_steps, (indices, _) in sorted(groups.items()):
                group_spans[("", group_steps)] = run_span.child(
                    f"group[steps={group_steps}]", "group",
                    steps=group_steps, options=len(indices),
                )

        prices = np.empty(len(options), dtype=np.float64)
        failures: "list[FailureRecord]" = []
        try:
            if self.config.workers == 1 or len(chunks) == 1:
                peak_tile_bytes = self._run_serial(
                    chunks, prices, metrics, failures, group_spans)
            else:
                peak_tile_bytes = self._run_pool(
                    chunks, prices, metrics, failures, group_spans)
        except BaseException:
            run_span.set(status="aborted")
            raise
        finally:
            for span in group_spans.values():
                span.end()
            run_span.end()

        wall_time_s = time.perf_counter() - wall_start
        stats = EngineStats.from_run(
            metrics,
            workers=self.config.workers,
            wall_time_s=wall_time_s,
            cpu_time_s=time.process_time() - cpu_start,
            peak_tile_bytes=peak_tile_bytes,
            backend=self._backend.name,
            backend_compile_seconds=self._backend.compile_seconds,
        )
        metrics.finalise(wall_time_s, stats.options_per_second,
                         stats.tree_nodes_per_second, peak_tile_bytes)
        metrics.publish()
        run_span.set(
            wall_time_s=wall_time_s,
            options_per_second=round(stats.options_per_second, 3),
            quarantined_options=stats.quarantined_options,
        )
        return EngineResult(
            prices=prices,
            stats=stats,
            failures=tuple(sorted(failures, key=lambda f: f.index)),
        )

    def run_greeks(self, options: Sequence[Option],
                   steps: "int | Sequence[int]" = 512,
                   bump_vol: float = 1e-3,
                   bump_rate: float = 1e-4, *,
                   deadline_s: "float | None" = None) -> GreeksEngineResult:
        """Price a stream and its full greeks set through one schedule.

        The *base pass* prices every option with tree-level capture, so
        delta/gamma/theta come out of the same backward induction as
        the price (see
        :func:`repro.engine.scheduler.greeks_chunk` — no re-pricing).
        Four *bump passes* (volatility ±``bump_vol``, rate
        ±``bump_rate``) are scheduled as sibling chunk groups of the
        same run, so they inherit chunking, worker fan-out,
        retry/quarantine and span/metrics instrumentation unchanged;
        vega and rho are the central differences of their prices.

        ``steps`` may be a single depth or one per option, exactly as
        in :meth:`run`, but must be >= 3 everywhere (levels 0..2 have
        to sit below the leaves).  Failures never raise: the affected
        columns carry NaN and
        :attr:`GreeksEngineResult.failures` names the pass.

        With ``EngineConfig.fused_greeks`` (the default) the five
        passes collapse into one fused task per chunk — lattice
        parameters and leaves are built once per option and the bump
        variants share the blocked workspace (see
        :func:`repro.engine.scheduler.greeks_fused_chunk`).  The
        numbers are identical either way; ``fused_greeks=False``
        restores the five-pass schedule with its per-pass failure
        attribution.

        ``deadline_s`` bounds the per-chunk timeout as in :meth:`run`.
        """
        self._check_usable()
        self._active_policy = self._policy.clamp_timeout(deadline_s)
        if bump_vol <= 0.0:
            raise EngineError(f"bump_vol must be > 0, got {bump_vol}")
        if bump_rate <= 0.0:
            raise EngineError(f"bump_rate must be > 0, got {bump_rate}")
        wall_start = time.perf_counter()
        cpu_start = time.process_time()

        options = list(options)
        n = len(options)
        groups = group_stream(options, steps)
        for group_steps in groups:
            if group_steps < 3:
                raise EngineError(
                    "greeks need at least 3 steps (tree levels 0..2 must "
                    f"sit below the leaves), got {group_steps}"
                )
        if self.config.fused_greeks:
            return self._run_greeks_fused(options, n, groups, bump_vol,
                                          bump_rate, wall_start, cpu_start)
        return self._run_greeks_passes(options, n, groups, bump_vol,
                                       bump_rate, wall_start, cpu_start)

    def _run_greeks_passes(self, options: "list[Option]", n: int,
                           groups: dict, bump_vol: float, bump_rate: float,
                           wall_start: float, cpu_start: float,
                           ) -> GreeksEngineResult:
        """The five-pass greeks schedule (base + four bump groups)."""
        # Pass p's virtual indices are p*n + i, so one flat (5n, 4)
        # output array and the unchanged scatter/quarantine machinery
        # serve all five passes; pass 0 rows are [price, delta, gamma,
        # theta].  Bump passes run the same greeks task — their price
        # column then comes from the identical capture path the scalar
        # oracle (lattice_greeks) re-prices with, so the vega/rho
        # differences never mix parameter-builder ulps (which the
        # 1/(2*bump) amplification would magnify).
        floor = 1e-8  # keep the down-bumped volatility positive
        pass_options: "tuple[tuple[str, list[Option]], ...]" = (
            ("base", options),
            ("vega+",
             [o.with_volatility(o.volatility + bump_vol) for o in options]),
            ("vega-",
             [o.with_volatility(max(o.volatility - bump_vol, floor))
              for o in options]),
            ("rho+",
             [replace(o, rate=o.rate + bump_rate) for o in options]),
            ("rho-",
             [replace(o, rate=o.rate - bump_rate) for o in options]),
        )

        chunks: list[Chunk] = []
        for pass_id, (label, members) in enumerate(pass_options):
            for group_steps, (indices, _) in sorted(groups.items()):
                chunks.extend(plan_chunks(
                    [pass_id * n + i for i in indices],
                    [members[i] for i in indices],
                    group_steps, self.profile.dtype,
                    self.config.chunk_options, self.config.tile_budget_bytes,
                    self.config.min_chunk_options, self.config.workers,
                    task="greeks", group=label,
                ))

        tree_nodes = len(pass_options) * sum(
            len(indices) * (nodes_per_option(s) + s + 1)
            for s, (indices, _) in groups.items()
        )

        metrics = RunMetrics()
        metrics.options.inc(len(pass_options) * n)
        metrics.greeks_options.inc(n)
        metrics.bump_passes.inc(len(pass_options) - 1)
        metrics.tree_nodes.inc(tree_nodes)
        metrics.groups.inc(len(pass_options) * len(groups))
        metrics.chunks.inc(len(chunks))

        run_span = self.tracer.start_span(
            "engine.greeks", "run",
            kernel=self.kernel, profile=self.profile.name,
            family=self.family.value, workers=self.config.workers,
            backend=self._backend.name, fused=False,
            options=n, chunks=len(chunks),
            bump_vol=bump_vol, bump_rate=bump_rate,
        )
        group_spans: "dict[tuple[str, int], object]" = {}
        if self.tracer.enabled:
            for label, _members in pass_options:
                for group_steps, (indices, _) in sorted(groups.items()):
                    group_spans[(label, group_steps)] = run_span.child(
                        f"group[{label}:steps={group_steps}]", "group",
                        steps=group_steps, options=len(indices),
                        task="greeks",
                    )

        out = np.empty((len(pass_options) * n, 4), dtype=np.float64)
        failures: "list[FailureRecord]" = []
        try:
            if self.config.workers == 1 or len(chunks) == 1:
                peak_tile_bytes = self._run_serial(
                    chunks, out, metrics, failures, group_spans)
            else:
                peak_tile_bytes = self._run_pool(
                    chunks, out, metrics, failures, group_spans)
        except BaseException:
            run_span.set(status="aborted")
            raise
        finally:
            for span in group_spans.values():
                span.end()
            run_span.end()

        base = out[:n]
        vega = (out[n:2 * n, 0] - out[2 * n:3 * n, 0]) / (2.0 * bump_vol)
        rho = (out[3 * n:4 * n, 0] - out[4 * n:5 * n, 0]) / (2.0 * bump_rate)

        remapped = [
            replace(record, index=record.index % n,
                    message=(f"[{_GREEKS_PASSES[record.index // n]} pass] "
                             f"{record.message}"))
            for record in failures
        ]

        wall_time_s = time.perf_counter() - wall_start
        stats = EngineStats.from_run(
            metrics,
            workers=self.config.workers,
            wall_time_s=wall_time_s,
            cpu_time_s=time.process_time() - cpu_start,
            peak_tile_bytes=peak_tile_bytes,
            backend=self._backend.name,
            backend_compile_seconds=self._backend.compile_seconds,
            fused_greeks=0,
        )
        metrics.finalise(wall_time_s, stats.options_per_second,
                         stats.tree_nodes_per_second, peak_tile_bytes)
        metrics.publish()
        run_span.set(
            wall_time_s=wall_time_s,
            options_per_second=round(stats.options_per_second, 3),
            quarantined_options=stats.quarantined_options,
        )
        return GreeksEngineResult(
            prices=base[:, 0].copy(),
            delta=base[:, 1].copy(),
            gamma=base[:, 2].copy(),
            theta=base[:, 3].copy(),
            vega=vega,
            rho=rho,
            stats=stats,
            failures=tuple(sorted(remapped, key=lambda f: f.index)),
        )

    def _run_greeks_fused(self, options: "list[Option]", n: int,
                          groups: dict, bump_vol: float, bump_rate: float,
                          wall_start: float, cpu_start: float,
                          ) -> GreeksEngineResult:
        """The fused greeks schedule: one 6-column task per chunk.

        Each chunk's worker call builds the base contracts' lattice
        parameters and leaves once and prices all five variant sets
        through a single simulate sharing one 5x-wide tile
        (:func:`repro.engine.scheduler.greeks_fused_chunk`), so a run
        dispatches ``chunks`` calls instead of ``5 * chunks``.  The
        stats contract is unchanged — ``options`` still counts every
        variant pricing (5n), ``bump_passes`` is still 4 — only
        ``groups`` shrinks (one scheduling group per depth, not five)
        and ``fused_greeks`` flips to 1.  A failure that survives
        retries quarantines the *option* (its whole greeks row goes
        NaN, message prefixed ``[fused greeks]``) rather than a single
        pass — use ``fused_greeks=False`` when per-pass attribution
        matters more than throughput.
        """
        chunks: list[Chunk] = []
        for group_steps, (indices, members) in sorted(groups.items()):
            chunks.extend(plan_chunks(
                indices, members, group_steps, self.profile.dtype,
                self.config.chunk_options, self.config.tile_budget_bytes,
                self.config.min_chunk_options, self.config.workers,
                task="greeks_fused", group="fused",
                width=chunk_width("greeks_fused"),
                bump_vol=bump_vol, bump_rate=bump_rate,
            ))

        tree_nodes = len(_GREEKS_PASSES) * sum(
            len(indices) * (nodes_per_option(s) + s + 1)
            for s, (indices, _) in groups.items()
        )

        metrics = RunMetrics()
        metrics.options.inc(len(_GREEKS_PASSES) * n)
        metrics.greeks_options.inc(n)
        metrics.bump_passes.inc(len(_GREEKS_PASSES) - 1)
        metrics.tree_nodes.inc(tree_nodes)
        metrics.groups.inc(len(groups))
        metrics.chunks.inc(len(chunks))

        run_span = self.tracer.start_span(
            "engine.greeks", "run",
            kernel=self.kernel, profile=self.profile.name,
            family=self.family.value, workers=self.config.workers,
            backend=self._backend.name, fused=True,
            options=n, chunks=len(chunks),
            bump_vol=bump_vol, bump_rate=bump_rate,
        )
        group_spans: "dict[tuple[str, int], object]" = {}
        if self.tracer.enabled:
            for group_steps, (indices, _) in sorted(groups.items()):
                group_spans[("fused", group_steps)] = run_span.child(
                    f"group[fused:steps={group_steps}]", "group",
                    steps=group_steps, options=len(indices),
                    task="greeks_fused",
                )

        out = np.empty((n, 6), dtype=np.float64)
        failures: "list[FailureRecord]" = []
        try:
            if self.config.workers == 1 or len(chunks) == 1:
                peak_tile_bytes = self._run_serial(
                    chunks, out, metrics, failures, group_spans)
            else:
                peak_tile_bytes = self._run_pool(
                    chunks, out, metrics, failures, group_spans)
        except BaseException:
            run_span.set(status="aborted")
            raise
        finally:
            for span in group_spans.values():
                span.end()
            run_span.end()

        remapped = [
            replace(record, message=f"[fused greeks] {record.message}")
            for record in failures
        ]

        wall_time_s = time.perf_counter() - wall_start
        stats = EngineStats.from_run(
            metrics,
            workers=self.config.workers,
            wall_time_s=wall_time_s,
            cpu_time_s=time.process_time() - cpu_start,
            peak_tile_bytes=peak_tile_bytes,
            backend=self._backend.name,
            backend_compile_seconds=self._backend.compile_seconds,
            fused_greeks=1,
        )
        metrics.finalise(wall_time_s, stats.options_per_second,
                         stats.tree_nodes_per_second, peak_tile_bytes)
        metrics.publish()
        run_span.set(
            wall_time_s=wall_time_s,
            options_per_second=round(stats.options_per_second, 3),
            quarantined_options=stats.quarantined_options,
        )
        return GreeksEngineResult(
            prices=out[:, 0].copy(),
            delta=out[:, 1].copy(),
            gamma=out[:, 2].copy(),
            theta=out[:, 3].copy(),
            vega=out[:, 4].copy(),
            rho=out[:, 5].copy(),
            stats=stats,
            failures=tuple(sorted(remapped, key=lambda f: f.index)),
        )

    # -- dispatch backends -------------------------------------------------

    def _serial_attempt(self, chunk: Chunk, attempt: int) -> np.ndarray:
        """One in-process pricing attempt (resolved profile, own tiles)."""
        return price_chunk(
            self.kernel, chunk.options, chunk.steps, self.profile,
            self.family.value, indices=chunk.indices, faults=self.faults,
            attempt=attempt, in_pool=False, workspace=self._workspace,
            task=chunk.task, backend=self._backend,
            bump_vol=chunk.bump_vol, bump_rate=chunk.bump_rate,
        )

    @staticmethod
    def _scatter(out: np.ndarray, indices, values: np.ndarray) -> None:
        """Write one chunk's results into the run's output array.

        ``out`` is 1-D for pricing runs and ``(n, 4)`` row-per-option
        for greeks runs; a 1-D price vector scattered into row output
        (a bump pass) broadcasts across the row, which is harmless —
        bump rows are only ever read back through column 0.
        """
        if out.ndim == 2 and values.ndim == 1:
            out[list(indices)] = values[:, None]
        else:
            out[list(indices)] = values

    def _run_serial(self, chunks: Sequence[Chunk], out: np.ndarray,
                    metrics: RunMetrics,
                    failures: "list[FailureRecord]",
                    group_spans: dict) -> int:
        for chunk in chunks:
            self._price_reliably(chunk, out, metrics, failures,
                                 self._serial_attempt, group_spans)
        return self._workspace.peak_bytes

    def _open_chunk_span(self, chunk: Chunk, group_spans: dict,
                         parent=None):
        """Start a chunk span under its group (or the given parent)."""
        if not self.tracer.enabled:
            return NULL_SPAN
        if parent is None:
            parent = group_spans.get((chunk.group, chunk.steps), NULL_SPAN)
        return parent.child(
            f"chunk[{chunk.indices[0]}+{len(chunk)}]", "chunk",
            first_index=chunk.indices[0], options=len(chunk),
            steps=chunk.steps,
        )

    def _price_reliably(self, chunk: Chunk, out: np.ndarray,
                        metrics: RunMetrics,
                        failures: "list[FailureRecord]",
                        attempt_fn: "Callable[[Chunk, int], np.ndarray]",
                        group_spans: dict,
                        span=None,
                        ) -> None:
        """Retry -> quarantine driver for one chunk (serial execution)."""
        key = f"chunk:{chunk.indices[0]}+{len(chunk)}"
        if span is None:
            span = self._open_chunk_span(chunk, group_spans)
        last_error: "Exception | None" = None
        attempts_spent = 0
        for attempt in range(self.config.max_retries + 1):
            self._check_open()
            if attempt > 0:
                metrics.retries.inc()
                span.annotate("retry", attempt=attempt,
                              error=type(last_error).__name__)
                delay = self._policy.backoff_s(key, attempt - 1)
                if delay > 0.0:
                    time.sleep(delay)
            attempts_spent = attempt + 1
            attempt_span = span.child(f"attempt-{attempt}", "attempt",
                                      attempt=attempt, mode="serial")
            attempt_start = time.perf_counter()
            try:
                chunk_prices = attempt_fn(chunk, attempt)
            except FinanceError as exc:
                # deterministic bad input: retrying cannot help, go
                # straight to quarantine to isolate the culprit
                attempt_span.set(error=type(exc).__name__,
                                 status="error").end()
                last_error = exc
                break
            except ReproError as exc:
                attempt_span.set(error=type(exc).__name__,
                                 status="error").end()
                last_error = exc
                continue
            except Exception as exc:  # bare worker exception -> taxonomy
                attempt_span.set(error=type(exc).__name__,
                                 status="error").end()
                last_error = EngineError(
                    f"chunk worker raised {type(exc).__name__}: {exc}")
                continue
            attempt_span.end()
            metrics.chunk_latency.observe(time.perf_counter() - attempt_start)
            bad = ~np.isfinite(chunk_prices)
            if bad.any():
                last_error = PoisonChunkError(
                    f"chunk produced {int(bad.sum())} non-finite price(s)")
                continue
            self._scatter(out, chunk.indices, chunk_prices)
            span.end()
            return
        self._quarantine(chunk, out, metrics, failures, attempt_fn,
                         last_error, attempts_spent, group_spans, span)

    def _quarantine(self, chunk: Chunk, out: np.ndarray,
                    metrics: RunMetrics,
                    failures: "list[FailureRecord]",
                    attempt_fn, error: "Exception | None",
                    attempts_spent: int, group_spans: dict, span) -> None:
        """Bisect a poison chunk until single failing options isolate."""
        if len(chunk) == 1:
            self._record_failure(chunk, out, metrics, failures, error,
                                 attempts_spent, span)
            span.end()
            return
        span.annotate("quarantine-split",
                      error=type(error).__name__ if error else "unknown")
        for piece in split_chunk(chunk):
            # bisection halves trace as chunk spans *under* the failed
            # chunk, so the quarantine tree is visible in the dump
            piece_span = self._open_chunk_span(piece, group_spans,
                                               parent=span)
            self._price_reliably(piece, out, metrics, failures, attempt_fn,
                                 group_spans, span=piece_span)
        span.end()

    @staticmethod
    def _record_failure(chunk: Chunk, out: np.ndarray,
                        metrics: RunMetrics,
                        failures: "list[FailureRecord]",
                        error: "Exception | None",
                        attempts_spent: int, span) -> None:
        index = chunk.indices[0]
        out[index] = np.nan
        metrics.quarantined_options.inc()
        span.annotate(
            "quarantined", index=index,
            error=type(error).__name__ if error is not None else "EngineError",
            attempts=attempts_spent,
        )
        failures.append(FailureRecord(
            index=index,
            error=type(error).__name__ if error is not None else "EngineError",
            message=str(error) if error is not None else "unknown failure",
            attempts=attempts_spent,
            exception=error,
        ))

    def _span_context(self, chunk: Chunk, attempt: int,
                      ) -> "SpanContext | None":
        """Identity the pool worker tags its spans with (or ``None``)."""
        if not self.tracer.enabled:
            return None
        group_name = (f"group[{chunk.group}:steps={chunk.steps}]"
                      if chunk.group else f"group[steps={chunk.steps}]")
        root = "engine.greeks" if chunk.group else "engine.run"
        return SpanContext(
            trace_id=self.tracer.trace_id,
            path=(root, group_name,
                  f"chunk[{chunk.indices[0]}+{len(chunk)}]",
                  f"attempt-{attempt}"),
        )

    def _run_pool(self, chunks: Sequence[Chunk], out: np.ndarray,
                  metrics: RunMetrics,
                  failures: "list[FailureRecord]",
                  group_spans: dict) -> int:
        """Fan chunks over the pool in waves, absorbing failures.

        Happy path: one wave — submit everything, gather everything,
        exactly the pre-reliability schedule.  A failed chunk re-enters
        the queue with its attempt count bumped (or quarantine-split
        once retries are spent); a pool-level failure (crashed worker,
        hung chunk) costs the breaker — one rebuild, then degradation
        to the serial path for whatever work remains.

        Chunk spans live on the parent side, keyed by the chunk's
        indices so retries re-enter the same span as new attempt
        children; each gathered :class:`ChunkReport` feeds the latency
        histogram and (when tracing) carries the worker's serialised
        spans, which are adopted under the dispatching attempt span.
        """
        breaker = CircuitBreaker(rebuild_limit=1)
        queue: "deque[tuple[Chunk, int]]" = deque(
            (chunk, 0) for chunk in chunks)
        chunk_spans: "dict[tuple[int, ...], object]" = {}

        def span_for(chunk: Chunk):
            if not self.tracer.enabled:
                return NULL_SPAN
            span = chunk_spans.get(chunk.indices)
            if span is None:
                span = self._open_chunk_span(chunk, group_spans)
                chunk_spans[chunk.indices] = span
            return span

        while queue:
            self._check_open()
            if breaker.open:
                metrics.degraded_to_serial.inc()
                while queue:
                    chunk, _ = queue.popleft()
                    span = chunk_spans.pop(chunk.indices, None)
                    if span is not None:
                        span.annotate("degraded-to-serial")
                    self._price_reliably(chunk, out, metrics, failures,
                                         self._serial_attempt, group_spans,
                                         span=span)
                break
            pool = self._ensure_pool()
            wave = list(queue)
            queue.clear()
            futures = []
            for chunk, attempt in wave:
                chunk_span = span_for(chunk)
                attempt_span = chunk_span.child(
                    f"attempt-{attempt}", "attempt",
                    attempt=attempt, mode="pool")
                futures.append((
                    pool.submit(
                        price_chunk_observed, self.kernel, chunk.options,
                        chunk.steps, self.profile.name, self.family.value,
                        indices=chunk.indices, faults=self.faults,
                        attempt=attempt, in_pool=True,
                        span_context=self._span_context(chunk, attempt),
                        task=chunk.task, backend=self._backend.name,
                        bump_vol=chunk.bump_vol, bump_rate=chunk.bump_rate,
                    ), chunk, attempt, attempt_span))
            pool_failed = False
            next_delay = 0.0
            for future, chunk, attempt, attempt_span in futures:
                if pool_failed:
                    # the pool is already being abandoned: requeue
                    # without consuming one of this chunk's attempts
                    future.cancel()
                    attempt_span.annotate("cancelled").end()
                    queue.append((chunk, attempt))
                    continue
                try:
                    chunk_prices, report = future.result(
                        timeout=self._active_policy.chunk_timeout_s)
                except _FutureTimeout:
                    attempt_span.set(error="ChunkTimeoutError",
                                     status="error").end()
                    metrics.timeouts.inc()
                    pool_failed = True
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, attempt, ChunkTimeoutError(
                            f"chunk of {len(chunk)} options exceeded the "
                            f"{self._active_policy.chunk_timeout_s}s deadline"),
                        queue, out, metrics, failures, span_for(chunk)))
                    continue
                except BrokenProcessPool as exc:
                    attempt_span.set(error="WorkerCrashError",
                                     status="error").end()
                    pool_failed = True
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, attempt, WorkerCrashError(
                            f"worker process died while pricing a chunk of "
                            f"{len(chunk)} options: {exc}"),
                        queue, out, metrics, failures, span_for(chunk)))
                    continue
                except FinanceError as exc:
                    # deterministic bad input: skip retries, bisect now
                    attempt_span.set(error=type(exc).__name__,
                                     status="error").end()
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, self.config.max_retries, exc,
                        queue, out, metrics, failures, span_for(chunk)))
                    continue
                except ReproError as exc:
                    attempt_span.set(error=type(exc).__name__,
                                     status="error").end()
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, attempt, exc, queue, out, metrics, failures,
                        span_for(chunk)))
                    continue
                except Exception as exc:
                    attempt_span.set(error=type(exc).__name__,
                                     status="error").end()
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, attempt, EngineError(
                            f"chunk worker raised {type(exc).__name__}: "
                            f"{exc}"),
                        queue, out, metrics, failures, span_for(chunk)))
                    continue
                metrics.chunk_latency.observe(report.duration_s)
                attempt_span.adopt(report.spans)
                attempt_span.set(worker_pid=report.pid,
                                 worker_seconds=round(report.duration_s, 6))
                attempt_span.end()
                bad = ~np.isfinite(chunk_prices)
                if bad.any():
                    next_delay = max(next_delay, self._handle_chunk_failure(
                        chunk, attempt, PoisonChunkError(
                            f"chunk produced {int(bad.sum())} non-finite "
                            f"price(s)"),
                        queue, out, metrics, failures, span_for(chunk)))
                    continue
                self._scatter(out, chunk.indices, chunk_prices)
                span = chunk_spans.pop(chunk.indices, None)
                if span is not None:
                    span.end()
            if pool_failed:
                breaker.record_failure()
                self._abandon_pool()
                if not breaker.open:
                    metrics.pool_rebuilds.inc()
            if next_delay > 0.0 and queue:
                time.sleep(next_delay)

        for span in chunk_spans.values():
            span.end()

        if self.kernel == "reference":
            pool_peak = 0
        else:
            pool_peak = max(
                kernel_tile_bytes(len(chunk) * chunk_width(chunk.task),
                                  chunk.steps, self.profile.dtype)
                for chunk in chunks
            )
        return max(pool_peak, self._workspace.peak_bytes)

    def _handle_chunk_failure(self, chunk: Chunk, attempt: int,
                              error: Exception,
                              queue: "deque[tuple[Chunk, int]]",
                              out: np.ndarray,
                              metrics: RunMetrics,
                              failures: "list[FailureRecord]",
                              span) -> float:
        """Requeue a failed chunk (pool mode); returns the backoff delay.

        Retries re-enter the wave queue with ``attempt + 1``; once the
        budget is spent the chunk is quarantine-split (halves restart
        their own retry budget) or, at size one, recorded as a failed
        option.
        """
        key = f"chunk:{chunk.indices[0]}+{len(chunk)}"
        if attempt < self.config.max_retries:
            metrics.retries.inc()
            span.annotate("retry", attempt=attempt + 1,
                          error=type(error).__name__)
            queue.append((chunk, attempt + 1))
            return self._policy.backoff_s(key, attempt)
        if len(chunk) == 1:
            self._record_failure(chunk, out, metrics, failures, error,
                                 attempt + 1, span)
            span.end()
            return 0.0
        span.annotate("quarantine-split", error=type(error).__name__)
        span.end()
        queue.extend((piece, 0) for piece in split_chunk(chunk))
        return 0.0

    def describe(self) -> str:
        """One-line configuration summary."""
        timeout = (f"{self.config.chunk_timeout_s:g}s"
                   if self.config.chunk_timeout_s is not None else "none")
        return (
            f"engine / kernel {self.kernel} / math={self.profile.name} / "
            f"family={self.family.value} / backend={self._backend.name} / "
            f"workers={self.config.workers} / "
            f"chunk={'auto' if self.config.chunk_options is None else self.config.chunk_options} / "
            f"retries<={self.config.max_retries} / timeout={timeout} / "
            f"backoff={self.config.backoff_base_s:g}s"
            + (" / faults=injected" if self.faults is not None else "")
            + (" / traced" if self.tracer.enabled else "")
        )
