"""`PricingEngine` — batched option pricing at host throughput.

The accuracy experiments and the EXPERIMENTS.md workloads price
thousands of options through the vectorised kernel simulators; doing
that as one monolithic single-threaded numpy call leaves most of the
host on the table.  The engine schedules the same arithmetic the way
the paper schedules work-groups across compute units:

* requests are grouped by ``(steps, family, profile)`` and sharded
  into cache-sized chunks (:mod:`repro.engine.scheduler`);
* chunks fan out over worker processes, each reusing one preallocated
  workspace for every tile it prices
  (:mod:`repro.engine.workspace`);
* results scatter back into input order, and the run is measured in
  the paper's units (:mod:`repro.engine.stats`).

Prices are bit-identical to calling
:func:`~repro.core.batch_sim.simulate_kernel_b_batch` /
``simulate_kernel_a_batch`` directly — chunking and fan-out only
restructure the schedule, never the arithmetic (asserted by the
parity tests in ``tests/engine``).

Example::

    from repro.engine import EngineConfig, PricingEngine

    with PricingEngine(kernel="iv_b",
                       config=EngineConfig(workers=4)) as engine:
        result = engine.run(batch.options, steps=1024)
    print(result.stats.options_per_second)
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.faithful_math import EXACT_DOUBLE, MathProfile
from ..core.metrics import nodes_per_option
from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.options import Option
from .scheduler import KERNELS, Chunk, group_stream, plan_chunks, price_chunk
from .stats import EngineStats
from .workspace import Workspace, kernel_tile_bytes

__all__ = ["EngineConfig", "EngineResult", "PricingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Scheduling knobs of a :class:`PricingEngine`.

    :param workers: worker processes; ``1`` runs serially in-process
        (no pool, no pickling) and is the right default for small
        batches or when the caller parallelises at a higher level.
    :param chunk_options: pin the tile size to exactly this many
        options (``None`` auto-sizes from the byte budget).
    :param tile_budget_bytes: target workspace footprint per chunk;
        the default keeps one worker's S/V tiles around L2 size so the
        ~1000-iteration backward loop streams from cache, not DRAM
        (measured fastest between 1 and 3 MiB on the reference host).
    :param min_chunk_options: floor for the auto-sized tile (amortises
        per-chunk dispatch overhead at very large ``steps``).
    """

    workers: int = 1
    chunk_options: "int | None" = None
    tile_budget_bytes: int = 2 << 20
    min_chunk_options: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_options is not None and self.chunk_options < 1:
            raise ReproError(
                f"chunk_options must be >= 1, got {self.chunk_options}")
        if self.tile_budget_bytes < 1:
            raise ReproError("tile_budget_bytes must be positive")


@dataclass(frozen=True)
class EngineResult:
    """Prices (in input order) plus the run's measured statistics."""

    prices: np.ndarray
    stats: EngineStats


class PricingEngine:
    """Batched pricing with one kernel's exact arithmetic.

    :param kernel: ``"iv_b"``, ``"iv_a"`` or ``"reference"``.
    :param profile: device math profile carried into every chunk.
    :param family: lattice parameterisation (kernel IV.B requires CRR,
        exactly like the simulator it wraps).
    :param config: scheduling configuration.
    """

    def __init__(
        self,
        kernel: str = "iv_b",
        profile: MathProfile = EXACT_DOUBLE,
        family: LatticeFamily = LatticeFamily.CRR,
        config: "EngineConfig | None" = None,
    ):
        if kernel not in KERNELS:
            raise ReproError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if kernel == "iv_b" and family is not LatticeFamily.CRR:
            raise ReproError(
                "kernel IV.B initialises leaves as s0 * u**(N-2k), which "
                "exploits the CRR recombination u*d = 1 (paper Figure 1); "
                "use kernel IV.A (host-computed leaves) for other families"
            )
        self.kernel = kernel
        self.profile = profile
        self.family = family
        self.config = config or EngineConfig()
        self._workspace = Workspace()  # serial path, reused across runs
        self._pool: "ProcessPoolExecutor | None" = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool and drop the serial workspace."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._workspace.release()

    def __enter__(self) -> "PricingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool

    # -- pricing -----------------------------------------------------------

    def price(self, options: Sequence[Option],
              steps: "int | Sequence[int]" = 1024) -> np.ndarray:
        """Price a stream; returns root values in input order."""
        return self.run(options, steps).prices

    def run(self, options: Sequence[Option],
            steps: "int | Sequence[int]" = 1024) -> EngineResult:
        """Price a stream and measure the run.

        ``steps`` may be a single depth or one per option —
        heterogeneous streams are regrouped so every chunk still takes
        the wide vectorised path, and prices come back in input order
        regardless of grouping.
        """
        wall_start = time.perf_counter()
        cpu_start = time.process_time()

        options = list(options)
        groups = group_stream(options, steps)
        min_steps = 2 if self.kernel in ("iv_a", "iv_b") else 1
        for group_steps in groups:
            if group_steps < min_steps:
                raise ReproError(
                    f"kernel {self.kernel.upper().replace('_', '.')} needs "
                    f"at least {min_steps} steps"
                    if min_steps == 2 else
                    f"steps must be >= 1, got {group_steps}"
                )

        chunks: list[Chunk] = []
        for group_steps, (indices, members) in sorted(groups.items()):
            chunks.extend(plan_chunks(
                indices, members, group_steps, self.profile.dtype,
                self.config.chunk_options, self.config.tile_budget_bytes,
                self.config.min_chunk_options, self.config.workers,
            ))

        prices = np.empty(len(options), dtype=np.float64)
        if self.config.workers == 1 or len(chunks) == 1:
            peak_tile_bytes = self._run_serial(chunks, prices)
        else:
            peak_tile_bytes = self._run_pool(chunks, prices)

        tree_nodes = sum(
            len(indices) * (nodes_per_option(s) + s + 1)
            for s, (indices, _) in groups.items()
        )
        stats = EngineStats(
            options=len(options),
            tree_nodes=tree_nodes,
            groups=len(groups),
            chunks=len(chunks),
            workers=self.config.workers,
            wall_time_s=time.perf_counter() - wall_start,
            cpu_time_s=time.process_time() - cpu_start,
            peak_tile_bytes=peak_tile_bytes,
        )
        return EngineResult(prices=prices, stats=stats)

    # -- dispatch backends -------------------------------------------------

    def _run_serial(self, chunks: Sequence[Chunk], out: np.ndarray) -> int:
        from ..core.batch_sim import (
            simulate_kernel_a_batch,
            simulate_kernel_b_batch,
        )
        from ..finance.binomial import price_binomial

        for chunk in chunks:
            if self.kernel == "iv_b":
                chunk_prices = simulate_kernel_b_batch(
                    chunk.options, chunk.steps, self.profile, self.family,
                    workspace=self._workspace)
            elif self.kernel == "iv_a":
                chunk_prices = simulate_kernel_a_batch(
                    chunk.options, chunk.steps, self.profile, self.family,
                    workspace=self._workspace)
            else:
                chunk_prices = np.array(
                    [price_binomial(o, chunk.steps, self.family,
                                    dtype=self.profile.dtype).price
                     for o in chunk.options],
                    dtype=np.float64,
                )
            out[list(chunk.indices)] = chunk_prices
        return self._workspace.peak_bytes

    def _run_pool(self, chunks: Sequence[Chunk], out: np.ndarray) -> int:
        pool = self._ensure_pool()
        futures = {
            pool.submit(
                price_chunk, self.kernel, chunk.options, chunk.steps,
                self.profile.name, self.family.value,
            ): chunk
            for chunk in chunks
        }
        for future, chunk in futures.items():
            out[list(chunk.indices)] = future.result()
        if self.kernel == "reference":
            return 0
        return max(
            kernel_tile_bytes(len(chunk), chunk.steps, self.profile.dtype)
            for chunk in chunks
        )

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"engine / kernel {self.kernel} / math={self.profile.name} / "
            f"family={self.family.value} / workers={self.config.workers} / "
            f"chunk={'auto' if self.config.chunk_options is None else self.config.chunk_options}"
        )
