"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the numeric half of the observability layer (spans are
the structural half, :mod:`repro.obs.trace`).  It follows the
Prometheus data model — metric *families* identified by a snake_case
name, each holding samples distinguished by label sets — and renders
to the Prometheus text exposition format as well as a JSON-ready dict
with deterministic key order.

Two registries matter in practice:

* the **process-wide** registry (:func:`get_registry`): the long-lived
  accumulator the simulated device stack (PCIe link, command queues)
  and every completed engine run publish into;
* a **run-scoped** registry each :meth:`PricingEngine.run` creates:
  the engine counts chunks/retries/latencies there, derives the frozen
  :class:`~repro.engine.stats.EngineStats` snapshot from it, and then
  merges it into the process-wide registry — the registry is the
  source of truth, the dataclass its per-run snapshot.

Counting is cheap (one dict lookup + add per event, and the engine
counts per *chunk*, not per option), so metrics stay on even when
tracing is disabled.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence

from ..errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "parse_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Chunk-latency histogram buckets (seconds): sub-millisecond tiles up
#: to multi-second stragglers, then +Inf.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(key: "tuple[tuple[str, str], ...]") -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Common behaviour of one metric family."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def sorted_samples(self):
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    metric_type = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: "dict[tuple, float]" = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set (the unlabelled view)."""
        return sum(self._values.values())

    def sorted_samples(self):
        for key in sorted(self._values):
            yield self.name, key, self._values[key]

    def merge_from(self, other: "Counter") -> None:
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge(_Metric):
    """A value that can go up and down (last write wins on merge)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: "dict[tuple, float]" = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def sorted_samples(self):
        for key in sorted(self._values):
            yield self.name, key, self._values[key]

    def merge_from(self, other: "Gauge") -> None:
        self._values.update(other._values)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    metric_type = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {self.name} needs at least one bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out, running = [], 0
        for bound, count in zip(self.bounds + (math.inf,), self._counts):
            running += count
            out.append((bound, running))
        return out

    def sorted_samples(self):
        for bound, cumulative in self.cumulative_buckets():
            yield (f"{self.name}_bucket",
                   (("le", _format_value(bound)),), float(cumulative))
        yield f"{self.name}_sum", (), self._sum
        yield f"{self.name}_count", (), float(self._count)

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ReproError(
                f"histogram {self.name} bucket bounds differ; cannot merge")
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._sum += other._sum
        self._count += other._count


class MetricsRegistry:
    """A named collection of metric families with stable ordering."""

    def __init__(self) -> None:
        self._metrics: "dict[str, _Metric]" = {}

    # -- registration ------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name} already registered as "
                f"{metric.metric_type}, not {cls.metric_type}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- reading -----------------------------------------------------------

    def get(self, name: str) -> "_Metric | None":
        return self._metrics.get(name)

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge sample (0.0 if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value(**labels)

    def names(self) -> "list[str]":
        return sorted(self._metrics)

    def families(self) -> "Iterable[_Metric]":
        for name in self.names():
            yield self._metrics[name]

    # -- export ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: "list[str]" = []
        for metric in self.families():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.metric_type}")
            for sample_name, label_key, value in metric.sorted_samples():
                lines.append(
                    f"{sample_name}{_format_labels(label_key)} "
                    f"{_format_value(value)}")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict:
        """JSON-ready snapshot with deterministic ordering."""
        out: dict = {}
        for metric in self.families():
            samples = {
                (_format_labels(label_key) or "_"): value
                for _, label_key, value in metric.sorted_samples()
            }
            out[metric.name] = {
                "type": metric.metric_type,
                "help": metric.help,
                "samples": samples,
            }
        return out

    # -- composition -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges overwrite)."""
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._get_or_create(
                type(theirs), name, theirs.help,
                **({"buckets": theirs.bounds}
                   if isinstance(theirs, Histogram) else {}))
            mine.merge_from(theirs)

    def clear(self) -> None:
        self._metrics.clear()


#: The process-wide registry the device stack and engine publish into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Tests use this to observe a hermetic registry and restore the old
    one in a ``finally``.
    """
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def parse_prometheus(text: str) -> "dict[str, float]":
    """Parse Prometheus text back into ``{'name{labels}': value}``.

    Supports exactly what :meth:`MetricsRegistry.render_prometheus`
    emits (one metric per line, ``# HELP`` / ``# TYPE`` comments); used
    by the round-trip tests and the CI artifact check.
    """
    samples: "dict[str, float]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value = line.rsplit(" ", 1)
        except ValueError as exc:
            raise ReproError(f"unparseable metric line: {line!r}") from exc
        if value == "+Inf":
            parsed = math.inf
        elif value == "-Inf":
            parsed = -math.inf
        else:
            try:
                parsed = float(value)
            except ValueError as exc:
                raise ReproError(
                    f"unparseable metric value in line: {line!r}") from exc
        samples[series] = parsed
    return samples
