"""repro.obs — structured tracing, metrics and profiling export.

The observability layer of the engine and the simulated device stack:

* :mod:`repro.obs.trace` — hierarchical spans (run -> group -> chunk
  -> attempt -> simulated queue command) with monotonic timings,
  structured attributes and a zero-overhead disabled mode;
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms (chunks, retries, chunk latency, simulated
  PCIe bytes, queue commands) with Prometheus text rendering;
* :mod:`repro.obs.export` — JSON span dumps, Prometheus files and the
  rendered text timeline of the simulated queue lanes;
* :mod:`repro.obs.keys` — the one set of metric names and stats-schema
  keys shared by ``EngineStats``, the bench JSON and the exporters.

Quick start::

    from repro import generate_batch
    from repro.engine import PricingEngine
    from repro.obs import Tracer, get_registry, render_span_tree

    tracer = Tracer()
    with PricingEngine(kernel="iv_b", tracer=tracer) as engine:
        engine.run(generate_batch(n_options=256).options, steps=512)
    print(render_span_tree(tracer.as_dicts()[0]))
    print(get_registry().render_prometheus())
"""

from . import keys
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    set_registry,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    as_tracer,
    max_depth,
)

#: Names served lazily from :mod:`repro.obs.export` — the exporter
#: pulls in the OpenCL profiling types, and the simulated queue itself
#: imports :mod:`repro.obs.trace`, so loading it eagerly here would
#: cycle.  PEP 562 module ``__getattr__`` defers it until first use.
_EXPORT_NAMES = (
    "TRACE_SCHEMA",
    "trace_document",
    "write_trace",
    "write_metrics",
    "render_span_tree",
    "render_queue_timeline",
    "queue_spans_to_events",
    "chunk_span_seconds",
)


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from . import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "keys",
    # trace
    "Span",
    "SpanContext",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "as_tracer",
    "max_depth",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "parse_prometheus",
    # export
    "TRACE_SCHEMA",
    "trace_document",
    "write_trace",
    "write_metrics",
    "render_span_tree",
    "render_queue_timeline",
    "queue_spans_to_events",
    "chunk_span_seconds",
]
