"""Exporters: JSON span dumps, Prometheus text, rendered timelines.

Three views of the same observed run:

* :func:`trace_document` / :func:`write_trace` — the span forest as a
  JSON document (``repro-trace/v1``), the machine-readable artifact
  CI uploads next to the benchmark JSON;
* :func:`write_metrics` — the metrics registry in Prometheus text
  exposition format (parses with
  :func:`repro.obs.metrics.parse_prometheus`);
* :func:`render_span_tree` and :func:`render_queue_timeline` — human
  views: an indented tree with durations, and the per-engine lane
  Gantt of simulated queue commands reusing
  :func:`repro.core.trace.render_timeline` — the temporal counterpart
  of the paper's Figure 3/4 dataflow diagrams.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ReproError
from ..opencl.profiling import Event
from ..opencl.types import CommandType
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "TRACE_SCHEMA",
    "trace_document",
    "write_trace",
    "write_metrics",
    "render_span_tree",
    "queue_spans_to_events",
    "render_queue_timeline",
    "chunk_span_seconds",
]

#: Version tag of the JSON trace document.
TRACE_SCHEMA = "repro-trace/v1"

#: Span kind the simulated command queue emits (see
#: :meth:`repro.opencl.queue.CommandQueue.attach_span`).
QUEUE_COMMAND_KIND = "queue-command"


def trace_document(tracer: Tracer) -> dict:
    """Serialise a tracer's span forest into the JSON trace document."""
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": tracer.trace_id,
        "spans": tracer.as_dicts(),
    }


def write_trace(tracer: Tracer, path: "str | Path") -> Path:
    """Write the JSON trace document to ``path`` (pretty-printed)."""
    path = Path(path)
    path.write_text(json.dumps(trace_document(tracer), indent=2) + "\n")
    return path


def write_metrics(registry: MetricsRegistry, path: "str | Path") -> Path:
    """Write the registry in Prometheus text format to ``path``."""
    path = Path(path)
    path.write_text(registry.render_prometheus())
    return path


# -- human-readable views --------------------------------------------------


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    inner = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        inner += ", ..."
    return f" [{inner}]"


def render_span_tree(span: dict, indent: str = "", max_children: int = 8,
                     ) -> str:
    """Render one serialised span tree as an indented text outline.

    Sibling runs of more than ``max_children`` children are elided in
    the middle (first/last kept), so a 1024-chunk run stays readable.
    """
    lines = [
        f"{indent}{span['kind']}:{span['name']} "
        f"{span['duration_ns'] / 1e6:.3f} ms"
        + ("" if span.get("status", "ok") == "ok"
           else f" !{span['status']}")
        + _format_attrs(span.get("attrs", {}))
    ]
    for t_ns, entry in ((a["t_ns"], a) for a in span.get("annotations", ())):
        offset_ms = (t_ns - span["start_ns"]) / 1e6
        lines.append(f"{indent}  @{offset_ms:.3f} ms {entry['message']}"
                     + _format_attrs(entry.get("attrs", {})))
    children = span.get("children", ())
    if len(children) > max_children:
        head = children[:max_children - 2]
        tail = children[-1:]
        elided = len(children) - len(head) - len(tail)
        shown: "list[dict | None]" = [*head, None, *tail]
    else:
        elided, shown = 0, list(children)
    for child in shown:
        if child is None:
            lines.append(f"{indent}  ... {elided} sibling spans elided")
        else:
            lines.append(render_span_tree(child, indent + "  ", max_children))
    return "\n".join(lines)


def _iter_queue_spans(span: dict) -> "Iterable[dict]":
    if span.get("kind") == QUEUE_COMMAND_KIND:
        yield span
    for child in span.get("children", ()):
        yield from _iter_queue_spans(child)


def queue_spans_to_events(spans: "Sequence[dict]") -> "list[Event]":
    """Rebuild profiling :class:`Event` records from queue-command spans.

    Queue-command spans carry the *simulated* clock of the command in
    their attributes (``sim_start_ns`` / ``sim_end_ns``); the events
    reconstructed here live on that clock, exactly like the originals
    in ``CommandQueue.events``, so they feed straight into
    :func:`repro.core.trace.render_timeline`.
    """
    events: "list[Event]" = []
    for root in spans:
        for span in _iter_queue_spans(root):
            attrs = span.get("attrs", {})
            try:
                command_type = CommandType(attrs["command"])
                start = float(attrs["sim_start_ns"])
                end = float(attrs["sim_end_ns"])
                queued = float(attrs.get("sim_queued_ns", start))
            except (KeyError, ValueError) as exc:
                raise ReproError(
                    f"queue-command span {span.get('name')!r} is missing "
                    f"simulated-clock attributes: {exc}") from exc
            events.append(Event(
                command_type=command_type,
                name=span["name"],
                queued_ns=queued,
                submit_ns=queued,
                start_ns=start,
                end_ns=end,
                info={k: v for k, v in attrs.items()
                      if k not in ("command", "sim_start_ns", "sim_end_ns",
                                   "sim_queued_ns")},
            ))
    events.sort(key=lambda e: (e.start_ns, e.end_ns))
    return events


def render_queue_timeline(spans: "Sequence[dict]", width: int = 72,
                          max_events: "int | None" = None) -> str:
    """Render the simulated queue lanes of a span forest as a Gantt.

    Reuses the seed-era :func:`repro.core.trace.render_timeline` (DMA
    lane vs kernel lane over the simulated clock) on the events
    reconstructed from the trace, so the observability artifact can
    show the paper's IV.A readback stall without re-running anything.
    """
    # Imported here: core.trace sits above opencl in the layer order
    # and importing it at module load would cycle through repro.core.
    from ..core.trace import render_timeline

    events = queue_spans_to_events(spans)
    if not events:
        raise ReproError("trace contains no queue-command spans to render")
    return render_timeline(events, width=width, max_events=max_events)


def chunk_span_seconds(span: dict) -> float:
    """Total duration of the chunk spans under one serialised run span.

    The acceptance check for serial runs: chunk spans tile the run, so
    their sum lands within a few percent of the run span's wall time.
    """
    total = 0.0
    stack = [span]
    while stack:
        node = stack.pop()
        if node.get("kind") == "chunk":
            total += node["duration_ns"] * 1e-9
        stack.extend(node.get("children", ()))
    return total
