"""Shared metric names and the stable engine-stats schema.

One place defines every observable name, so the metrics registry, the
``EngineStats`` snapshot, the bench-engine JSON document and the
Prometheus export can never drift apart.  ``docs/stats_schema.md``
documents the schema; ``tests/obs/test_schema.py`` asserts it.

Naming follows the Prometheus conventions: snake_case, a library
prefix, ``_total`` for counters, ``_seconds``/``_bytes`` units in the
name.
"""

from __future__ import annotations

__all__ = [
    "STATS_SCHEMA",
    "STATS_KEYS",
    "RELIABILITY_KEYS",
    "SERVICE_STATS_SCHEMA",
    "SERVICE_STATS_KEYS",
    "SERVICE_REQUESTS_TOTAL",
    "SERVICE_OPTIONS_TOTAL",
    "SERVICE_FLUSHES_TOTAL",
    "SERVICE_FLUSH_FULL_TOTAL",
    "SERVICE_FLUSH_DEADLINE_TOTAL",
    "SERVICE_FLUSH_DRAIN_TOTAL",
    "SERVICE_CACHE_HITS_TOTAL",
    "SERVICE_CACHE_MISSES_TOTAL",
    "SERVICE_CACHE_EVICTIONS_TOTAL",
    "SERVICE_CACHE_BYTES",
    "SERVICE_INFLIGHT_JOINS_TOTAL",
    "SERVICE_REJECTED_TOTAL",
    "SERVICE_DEADLINE_EXPIRED_TOTAL",
    "SERVICE_SHED_TOTAL",
    "SERVICE_CANCELLED_TOTAL",
    "SERVICE_ENGINE_RESTARTS_TOTAL",
    "SERVICE_HEALTH_TRANSITIONS_TOTAL",
    "SERVICE_HEALTH_STATE",
    "SERVICE_QUEUE_DEPTH",
    "SERVICE_WAIT_SECONDS",
    "SERVICE_FLUSH_OPTIONS",
    "SERVICE_STATS_TO_METRIC",
    "SERVE_STATS_SCHEMA",
    "SERVE_STATS_KEYS",
    "SERVE_REQUESTS_TOTAL",
    "SERVE_OPTIONS_TOTAL",
    "SERVE_RESPONSES_TOTAL",
    "SERVE_ERRORS_TOTAL",
    "SERVE_BAD_REQUESTS_TOTAL",
    "SERVE_CANCELLED_TOTAL",
    "SERVE_SHARD_RESTARTS_TOTAL",
    "SERVE_SHM_RESULTS_TOTAL",
    "SERVE_PICKLE_RESULTS_TOTAL",
    "SERVE_SHARDS",
    "SERVE_REQUEST_SECONDS",
    "SERVE_STATS_TO_METRIC",
    "STREAM_STATS_SCHEMA",
    "STREAM_STATS_KEYS",
    "STREAM_TICKS_TOTAL",
    "STREAM_SUPPRESSED_TICKS_TOTAL",
    "STREAM_DIRTY_MARKS_TOTAL",
    "STREAM_REVALUATIONS_TOTAL",
    "STREAM_REVAL_BATCHES_TOTAL",
    "STREAM_AGGREGATES_TOTAL",
    "STREAM_INSTRUMENTS",
    "STREAM_TICK_TO_RISK_SECONDS",
    "STREAM_STATS_TO_METRIC",
    "SWEEP_STATS_SCHEMA",
    "SWEEP_STATS_KEYS",
    "SWEEP_CELLS_TOTAL",
    "SWEEP_PRUNED_TOTAL",
    "SWEEP_EXECUTED_TOTAL",
    "SWEEP_DONE_TOTAL",
    "SWEEP_FAILED_TOTAL",
    "SWEEP_SKIPPED_TOTAL",
    "SWEEP_OPTIONS_TOTAL",
    "SWEEP_CELL_SECONDS",
    "SWEEP_STATS_TO_METRIC",
    "BACKEND_FALLBACK_TOTAL",
    "CHUNKS_TOTAL",
    "GROUPS_TOTAL",
    "OPTIONS_PRICED_TOTAL",
    "TREE_NODES_TOTAL",
    "GREEKS_OPTIONS_TOTAL",
    "BUMP_PASSES_TOTAL",
    "RETRIES_TOTAL",
    "TIMEOUTS_TOTAL",
    "POOL_REBUILDS_TOTAL",
    "DEGRADED_TO_SERIAL_TOTAL",
    "QUARANTINED_OPTIONS_TOTAL",
    "CHUNK_LATENCY_SECONDS",
    "RUN_WALL_SECONDS",
    "OPTIONS_PER_SECOND",
    "TREE_NODES_PER_SECOND",
    "PEAK_TILE_BYTES",
    "PCIE_BYTES_TOTAL",
    "PCIE_TRANSFERS_TOTAL",
    "QUEUE_COMMANDS_TOTAL",
    "QUEUE_SIMULATED_BUSY_SECONDS",
    "STATS_TO_METRIC",
]

#: Version tag of the engine statistics schema (bump on key changes).
#: v2 added the greeks-workload counters ``greeks_options`` and
#: ``bump_passes`` (zero on plain pricing runs).  v3 is the service
#: document (the two lines share one version counter).  v4 adds the
#: backend-attribution keys ``backend`` (which
#: :class:`~repro.backends.KernelBackend` priced the run),
#: ``backend_compile_seconds`` (one-time JIT/C compile cost this
#: process paid for it) and ``fused_greeks`` (1 when a greeks run took
#: the single-build fused path instead of five sibling passes).
STATS_SCHEMA = "repro-engine-stats/v4"

#: ``EngineStats.as_dict()`` keys, in their one canonical order.  The
#: bench-engine JSON ``runs`` entries use exactly these keys (plus the
#: harness-owned ``speedup_vs_baseline``).
STATS_KEYS = (
    "options",
    "tree_nodes",
    "groups",
    "chunks",
    "workers",
    "wall_time_s",
    "cpu_time_s",
    "peak_tile_bytes",
    "options_per_second",
    "tree_nodes_per_second",
    "retries",
    "timeouts",
    "pool_rebuilds",
    "degraded_to_serial",
    "quarantined_options",
    "greeks_options",
    "bump_passes",
    "backend",
    "backend_compile_seconds",
    "fused_greeks",
)

#: The subset of :data:`STATS_KEYS` that counts fault-tolerance events.
RELIABILITY_KEYS = (
    "retries",
    "timeouts",
    "pool_rebuilds",
    "degraded_to_serial",
    "quarantined_options",
)

# -- engine metrics --------------------------------------------------------

CHUNKS_TOTAL = "repro_engine_chunks_total"
GROUPS_TOTAL = "repro_engine_groups_total"
OPTIONS_PRICED_TOTAL = "repro_engine_options_priced_total"
TREE_NODES_TOTAL = "repro_engine_tree_nodes_total"
GREEKS_OPTIONS_TOTAL = "repro_engine_greeks_options_total"
BUMP_PASSES_TOTAL = "repro_engine_bump_passes_total"
RETRIES_TOTAL = "repro_engine_retries_total"
TIMEOUTS_TOTAL = "repro_engine_timeouts_total"
POOL_REBUILDS_TOTAL = "repro_engine_pool_rebuilds_total"
DEGRADED_TO_SERIAL_TOTAL = "repro_engine_degraded_to_serial_total"
QUARANTINED_OPTIONS_TOTAL = "repro_engine_quarantined_options_total"
CHUNK_LATENCY_SECONDS = "repro_engine_chunk_latency_seconds"
RUN_WALL_SECONDS = "repro_engine_run_wall_seconds"
OPTIONS_PER_SECOND = "repro_engine_options_per_second"
TREE_NODES_PER_SECOND = "repro_engine_tree_nodes_per_second"
PEAK_TILE_BYTES = "repro_engine_peak_tile_bytes"

# -- pricing-service metrics -----------------------------------------------

#: Version tag of the *service* statistics schema.  The version counter
#: continues the engine schema's line (v1 engine, v2 greeks): v3 adds
#: the service/cache keys; v4 (backend attribution) touches only the
#: engine document, so the service line skips it — the two documents
#: share one version counter but are published under their own names.
#: v5 appends the robustness keys (``deadline_expired``, ``shed``,
#: ``cancelled``, ``engine_restarts``, ``health_transitions``,
#: ``health``) for per-request deadlines, priority load shedding and
#: the health/supervision state machine; every v3 key keeps its name,
#: type and position.
SERVICE_STATS_SCHEMA = "repro-service-stats/v5"

SERVICE_REQUESTS_TOTAL = "repro_service_requests_total"
SERVICE_OPTIONS_TOTAL = "repro_service_options_total"
SERVICE_FLUSHES_TOTAL = "repro_service_flushes_total"
SERVICE_FLUSH_FULL_TOTAL = "repro_service_flush_full_total"
SERVICE_FLUSH_DEADLINE_TOTAL = "repro_service_flush_deadline_total"
SERVICE_FLUSH_DRAIN_TOTAL = "repro_service_flush_drain_total"
SERVICE_CACHE_HITS_TOTAL = "repro_service_cache_hits_total"
SERVICE_CACHE_MISSES_TOTAL = "repro_service_cache_misses_total"
SERVICE_CACHE_EVICTIONS_TOTAL = "repro_service_cache_evictions_total"
SERVICE_CACHE_BYTES = "repro_service_cache_bytes"
SERVICE_INFLIGHT_JOINS_TOTAL = "repro_service_inflight_joins_total"
SERVICE_REJECTED_TOTAL = "repro_service_rejected_total"
SERVICE_DEADLINE_EXPIRED_TOTAL = "repro_service_deadline_expired_total"
SERVICE_SHED_TOTAL = "repro_service_shed_total"
SERVICE_CANCELLED_TOTAL = "repro_service_cancelled_total"
SERVICE_ENGINE_RESTARTS_TOTAL = "repro_service_engine_restarts_total"
SERVICE_HEALTH_TRANSITIONS_TOTAL = "repro_service_health_transitions_total"
SERVICE_HEALTH_STATE = "repro_service_health_state"
SERVICE_QUEUE_DEPTH = "repro_service_queue_depth"
SERVICE_WAIT_SECONDS = "repro_service_wait_seconds"
SERVICE_FLUSH_OPTIONS = "repro_service_flush_options"

#: ``ServiceStats.as_dict()`` keys, in their one canonical order
#: (mirrors :data:`STATS_KEYS` for the engine document).
SERVICE_STATS_KEYS = (
    "requests",
    "options",
    "flushes",
    "flush_full",
    "flush_deadline",
    "flush_drain",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_bytes",
    "inflight_joins",
    "rejected",
    "mean_wait_s",
    "mean_flush_options",
    "deadline_expired",
    "shed",
    "cancelled",
    "engine_restarts",
    "health_transitions",
    "health",
)

#: Service stats-snapshot key -> the service metric it is derived from
#: (the counters; the two ``mean_*`` keys are histogram means and
#: ``health`` is snapshot-only, read from the health monitor).
SERVICE_STATS_TO_METRIC = {
    "requests": SERVICE_REQUESTS_TOTAL,
    "options": SERVICE_OPTIONS_TOTAL,
    "flushes": SERVICE_FLUSHES_TOTAL,
    "flush_full": SERVICE_FLUSH_FULL_TOTAL,
    "flush_deadline": SERVICE_FLUSH_DEADLINE_TOTAL,
    "flush_drain": SERVICE_FLUSH_DRAIN_TOTAL,
    "cache_hits": SERVICE_CACHE_HITS_TOTAL,
    "cache_misses": SERVICE_CACHE_MISSES_TOTAL,
    "cache_evictions": SERVICE_CACHE_EVICTIONS_TOTAL,
    "cache_bytes": SERVICE_CACHE_BYTES,
    "inflight_joins": SERVICE_INFLIGHT_JOINS_TOTAL,
    "rejected": SERVICE_REJECTED_TOTAL,
    "deadline_expired": SERVICE_DEADLINE_EXPIRED_TOTAL,
    "shed": SERVICE_SHED_TOTAL,
    "cancelled": SERVICE_CANCELLED_TOTAL,
    "engine_restarts": SERVICE_ENGINE_RESTARTS_TOTAL,
    "health_transitions": SERVICE_HEALTH_TRANSITIONS_TOTAL,
}

# -- serving-tier (network front-end) metrics ------------------------------

#: Version tag of the *serve* statistics document.  The version counter
#: continues the engine/service line (v4 engine, v5 service): v6 is the
#: sharded network front-end's own document — per-connection request
#: accounting, routed-shard distribution, the shared-memory vs pickle
#: result transport split, and supervisor shard restarts.  Published
#: under its own name; the engine and service documents are unchanged.
SERVE_STATS_SCHEMA = "repro-serve-stats/v6"

SERVE_REQUESTS_TOTAL = "repro_serve_requests_total"
SERVE_OPTIONS_TOTAL = "repro_serve_options_total"
SERVE_RESPONSES_TOTAL = "repro_serve_responses_total"
SERVE_ERRORS_TOTAL = "repro_serve_errors_total"
SERVE_BAD_REQUESTS_TOTAL = "repro_serve_bad_requests_total"
SERVE_CANCELLED_TOTAL = "repro_serve_cancelled_total"
SERVE_SHARD_RESTARTS_TOTAL = "repro_serve_shard_restarts_total"
SERVE_SHM_RESULTS_TOTAL = "repro_serve_shm_results_total"
SERVE_PICKLE_RESULTS_TOTAL = "repro_serve_pickle_results_total"
SERVE_SHARDS = "repro_serve_shards"
SERVE_REQUEST_SECONDS = "repro_serve_request_seconds"

#: ``ServeStats.as_dict()`` keys, in their one canonical order
#: (mirrors :data:`STATS_KEYS`/:data:`SERVICE_STATS_KEYS`).
SERVE_STATS_KEYS = (
    "requests",
    "options",
    "responses",
    "errors",
    "bad_requests",
    "cancelled",
    "shard_restarts",
    "shm_results",
    "pickle_results",
    "shards",
    "mean_request_s",
    "health",
)

#: Serve stats-snapshot key -> the serve metric it is derived from
#: (the counters; ``shards`` is a gauge, ``mean_request_s`` a histogram
#: mean and ``health`` is snapshot-only, read from the shard set).
SERVE_STATS_TO_METRIC = {
    "requests": SERVE_REQUESTS_TOTAL,
    "options": SERVE_OPTIONS_TOTAL,
    "responses": SERVE_RESPONSES_TOTAL,
    "errors": SERVE_ERRORS_TOTAL,
    "bad_requests": SERVE_BAD_REQUESTS_TOTAL,
    "cancelled": SERVE_CANCELLED_TOTAL,
    "shard_restarts": SERVE_SHARD_RESTARTS_TOTAL,
    "shm_results": SERVE_SHM_RESULTS_TOTAL,
    "pickle_results": SERVE_PICKLE_RESULTS_TOTAL,
}

# -- streaming-risk (incremental revaluation) metrics ----------------------

#: Version tag of the *stream* statistics document.  The version
#: counter continues the engine/service/serve line (v4/v5/v6): v7 is
#: the streaming risk loop's own document — tick ingestion, the
#: tolerance gate (dirty marks vs suppressed revaluations), coalesced
#: revaluation batches, published aggregates and the tick-to-risk
#: latency histogram.  Published by
#: :meth:`repro.stream.StreamStats.as_dict` under ``"schema"``.
STREAM_STATS_SCHEMA = "repro-stream-stats/v7"

STREAM_TICKS_TOTAL = "repro_stream_ticks_total"
STREAM_SUPPRESSED_TICKS_TOTAL = "repro_stream_suppressed_ticks_total"
STREAM_DIRTY_MARKS_TOTAL = "repro_stream_dirty_marks_total"
STREAM_REVALUATIONS_TOTAL = "repro_stream_revaluations_total"
STREAM_REVAL_BATCHES_TOTAL = "repro_stream_reval_batches_total"
STREAM_AGGREGATES_TOTAL = "repro_stream_aggregates_total"
STREAM_INSTRUMENTS = "repro_stream_instruments"
STREAM_TICK_TO_RISK_SECONDS = "repro_stream_tick_to_risk_seconds"

#: ``StreamStats.as_dict()`` keys, in their one canonical order
#: (mirrors :data:`STATS_KEYS`/:data:`SERVICE_STATS_KEYS`).
STREAM_STATS_KEYS = (
    "ticks",
    "suppressed_ticks",
    "dirty_marks",
    "revaluations",
    "reval_batches",
    "aggregates",
    "instruments",
    "mean_tick_to_risk_s",
)

#: Stream stats-snapshot key -> the stream metric it is derived from
#: (the counters; ``instruments`` is a gauge and
#: ``mean_tick_to_risk_s`` a histogram mean).
STREAM_STATS_TO_METRIC = {
    "ticks": STREAM_TICKS_TOTAL,
    "suppressed_ticks": STREAM_SUPPRESSED_TICKS_TOTAL,
    "dirty_marks": STREAM_DIRTY_MARKS_TOTAL,
    "revaluations": STREAM_REVALUATIONS_TOTAL,
    "reval_batches": STREAM_REVAL_BATCHES_TOTAL,
    "aggregates": STREAM_AGGREGATES_TOTAL,
}

# -- scenario-sweep (experiment grid) metrics ------------------------------

#: Version tag of the *sweep* statistics document.  The version
#: counter continues the engine/service/serve/stream line
#: (v4/v5/v6/v7): v8 is the scenario-sweep runner's own document —
#: grid size, constraint pruning, executed vs resumed-over cells, the
#: done/failed split, options priced through the service, and the
#: per-cell wall-clock histogram.  Published by
#: :meth:`repro.sweep.SweepStats.as_dict` under ``"schema"``.
SWEEP_STATS_SCHEMA = "repro-sweep-stats/v8"

SWEEP_CELLS_TOTAL = "repro_sweep_cells_total"
SWEEP_PRUNED_TOTAL = "repro_sweep_cells_pruned_total"
SWEEP_EXECUTED_TOTAL = "repro_sweep_cells_executed_total"
SWEEP_DONE_TOTAL = "repro_sweep_cells_done_total"
SWEEP_FAILED_TOTAL = "repro_sweep_cells_failed_total"
SWEEP_SKIPPED_TOTAL = "repro_sweep_cells_skipped_total"
SWEEP_OPTIONS_TOTAL = "repro_sweep_options_total"
SWEEP_CELL_SECONDS = "repro_sweep_cell_seconds"

#: ``SweepStats.as_dict()`` keys, in their one canonical order
#: (mirrors :data:`STATS_KEYS`/:data:`SERVICE_STATS_KEYS`).
SWEEP_STATS_KEYS = (
    "cells",
    "pruned",
    "executed",
    "done",
    "failed",
    "skipped",
    "options",
    "mean_cell_s",
)

#: Sweep stats-snapshot key -> the sweep metric it is derived from
#: (the counters; ``mean_cell_s`` is a histogram mean).
SWEEP_STATS_TO_METRIC = {
    "cells": SWEEP_CELLS_TOTAL,
    "pruned": SWEEP_PRUNED_TOTAL,
    "executed": SWEEP_EXECUTED_TOTAL,
    "done": SWEEP_DONE_TOTAL,
    "failed": SWEEP_FAILED_TOTAL,
    "skipped": SWEEP_SKIPPED_TOTAL,
    "options": SWEEP_OPTIONS_TOTAL,
}

# -- backend-resolution metrics --------------------------------------------

#: Counts ``auto`` backend resolutions that had to skip an unavailable
#: candidate (labelled by the skipped ``backend`` name), so a broken
#: toolchain that silently demotes every engine to the NumPy path is
#: visible in the process-wide export instead of only as a one-shot
#: warning.
BACKEND_FALLBACK_TOTAL = "repro_backend_fallback_total"

# -- simulated device-stack metrics ---------------------------------------

PCIE_BYTES_TOTAL = "repro_link_pcie_bytes_total"
PCIE_TRANSFERS_TOTAL = "repro_link_pcie_transfers_total"
QUEUE_COMMANDS_TOTAL = "repro_queue_commands_total"
QUEUE_SIMULATED_BUSY_SECONDS = "repro_queue_simulated_busy_seconds_total"

#: Stats-snapshot key -> the run-scoped metric it is derived from.
#: ``EngineStats``'s reliability fields are read straight out of the
#: run's metrics registry through this mapping (the registry is the
#: source of truth; the dataclass is its frozen snapshot).
STATS_TO_METRIC = {
    "groups": GROUPS_TOTAL,
    "chunks": CHUNKS_TOTAL,
    "options": OPTIONS_PRICED_TOTAL,
    "tree_nodes": TREE_NODES_TOTAL,
    "retries": RETRIES_TOTAL,
    "timeouts": TIMEOUTS_TOTAL,
    "pool_rebuilds": POOL_REBUILDS_TOTAL,
    "degraded_to_serial": DEGRADED_TO_SERIAL_TOTAL,
    "quarantined_options": QUARANTINED_OPTIONS_TOTAL,
    "greeks_options": GREEKS_OPTIONS_TOTAL,
    "bump_passes": BUMP_PASSES_TOTAL,
}
