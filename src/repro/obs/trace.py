"""Hierarchical span tracing with a zero-overhead disabled mode.

A :class:`Span` is one timed piece of work with structured attributes,
timestamped annotations and child spans; a :class:`Tracer` owns a
forest of root spans (one per engine run or device session).  The
hierarchy mirrors the execution model end to end::

    run                      one PricingEngine.run / device session
    └─ group                 homogeneous (steps, family, profile) group
       └─ chunk              one scheduled tile
          └─ attempt         one pricing attempt (retries add siblings)
             └─ queue:*      simulated OpenCL queue commands

Timestamps come from ``time.perf_counter_ns`` (CLOCK_MONOTONIC), which
on Linux is system-wide: spans recorded inside pool worker processes
mesh onto the parent's timeline without translation.  Workers cannot
share the parent's ``Tracer`` object, so the pool boundary is crossed
by value: the engine sends a :class:`SpanContext` with the work, the
worker records its spans locally and returns them serialised
(``Span.as_dict``), and the parent re-attaches them with
:meth:`Span.adopt`.

When tracing is off, every instrumentation site talks to the module
singletons :data:`NULL_TRACER` / :data:`NULL_SPAN`, whose methods are
empty and allocation-free — the quick-bench regression gate holds with
the instrumentation compiled in.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "as_tracer",
    "max_depth",
]

_now_ns = time.perf_counter_ns
_trace_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span, for crossing process borders.

    :param trace_id: identifier of the owning trace (one per tracer).
    :param path: names from the root span down to the span itself.
    """

    trace_id: str
    path: "tuple[str, ...]"

    def child_path(self, name: str) -> "tuple[str, ...]":
        return self.path + (name,)


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "kind", "start_ns", "end_ns", "attrs",
                 "annotations", "children", "status")

    def __init__(self, name: str, kind: str = "span", **attrs):
        self.name = name
        self.kind = kind
        self.start_ns = _now_ns()
        self.end_ns: "int | None" = None
        self.attrs: dict = dict(attrs)
        #: timestamped events: ``(t_ns, message, attrs)``
        self.annotations: "list[tuple[int, str, dict]]" = []
        self.children: "list[Span]" = []
        self.status = "ok"

    # -- lifecycle ---------------------------------------------------------

    def child(self, name: str, kind: str = "span", **attrs) -> "Span":
        """Start a child span (use as a context manager or end() it)."""
        span = Span(name, kind, **attrs)
        self.children.append(span)
        return span

    def end(self) -> "Span":
        """Close the span; idempotent (the first end time wins)."""
        if self.end_ns is None:
            self.end_ns = _now_ns()
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.status = "error"
            self.attrs.setdefault("error", type(exc).__name__)
        self.end()

    # -- structure ---------------------------------------------------------

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) structured attributes.

        ``status`` is not an attribute but the span's top-level status
        field — ``set(status="error")`` routes there.
        """
        status = attrs.pop("status", None)
        if status is not None:
            self.status = status
        self.attrs.update(attrs)
        return self

    def annotate(self, message: str, **attrs) -> "Span":
        """Record a timestamped event on the span (retry, quarantine, ...)."""
        self.annotations.append((_now_ns(), message, attrs))
        return self

    def adopt(self, serialized: "Sequence[dict]") -> "Span":
        """Re-attach spans serialised in another process as children."""
        for payload in serialized:
            self.children.append(Span.from_dict(payload))
        return self

    def context(self, trace_id: str,
                parent: "SpanContext | None" = None) -> SpanContext:
        """This span's :class:`SpanContext` for handing to a worker."""
        path = (parent.child_path(self.name) if parent is not None
                else (self.name,))
        return SpanContext(trace_id=trace_id, path=path)

    # -- time --------------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else _now_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns * 1e-9

    # -- (de)serialisation -------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready form (stable key order, recursive)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns if self.end_ns is not None else self.start_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
            "annotations": [
                {"t_ns": t, "message": message, "attrs": dict(attrs)}
                for t, message, attrs in self.annotations
            ],
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls.__new__(cls)
        span.name = payload["name"]
        span.kind = payload.get("kind", "span")
        span.start_ns = payload["start_ns"]
        span.end_ns = payload.get("end_ns", payload["start_ns"])
        span.attrs = dict(payload.get("attrs", {}))
        span.annotations = [
            (entry["t_ns"], entry["message"], dict(entry.get("attrs", {})))
            for entry in payload.get("annotations", ())
        ]
        span.status = payload.get("status", "ok")
        span.children = [cls.from_dict(child)
                         for child in payload.get("children", ())]
        return span

    def walk(self) -> "Iterator[Span]":
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.kind}:{self.name}, "
                f"{self.duration_ns / 1e6:.3f} ms, "
                f"{len(self.children)} children)")


class NullSpan:
    """The do-nothing span every disabled-tracing call site receives."""

    __slots__ = ()

    enabled = False
    name = ""
    kind = "null"
    attrs: dict = {}
    annotations: list = []
    children: list = []
    status = "ok"
    start_ns = 0
    end_ns = 0
    duration_ns = 0
    duration_s = 0.0

    def child(self, name: str, kind: str = "span", **attrs) -> "NullSpan":
        return self

    def end(self) -> "NullSpan":
        return self

    def set(self, **attrs) -> "NullSpan":
        return self

    def annotate(self, message: str, **attrs) -> "NullSpan":
        return self

    def adopt(self, serialized) -> "NullSpan":
        return self

    def context(self, trace_id, parent=None) -> None:
        return None

    def as_dict(self) -> dict:
        return {}

    def walk(self):
        return iter(())

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Shared no-op span — one instance serves every disabled call site.
NULL_SPAN = NullSpan()


class Tracer:
    """Collects the root spans of one observed process.

    ``Tracer()`` is enabled; pass the :data:`NULL_TRACER` singleton (or
    ``None`` to APIs that accept it) to run with tracing compiled out.
    """

    enabled = True

    def __init__(self) -> None:
        self.trace_id = f"trace-{os.getpid()}-{next(_trace_ids)}"
        self.roots: "list[Span]" = []

    def start_span(self, name: str, kind: str = "run", **attrs) -> Span:
        """Open a new root span (an engine run, a device session...)."""
        span = Span(name, kind, **attrs)
        self.roots.append(span)
        return span

    def as_dicts(self) -> "list[dict]":
        """Every root span, serialised."""
        return [span.as_dict() for span in self.roots]

    def iter_spans(self) -> "Iterator[Span]":
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        self.roots.clear()

    def __len__(self) -> int:
        return len(self.roots)


class NullTracer:
    """Disabled tracer: every span it hands out is :data:`NULL_SPAN`."""

    enabled = False
    trace_id = "trace-null"
    roots: list = []

    def start_span(self, name: str, kind: str = "run", **attrs) -> NullSpan:
        return NULL_SPAN

    def as_dicts(self) -> list:
        return []

    def iter_spans(self):
        return iter(())

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer (the default of every instrumented API).
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None"):
    """Normalise an optional tracer argument (``None`` -> disabled)."""
    return NULL_TRACER if tracer is None else tracer


def max_depth(span_dict: dict) -> int:
    """Nesting depth of a serialised span tree (a leaf has depth 1)."""
    children = span_dict.get("children", ())
    if not children:
        return 1
    return 1 + max(max_depth(child) for child in children)


def _worker_record(context: "SpanContext | None", name: str, kind: str,
                   **attrs) -> "Span | NullSpan":
    """Start a worker-local span for work described by ``context``.

    Helper for pool workers: with no context (tracing disabled) the
    shared :data:`NULL_SPAN` comes back, so the worker hot path stays
    allocation-free.
    """
    if context is None:
        return NULL_SPAN
    span = Span(name, kind, **attrs)
    span.attrs.setdefault("trace_id", context.trace_id)
    span.attrs.setdefault("parent_path", "/".join(context.path))
    return span
