"""`repro.service` — dynamic batching and caching over the engine.

See :mod:`repro.service.service` for the serving model (coalescing,
content-keyed caching, admission control, deadlines/priorities and
health supervision), :mod:`repro.service.chaos` for the deterministic
service-surface fault injector, and ``docs/service.md`` for the
user-facing contract.
"""

from .cache import CacheEntry, ResultCache, request_key
from .chaos import ChaosInjector, ChaosPlan
from .health import (
    HealthMonitor,
    HealthPolicy,
    HealthReport,
    HealthState,
    RestartDecision,
)
from .service import PricingService, ServiceConfig, ServiceMetrics, ServiceStats

__all__ = [
    "CacheEntry",
    "ChaosInjector",
    "ChaosPlan",
    "HealthMonitor",
    "HealthPolicy",
    "HealthReport",
    "HealthState",
    "PricingService",
    "RestartDecision",
    "ResultCache",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceStats",
    "request_key",
]
