"""`repro.service` — dynamic batching and caching over the engine.

See :mod:`repro.service.service` for the serving model (coalescing,
content-keyed caching, admission control) and ``docs/service.md`` for
the user-facing contract.
"""

from .cache import CacheEntry, ResultCache, request_key
from .service import PricingService, ServiceConfig, ServiceMetrics, ServiceStats

__all__ = [
    "CacheEntry",
    "PricingService",
    "ResultCache",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceStats",
    "request_key",
]
