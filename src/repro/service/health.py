"""Service health state machine and engine restart supervision.

The serving layer needs an answer to "should traffic be routed here?"
that is cheaper and earlier than waiting for requests to fail.  This
module provides it as a small, thread-safe state machine fed by the
signals the engine already emits — flush-level failures, circuit
breaker degradation (``degraded_to_serial``/``pool_rebuilds`` in
:class:`~repro.engine.stats.EngineStats`) — plus the supervisor's own
restart bookkeeping:

* ``HEALTHY`` — recent flushes succeeded; route traffic normally.
* ``DEGRADED`` — the service is still answering but something is
  wrong: a flush failed (its requests re-ran individually), an engine
  degraded to serial, or the windowed failure rate crossed the
  policy threshold.  A load balancer should prefer other replicas.
* ``UNHEALTHY`` — consecutive failures crossed the threshold or an
  engine exhausted its restart budget; readiness probes should fail.

The monitor never acts on its own — :class:`repro.service.PricingService`
asks :meth:`HealthMonitor.request_restart` before replacing a wedged
shared engine, and the *bounded budget with exponential backoff* lives
here so the policy is testable without a service.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass

from ..errors import ServiceError

__all__ = [
    "HealthState",
    "HealthPolicy",
    "HealthReport",
    "RestartDecision",
    "HealthMonitor",
    "HEALTH_STATE_LEVEL",
]


class HealthState(enum.Enum):
    """Service-level health, coarse enough for a readiness probe."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"


#: Numeric encoding used by the ``repro_service_health_state`` gauge
#: (0 = healthy, 1 = degraded, 2 = unhealthy — higher is worse).
HEALTH_STATE_LEVEL = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED: 1,
    HealthState.UNHEALTHY: 2,
}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving the state machine and the restart budget.

    :param window: sliding window of recent flushes the failure rate
        is computed over.
    :param degraded_failure_rate: windowed failure-rate threshold at
        or above which the service reports ``DEGRADED``.
    :param unhealthy_consecutive_failures: consecutive flush failures
        at which the service reports ``UNHEALTHY``.
    :param recover_after: consecutive *clean* flushes required to
        return to ``HEALTHY`` from a degraded/unhealthy state.
    :param restart_limit: engine replacements allowed per engine
        configuration over the service's lifetime; exhausting it pins
        the service ``UNHEALTHY`` (the engine is genuinely wedged,
        replacing it again would thrash).
    :param restart_backoff_s: base of the exponential backoff slept
        before restart ``k`` (``restart_backoff_s * 2**k``).
    """

    window: int = 16
    degraded_failure_rate: float = 0.25
    unhealthy_consecutive_failures: int = 3
    recover_after: int = 8
    restart_limit: int = 2
    restart_backoff_s: float = 0.02

    def __post_init__(self):
        if self.window < 1:
            raise ServiceError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.degraded_failure_rate <= 1.0:
            raise ServiceError(
                f"degraded_failure_rate must be in (0, 1], "
                f"got {self.degraded_failure_rate}")
        if self.unhealthy_consecutive_failures < 1:
            raise ServiceError(
                f"unhealthy_consecutive_failures must be >= 1, "
                f"got {self.unhealthy_consecutive_failures}")
        if self.recover_after < 1:
            raise ServiceError(
                f"recover_after must be >= 1, got {self.recover_after}")
        if self.restart_limit < 0:
            raise ServiceError(
                f"restart_limit must be >= 0, got {self.restart_limit}")
        if self.restart_backoff_s < 0:
            raise ServiceError(
                f"restart_backoff_s must be >= 0, "
                f"got {self.restart_backoff_s}")


@dataclass(frozen=True)
class RestartDecision:
    """Supervisor verdict on replacing one engine.

    :param allowed: ``True`` when the budget still covers a restart.
    :param backoff_s: deterministic exponential delay to sleep before
        rebuilding (0.0 when not allowed).
    """

    allowed: bool
    backoff_s: float = 0.0


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time snapshot returned by ``PricingService.health()``."""

    state: HealthState
    reason: str
    flushes: int
    failures: int
    consecutive_failures: int
    engine_restarts: int
    restart_budget_exhausted: bool
    transitions: int

    def as_dict(self) -> dict:
        """JSON-ready form (state collapsed to its string value)."""
        return {
            "state": self.state.value,
            "reason": self.reason,
            "flushes": self.flushes,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "engine_restarts": self.engine_restarts,
            "restart_budget_exhausted": self.restart_budget_exhausted,
            "transitions": self.transitions,
        }


class HealthMonitor:
    """Thread-safe health state machine fed by flush outcomes.

    The coalescer thread records every flush; any thread may read the
    state or the report.  Transitions are monotone per event: a failed
    or degraded flush moves toward ``DEGRADED``/``UNHEALTHY``, a clean
    streak of :attr:`HealthPolicy.recover_after` flushes moves back to
    ``HEALTHY`` — unless an engine restart budget was exhausted, which
    pins ``UNHEALTHY`` for the rest of the service's life.
    """

    def __init__(self, policy: "HealthPolicy | None" = None):
        self.policy = policy or HealthPolicy()
        self._lock = threading.Lock()
        self._window: "deque[bool]" = deque(maxlen=self.policy.window)
        self._state = HealthState.HEALTHY
        self._reason = "no flushes yet"
        self._flushes = 0
        self._failures = 0
        self._consecutive_failures = 0
        self._clean_streak = 0
        self._restarts: "dict[tuple, int]" = {}
        self._exhausted = False
        self._transitions = 0

    @property
    def state(self) -> HealthState:
        with self._lock:
            return self._state

    @property
    def transitions(self) -> int:
        """State changes since construction (monotone counter)."""
        with self._lock:
            return self._transitions

    def record_flush(self, *, failed: bool,
                     degraded: bool = False) -> HealthState:
        """Feed one flush outcome; returns the (possibly new) state.

        :param failed: the flush raised at the batch level (its
            requests were retried individually).
        :param degraded: the flush succeeded but the engine reported
            circuit-breaker activity (``degraded_to_serial`` or
            ``pool_rebuilds``).
        """
        with self._lock:
            self._flushes += 1
            self._window.append(bool(failed))
            if failed:
                self._failures += 1
                self._consecutive_failures += 1
                self._clean_streak = 0
            else:
                self._consecutive_failures = 0
                self._clean_streak += 1
            rate = sum(self._window) / len(self._window)
            policy = self.policy
            if self._exhausted:
                pass  # pinned UNHEALTHY; _set_state below is a no-op
            elif (self._consecutive_failures
                    >= policy.unhealthy_consecutive_failures):
                self._set_state(
                    HealthState.UNHEALTHY,
                    f"{self._consecutive_failures} consecutive flush "
                    f"failures")
            elif failed:
                self._set_state(HealthState.DEGRADED,
                                "flush failed; requests re-ran individually")
            elif degraded:
                self._set_state(HealthState.DEGRADED,
                                "engine reported circuit-breaker activity")
            elif rate >= policy.degraded_failure_rate:
                self._set_state(
                    HealthState.DEGRADED,
                    f"windowed failure rate {rate:.2f} >= "
                    f"{policy.degraded_failure_rate:g}")
            elif (self._state is not HealthState.HEALTHY
                    and self._clean_streak >= policy.recover_after):
                self._set_state(
                    HealthState.HEALTHY,
                    f"recovered after {self._clean_streak} clean flushes")
            elif self._state is HealthState.HEALTHY:
                self._reason = "recent flushes clean"
            return self._state

    def request_restart(self, key: tuple) -> RestartDecision:
        """May the engine behind ``key`` be replaced?

        Counts against a per-key budget; the decision carries the
        exponential backoff to sleep before the rebuild.  Exhausting
        the budget pins the monitor ``UNHEALTHY`` — the supervisor
        must then keep the wedged engine and let the operator decide.
        """
        with self._lock:
            used = self._restarts.get(key, 0)
            if used >= self.policy.restart_limit:
                self._exhausted = True
                self._set_state(
                    HealthState.UNHEALTHY,
                    f"engine {key!r} exhausted its restart budget "
                    f"({self.policy.restart_limit})")
                return RestartDecision(allowed=False)
            self._restarts[key] = used + 1
            return RestartDecision(
                allowed=True,
                backoff_s=self.policy.restart_backoff_s * (2.0 ** used))

    def report(self) -> HealthReport:
        """Consistent snapshot of the monitor's counters and state."""
        with self._lock:
            return HealthReport(
                state=self._state,
                reason=self._reason,
                flushes=self._flushes,
                failures=self._failures,
                consecutive_failures=self._consecutive_failures,
                engine_restarts=sum(self._restarts.values()),
                restart_budget_exhausted=self._exhausted,
                transitions=self._transitions,
            )

    def _set_state(self, state: HealthState, reason: str) -> None:
        # caller holds the lock
        if self._exhausted and state is not HealthState.UNHEALTHY:
            return
        if state is not self._state:
            self._state = state
            self._transitions += 1
        self._reason = reason
