"""Content-keyed result cache for the pricing service.

Two requests that *mean* the same computation must hash the same, and
two that differ in any value-affecting way must not.  The key is a
blake2b digest over a canonical byte string of everything that
determines the numbers:

* the task and its numeric knobs (``bump_vol``/``bump_rate`` for
  greeks),
* the lattice configuration (``kernel``, ``precision``, ``family``),
* every option's fields — floats rendered with :meth:`float.hex` so
  ``0.1`` and the nearest double hash identically but *any* ULP
  difference changes the key — and its per-option tree depth.

``strict``, ``workers`` and ``backend`` are deliberately excluded:
they change how the caller sees failures and how fast the answer
arrives, never what the answer is — kernel backends are bit-identical
by contract (asserted by ``tests/backends``), so a price computed on
``cnative`` legitimately serves a later ``numpy`` request.  (The
*batch* key does include the backend: coalescing decides which engine
runs, caching only what the numbers are.)  Results containing
failures are never cached, so a cached entry is always a clean answer
and ``strict`` cannot matter on a hit.

The cache itself is a byte-budgeted LRU: entries are charged the size
of their numpy payload, the least-recently-*used* entry is evicted
when the budget overflows, and an entry larger than the whole budget
is simply not admitted.  All methods are thread-safe.

With ``verify=True`` every entry is checksummed (blake2b over its
payload bytes) at admission and re-verified on each hit; an entry
whose bytes changed underneath the cache — the chaos harness's
bit-flip injection, or real silent corruption — is discarded and the
lookup misses, so the service recomputes instead of serving a wrong
number.  Parity over latency: a corrupted hit is the one failure mode
a pricing cache must never have.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..api import PricingRequest

__all__ = ["CacheEntry", "ResultCache", "request_key"]


def request_key(request: PricingRequest) -> str:
    """Canonical content key of a request (hex blake2b digest)."""
    parts = [
        "repro-service-key/v1",
        request.task,
        request.kernel,
        request.precision,
        request.family.value,
    ]
    if request.task == "greeks":
        parts.append(float(request.bump_vol).hex())
        parts.append(float(request.bump_rate).hex())
    steps = request.steps_per_option()
    for option, depth in zip(request.options, steps):
        parts.append("|".join((
            float(option.spot).hex(),
            float(option.strike).hex(),
            float(option.rate).hex(),
            float(option.volatility).hex(),
            float(option.maturity).hex(),
            float(option.dividend_yield).hex(),
            str(option.option_type.value),
            str(option.exercise.value),
            str(int(depth)),
        )))
    digest = hashlib.blake2b("\n".join(parts).encode("utf-8"),
                             digest_size=20)
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """The arrays one cached request resolves to (read-only views).

    ``greeks`` holds the ``(delta, gamma, theta, vega, rho)`` columns
    for greeks-task entries and is ``None`` for price-task entries.
    """

    prices: np.ndarray
    greeks: "tuple[np.ndarray, ...] | None" = None

    @property
    def nbytes(self) -> int:
        total = int(self.prices.nbytes)
        if self.greeks is not None:
            total += sum(int(column.nbytes) for column in self.greeks)
        return total

    @staticmethod
    def freeze(array: np.ndarray) -> np.ndarray:
        """An owned, write-protected copy safe to share across callers."""
        frozen = np.array(array, copy=True)
        frozen.setflags(write=False)
        return frozen

    def checksum(self) -> str:
        """blake2b digest over the payload bytes (verification key)."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(self.prices).tobytes())
        if self.greeks is not None:
            for column in self.greeks:
                digest.update(np.ascontiguousarray(column).tobytes())
        return digest.hexdigest()


class ResultCache:
    """Byte-budgeted, thread-safe LRU of :class:`CacheEntry` values.

    :param max_bytes: payload budget; ``0`` disables the cache (every
        ``get`` misses, every ``put`` is dropped).
    :param verify: checksum entries at admission and re-verify on each
        hit; a mismatch discards the entry, misses, and increments
        :attr:`corruptions_detected`.
    """

    def __init__(self, max_bytes: int, verify: bool = False):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.verify = bool(verify)
        #: entries discarded because their bytes no longer matched the
        #: admission-time checksum (only ever non-zero with verify=True).
        self.corruptions_detected = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._digests: "dict[str, str]" = {}
        self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: str) -> "CacheEntry | None":
        """The entry for ``key`` (refreshing its recency), or ``None``.

        With ``verify=True`` a hit whose payload fails its checksum is
        discarded and reported as a miss.  The checksum is computed
        *outside* the lock — hashing a multi-megabyte payload under
        the global lock would serialise every concurrent reader behind
        it — and the cache state is re-checked afterwards: if the
        entry was replaced or evicted while hashing, the lookup
        retries against whatever is current, so verification is always
        of the entry actually returned.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is None:
                    return None
                if not self.verify:
                    self._entries.move_to_end(key)
                    return entry
            digest = entry.checksum()  # outside the lock, on purpose
            with self._lock:
                if self._entries.get(key) is not entry:
                    continue  # replaced/evicted while hashing; retry
                if digest != self._digests.get(key):
                    del self._entries[key]
                    self._digests.pop(key, None)
                    self._bytes -= entry.nbytes
                    self.corruptions_detected += 1
                    return None
                self._entries.move_to_end(key)
                return entry

    def put(self, key: str, entry: CacheEntry) -> int:
        """Admit ``entry`` under ``key``; returns evictions performed.

        Oversized entries (``entry.nbytes > max_bytes``) are not
        admitted — evicting the whole cache for one un-reusable blob
        is worse than recomputing it.
        """
        size = entry.nbytes
        if size > self.max_bytes:
            return 0
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            if self.verify:
                self._digests[key] = entry.checksum()
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                victim_key, victim = self._entries.popitem(last=False)
                self._digests.pop(victim_key, None)
                self._bytes -= victim.nbytes
                evicted += 1
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._digests.clear()
            self._bytes = 0
