"""Deterministic chaos injection for the service surfaces.

``engine/faults.py`` proved the pattern for chunk execution: a frozen,
seeded plan decides *up front* which events fail, so a chaotic run is
perfectly replayable.  This module extends it to the surfaces the
engine harness cannot reach — the coalescer, the result cache and the
engine supervisor:

* **coalescer stalls** — sleep before a merged flush executes, so
  in-bucket deadlines expire and backlog builds;
* **flush failures** — raise :class:`~repro.errors.ChaosInjectedError`
  in place of the merged engine run, exercising the per-request
  failure-scoping retry path;
* **engine wedges** — report the engine that just flushed as wedged,
  driving the supervisor's bounded restart/backoff machinery;
* **cache corruption** — flip bits in a just-stored cache entry, which
  the cache's checksum verification must detect and discard (the
  request is then recomputed, preserving bitwise parity);
* **eviction storms** — clear the whole cache, forcing recomputation.

All schedules are periodic with seeded periods: a surface's ``k``-th
event fires when ``k % every == every - 1``.  The plan is a pure
function of its seed, the injector counts events — rerun the same
seed against the same request stream and the same chaos happens at
the same places.  Production services never construct one of these;
``ServiceConfig.chaos`` defaults to ``None`` and every hook is behind
an ``is not None`` check.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ChaosInjectedError, ServiceError

__all__ = ["ChaosPlan", "ChaosInjector"]


@dataclass(frozen=True)
class ChaosPlan:
    """Frozen description of which service events misbehave.

    Periods of 0 disable a surface.  Build one directly for a targeted
    test, or :meth:`random` for a seeded mixed workload.

    :param seed: identifies the plan in error messages and keys the
        derived schedules of :meth:`random`.
    :param stall_every: every ``k``-th flush sleeps :attr:`stall_s`
        before executing.
    :param stall_s: coalescer stall duration, seconds.
    :param fail_every: every ``k``-th flush raises
        :class:`~repro.errors.ChaosInjectedError` instead of running.
    :param wedge_every: every ``k``-th *successful* flush reports its
        engine as wedged to the supervisor.
    :param corrupt_every: every ``k``-th cache store is bit-flipped
        after being written.
    :param evict_every: every ``k``-th cache store triggers a full
        cache clear (an eviction storm).
    """

    seed: int = 0
    stall_every: int = 0
    stall_s: float = 0.002
    fail_every: int = 0
    wedge_every: int = 0
    corrupt_every: int = 0
    evict_every: int = 0

    def __post_init__(self):
        for name in ("stall_every", "fail_every", "wedge_every",
                     "corrupt_every", "evict_every"):
            if getattr(self, name) < 0:
                raise ServiceError(
                    f"{name} must be >= 0, got {getattr(self, name)}")
        if self.stall_s < 0:
            raise ServiceError(f"stall_s must be >= 0, got {self.stall_s}")

    @classmethod
    def random(cls, seed: int) -> "ChaosPlan":
        """A mixed plan with every surface active, derived from ``seed``.

        Pure function of the seed (period draws come from
        ``random.Random(f"repro-chaos/{seed}")``), mirroring
        ``FaultPlan``'s replayability contract.
        """
        rng = random.Random(f"repro-chaos/{seed}")
        return cls(
            seed=seed,
            stall_every=rng.randint(3, 6),
            stall_s=0.001 + 0.004 * rng.random(),
            fail_every=rng.randint(4, 9),
            wedge_every=rng.randint(5, 11),
            corrupt_every=rng.randint(3, 7),
            evict_every=rng.randint(6, 13),
        )

    def active(self) -> bool:
        """True when at least one surface can fire."""
        return any((self.stall_every, self.fail_every, self.wedge_every,
                    self.corrupt_every, self.evict_every))


class ChaosInjector:
    """Counts service events and fires the plan's schedules.

    One per service instance; all methods are thread-safe (the
    coalescer owns most call sites, but ``submit()``-side cache hooks
    may race it).  :attr:`injected` tallies what actually fired so the
    acceptance suite can assert the run was genuinely chaotic.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts = {"flush": 0, "wedge": 0, "store": 0}
        #: events fired per surface, for test assertions.
        self.injected = {"stalls": 0, "flush_failures": 0, "wedges": 0,
                         "corruptions": 0, "evictions": 0}

    def _tick(self, surface: str) -> int:
        with self._lock:
            ordinal = self._counts[surface]
            self._counts[surface] = ordinal + 1
            return ordinal

    @staticmethod
    def _fires(ordinal: int, every: int) -> bool:
        return every > 0 and ordinal % every == every - 1

    def on_flush(self) -> None:
        """Hook before a merged flush executes: may stall, may raise."""
        ordinal = self._tick("flush")
        if self._fires(ordinal, self.plan.stall_every):
            with self._lock:
                self.injected["stalls"] += 1
            time.sleep(self.plan.stall_s)
        if self._fires(ordinal, self.plan.fail_every):
            with self._lock:
                self.injected["flush_failures"] += 1
            raise ChaosInjectedError(
                f"chaos: injected flush failure (flush {ordinal}, "
                f"seed {self.plan.seed})")

    def wedge_engine(self) -> bool:
        """Hook after a successful flush: is its engine 'wedged'?"""
        ordinal = self._tick("wedge")
        fired = self._fires(ordinal, self.plan.wedge_every)
        if fired:
            with self._lock:
                self.injected["wedges"] += 1
        return fired

    def on_cache_store(self, cache, entry) -> None:
        """Hook after a cache put: may corrupt the entry or clear all.

        Corruption flips one bit of the stored price array *in place*
        (the cache holds the same frozen array object), so only the
        cache's checksum verification can tell — exactly the silent
        bit-rot scenario the verifying cache exists for.
        """
        ordinal = self._tick("store")
        if self._fires(ordinal, self.plan.corrupt_every):
            with self._lock:
                self.injected["corruptions"] += 1
            prices = entry.prices
            prices.setflags(write=True)
            try:
                view = prices.view(np.uint64)
                view[ordinal % len(view)] ^= np.uint64(1 << 52)
            finally:
                prices.setflags(write=False)
        if self._fires(ordinal, self.plan.evict_every):
            with self._lock:
                self.injected["evictions"] += 1
            cache.clear()

    def counts(self) -> dict:
        """Snapshot of fired-event tallies (copy, safe to mutate)."""
        with self._lock:
            return dict(self.injected)
