"""The in-process pricing service: coalesce, batch, cache, scatter.

The paper's host/device split (Section IV.B) reduces the host to
write-params / enqueue / read-results — the shape of a serving system.
This module supplies the layer the data-centre deployment literature
(Inggs et al.) says makes accelerators pay off: many small concurrent
requests are **coalesced** into the large batches
:class:`~repro.engine.PricingEngine` is fast at, executed once, and
scattered back to per-request futures.

Life of a request::

    submit(PricingRequest)
      ├─ cache hit?        -> future resolves immediately (no engine)
      ├─ identical request -> joins the in-flight computation
      │  already queued?      (one execution, many futures)
      └─ else              -> bounded admission queue
                               │ coalescer thread
                               │ buckets by request.batch_key
                               │ flush on max_batch options or the
                               │ oldest entry's max_wait_ms deadline
                               ▼
                             run_request(engine, merged request)
                               ▼
                             scatter slices to futures, admit clean
                             slices to the content-keyed cache

Failure scoping is per request: the merged flush always runs with
``strict=False`` so the engine quarantines poisoned options to NaN +
:class:`~repro.engine.reliability.FailureRecord` instead of raising,
records are remapped into each request's own index space, and each
caller's ``strict`` flag is applied to *their slice only* when their
future resolves.  One bad option never fails its coalesced
neighbours.

Prices are bitwise-identical to a direct ``engine.run`` of the same
options: the engine's per-option math is row-independent, so batch
composition (and therefore coalescing) cannot change a single ULP.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace

import numpy as np

from ..api import (
    PricingRequest,
    ServiceResult,
    _engine_profile,
    raise_first_failure,
    run_request,
)
from ..engine import EngineConfig, PricingEngine
from ..engine.faults import FaultPlan
from ..errors import ServiceError, ServiceOverloadedError
from ..obs import keys
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import as_tracer
from .cache import CacheEntry, ResultCache, request_key

__all__ = ["PricingService", "ServiceConfig", "ServiceMetrics",
           "ServiceStats"]

_GREEKS_COLUMNS = ("delta", "gamma", "theta", "vega", "rho")

#: Sentinel the coalescer drains up to on :meth:`PricingService.close`.
_CLOSE = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`PricingService`.

    :param max_batch: flush a bucket once it holds this many *options*
        (requests stay whole — a flush may overshoot by the last
        request's size).
    :param max_wait_ms: flush a bucket this long after its **oldest**
        entry arrived, even if under-full — the latency bound a
        request pays for the chance to be coalesced.
    :param max_queue: admission-queue capacity in requests; submits
        beyond it raise :class:`ServiceOverloadedError`.
    :param cache_bytes: result-cache payload budget (0 disables
        caching; in-flight dedup still works).
    :param workers: engine worker processes, shorthand for
        ``engine_config=EngineConfig(workers=...)``.
    :param engine_config: full :class:`~repro.engine.EngineConfig` for
        the engines the service owns; mutually exclusive with
        ``workers``.
    :param faults: deterministic :class:`~repro.engine.faults.FaultPlan`
        handed to every engine the service builds (testing/benching the
        retry/quarantine paths under coalescing; ``None`` in
        production).
    """

    max_batch: int = 256
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    cache_bytes: int = 64 << 20
    workers: "int | None" = None
    engine_config: "EngineConfig | None" = None
    faults: "FaultPlan | None" = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServiceError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.cache_bytes < 0:
            raise ServiceError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.workers is not None and self.engine_config is not None:
            raise ServiceError("pass either workers or engine_config, not both")
        if self.workers is not None and self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")


class ServiceMetrics:
    """Service-scoped metrics, same pattern as the engine's RunMetrics.

    Counts into an owned :class:`MetricsRegistry`;
    :meth:`publish` folds it into the process-wide registry when the
    service closes, and :meth:`ServiceStats.from_metrics` freezes the
    public snapshot.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.requests = reg.counter(
            keys.SERVICE_REQUESTS_TOTAL, "Requests accepted by submit()")
        self.options = reg.counter(
            keys.SERVICE_OPTIONS_TOTAL, "Options across accepted requests")
        self.flushes = reg.counter(
            keys.SERVICE_FLUSHES_TOTAL, "Coalesced engine flushes executed")
        self.flush_full = reg.counter(
            keys.SERVICE_FLUSH_FULL_TOTAL, "Flushes triggered by max_batch")
        self.flush_deadline = reg.counter(
            keys.SERVICE_FLUSH_DEADLINE_TOTAL,
            "Flushes triggered by the max_wait_ms deadline")
        self.flush_drain = reg.counter(
            keys.SERVICE_FLUSH_DRAIN_TOTAL, "Flushes triggered by close()")
        self.cache_hits = reg.counter(
            keys.SERVICE_CACHE_HITS_TOTAL,
            "Requests answered from the result cache")
        self.cache_misses = reg.counter(
            keys.SERVICE_CACHE_MISSES_TOTAL,
            "Requests that had to be computed")
        self.cache_evictions = reg.counter(
            keys.SERVICE_CACHE_EVICTIONS_TOTAL,
            "Entries evicted to stay inside cache_bytes")
        self.inflight_joins = reg.counter(
            keys.SERVICE_INFLIGHT_JOINS_TOTAL,
            "Requests that joined an identical in-flight computation")
        self.rejected = reg.counter(
            keys.SERVICE_REJECTED_TOTAL,
            "Submits refused with ServiceOverloadedError")
        self.cache_bytes = reg.gauge(
            keys.SERVICE_CACHE_BYTES, "Result-cache payload bytes in use")
        self.queue_depth = reg.gauge(
            keys.SERVICE_QUEUE_DEPTH, "Admission-queue depth after the last "
            "enqueue/dequeue")
        self.wait = reg.histogram(
            keys.SERVICE_WAIT_SECONDS,
            "Per-request time from submit to flush start",
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.05, 0.1, 1.0))
        self.flush_options = reg.histogram(
            keys.SERVICE_FLUSH_OPTIONS,
            "Merged batch size per flush, in options",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024))
        for handle in (self.requests, self.options, self.flushes,
                       self.flush_full, self.flush_deadline,
                       self.flush_drain, self.cache_hits, self.cache_misses,
                       self.cache_evictions, self.inflight_joins,
                       self.rejected):
            handle.inc(0.0)
        self.cache_bytes.set(0.0)
        self.queue_depth.set(0.0)

    def publish(self) -> None:
        """Merge this service's registry into the process-wide one."""
        get_registry().merge(self.registry)


@dataclass(frozen=True)
class ServiceStats:
    """What one :class:`PricingService` did over its lifetime.

    Snapshot of the service registry under the stable
    ``repro-service-stats/v3`` schema
    (:data:`repro.obs.keys.SERVICE_STATS_KEYS`; documented in
    ``docs/stats_schema.md``).
    """

    requests: int = 0
    options: int = 0
    flushes: int = 0
    flush_full: int = 0
    flush_deadline: int = 0
    flush_drain: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_bytes: int = 0
    inflight_joins: int = 0
    rejected: int = 0
    mean_wait_s: float = 0.0
    mean_flush_options: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: ServiceMetrics) -> "ServiceStats":
        registry = metrics.registry
        counts = {
            stat: int(registry.value(metric))
            for stat, metric in keys.SERVICE_STATS_TO_METRIC.items()
        }
        wait = metrics.wait
        flush_options = metrics.flush_options
        return cls(
            mean_wait_s=(wait.sum / wait.count) if wait.count else 0.0,
            mean_flush_options=((flush_options.sum / flush_options.count)
                                if flush_options.count else 0.0),
            **counts,
        )

    @property
    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any lookup."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot in :data:`SERVICE_STATS_KEYS` order."""
        return {key: getattr(self, key) for key in keys.SERVICE_STATS_KEYS}

    def describe(self) -> str:
        """One-line ``key=value`` summary in canonical key order."""
        parts = []
        for key, value in self.as_dict().items():
            parts.append(f"{key}={value:.6g}" if isinstance(value, float)
                         else f"{key}={value}")
        return " ".join(parts)


@dataclass
class _Pending:
    """One admitted request waiting in the queue / a bucket."""

    request: PricingRequest
    future: Future
    key: str
    enqueued: float


@dataclass
class _Bucket:
    """Requests with one batch_key accumulating toward a flush."""

    deadline: float
    entries: "list[_Pending]" = field(default_factory=list)
    n_options: int = 0


class PricingService:
    """Dynamic-batching front end over shared :class:`PricingEngine`\\ s.

    Thread-safe: any number of caller threads may :meth:`submit`
    concurrently; one internal coalescer thread owns batching and
    engine execution, so results are as deterministic as the engine
    itself (bitwise, in fact — see the module docstring).

    Use as a context manager or call :meth:`close` — it drains queued
    requests, flushes every partial bucket, closes the engines the
    service owns and publishes the service metrics::

        with PricingService(ServiceConfig(max_batch=512)) as service:
            futures = [service.submit(req) for req in requests]
            results = [f.result() for f in futures]

    :param config: a :class:`ServiceConfig` (default-constructed when
        ``None``).
    :param tracer: optional :class:`repro.obs.trace.Tracer`; records
        ``service.enqueue`` and ``service.flush`` (execute/scatter)
        spans, and is also handed to the engines so their
        run/group/chunk spans land in the same trace.
    """

    def __init__(self, config: "ServiceConfig | None" = None, *,
                 tracer=None):
        self.config = config if config is not None else ServiceConfig()
        self._tracer = as_tracer(tracer)
        self.metrics = ServiceMetrics()
        self._cache = ResultCache(self.config.cache_bytes)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_queue)
        self._lock = threading.Lock()
        self._inflight: "dict[str, list[_Pending]]" = {}
        self._engines: "dict[tuple, PricingEngine]" = {}
        self._closed = False
        self._final_stats: "ServiceStats | None" = None
        self._max_wait_s = self.config.max_wait_ms / 1000.0
        self._engine_config = self.config.engine_config
        if self.config.workers is not None:
            self._engine_config = EngineConfig(workers=self.config.workers)
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service-coalescer",
                                        daemon=True)
        self._thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, request: PricingRequest) -> "Future[ServiceResult]":
        """Admit one request; returns a future of :class:`ServiceResult`.

        Resolution order: content-cache hit (immediate) → join of an
        identical in-flight request (shares that computation) → the
        bounded queue (coalesced and flushed by the service thread).

        :raises ServiceError: the service is closed, or ``request`` is
            not a :class:`PricingRequest`.
        :raises ServiceOverloadedError: the admission queue is full.
        """
        if not isinstance(request, PricingRequest):
            raise ServiceError(
                f"submit() takes a PricingRequest, got "
                f"{type(request).__name__}")
        if self._closed:
            raise ServiceError("this PricingService is closed")
        span = self._tracer.start_span(
            "service.enqueue", "request", task=request.task,
            kernel=request.kernel, options=len(request))
        self.metrics.requests.inc()
        self.metrics.options.inc(float(len(request)))
        key = request_key(request)
        future: "Future[ServiceResult]" = Future()
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self.metrics.cache_hits.inc()
                span.set(outcome="cache_hit").end()
                future.set_result(self._entry_result(request, entry))
                return future
            followers = self._inflight.get(key)
            if followers is not None:
                followers.append(_Pending(request, future, key,
                                          time.monotonic()))
                self.metrics.inflight_joins.inc()
                span.set(outcome="inflight_join").end()
                return future
            self._inflight[key] = []
        pending = _Pending(request, future, key, time.monotonic())
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._lock:
                self._inflight.pop(key, None)
            self.metrics.rejected.inc()
            span.set(outcome="rejected").end()
            raise ServiceOverloadedError(
                f"admission queue is full ({self.config.max_queue} "
                f"requests); back off and retry, shed load, or raise "
                f"ServiceConfig.max_queue") from None
        self.metrics.cache_misses.inc()
        self.metrics.queue_depth.set(float(self._queue.qsize()))
        span.set(outcome="queued").end()
        return future

    # -- results -----------------------------------------------------------

    def _entry_result(self, request: PricingRequest,
                      entry: CacheEntry) -> ServiceResult:
        columns = dict.fromkeys(_GREEKS_COLUMNS)
        if entry.greeks is not None:
            columns = dict(zip(_GREEKS_COLUMNS, entry.greeks))
        return ServiceResult(prices=entry.prices, route="service",
                             cache_hit=True, batch_options=0, wait_s=0.0,
                             **columns)

    def _resolve(self, pending: _Pending, result: ServiceResult) -> None:
        """Apply the caller's ``strict`` flag and resolve one future."""
        if pending.request.strict and result.failures:
            try:
                raise_first_failure(result.failures)
            except Exception as exc:  # noqa: BLE001 - re-raised via future
                pending.future.set_exception(exc)
                return
        pending.future.set_result(result)

    def _settle(self, pending: _Pending, result: ServiceResult) -> None:
        """Resolve a primary plus every follower that joined its key.

        Clean results (no failures) are admitted to the content cache
        first, so the next identical request is a pure hit.
        """
        if not result.failures:
            greeks = None
            if pending.request.task == "greeks":
                greeks = tuple(CacheEntry.freeze(getattr(result, column))
                               for column in _GREEKS_COLUMNS)
            entry = CacheEntry(prices=CacheEntry.freeze(result.prices),
                               greeks=greeks)
            evicted = self._cache.put(pending.key, entry)
            if evicted:
                self.metrics.cache_evictions.inc(float(evicted))
            self.metrics.cache_bytes.set(float(self._cache.bytes_used))
        with self._lock:
            followers = self._inflight.pop(pending.key, [])
        self._resolve(pending, result)
        for follower in followers:
            self._resolve(follower, replace(result, cache_hit=True))

    def _fail(self, pending: _Pending, exc: BaseException) -> None:
        with self._lock:
            followers = self._inflight.pop(pending.key, [])
        for target in (pending, *followers):
            if not target.future.done():
                target.future.set_exception(exc)

    # -- the coalescer thread ----------------------------------------------

    def _run(self) -> None:
        buckets: "dict[tuple, _Bucket]" = {}
        while True:
            timeout = None
            if buckets:
                deadline = min(b.deadline for b in buckets.values())
                timeout = max(0.0, deadline - time.monotonic())
            try:
                items = [self._queue.get(timeout=timeout)]
            except queue.Empty:
                items = []
            # Drain the whole backlog before looking at deadlines: a
            # request that queued up while a flush was executing has
            # "used up" its wait in the queue, and charging that wait
            # against its bucket's deadline would flush post-backlog
            # buckets one or two requests at a time — the opposite of
            # coalescing.  Backlog first, deadlines after.
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            closing = False
            for item in items:
                if item is _CLOSE:
                    closing = True
                    continue
                bkey = item.request.batch_key
                bucket = buckets.get(bkey)
                if bucket is None:
                    bucket = buckets[bkey] = _Bucket(
                        deadline=time.monotonic() + self._max_wait_s)
                bucket.entries.append(item)
                bucket.n_options += len(item.request)
                if bucket.n_options >= self.config.max_batch:
                    del buckets[bkey]
                    self._flush(bucket, "full")
            self.metrics.queue_depth.set(float(self._queue.qsize()))
            if closing:
                for bkey in list(buckets):
                    self._flush(buckets.pop(bkey), "drain")
                return
            now = time.monotonic()
            for bkey in [k for k, b in buckets.items() if b.deadline <= now]:
                self._flush(buckets.pop(bkey), "deadline")

    def _merge(self, entries: "list[_Pending]") -> PricingRequest:
        """One engine-shaped request covering every bucket entry.

        Entries share a ``batch_key``, so kernel/precision/family/task
        (and greeks bumps) agree; options are concatenated and depths
        carried per option (``group_stream`` regroups heterogeneous
        depths inside the run).  Always ``strict=False`` — failures
        must come back as records to be scoped per request.
        """
        first = entries[0].request
        options: "list" = []
        steps: "list[int]" = []
        for pending in entries:
            options.extend(pending.request.options)
            steps.extend(pending.request.steps_per_option())
        steps_spec: "int | tuple[int, ...]" = (
            steps[0] if len(set(steps)) == 1 else tuple(steps))
        return PricingRequest(
            options=tuple(options), steps=steps_spec, kernel=first.kernel,
            precision=first.precision, family=first.family, task=first.task,
            strict=False, backend=first.backend,
            bump_vol=first.bump_vol, bump_rate=first.bump_rate)

    def _engine_for(self, request: PricingRequest) -> PricingEngine:
        key = (request.kernel, request.precision, request.family.value,
               request.backend)
        engine = self._engines.get(key)
        if engine is None:
            config = self._engine_config
            if request.backend != "auto":
                config = replace(config if config is not None
                                 else EngineConfig(),
                                 backend=request.backend)
            engine = PricingEngine(
                kernel=request.kernel,
                profile=_engine_profile(request.precision),
                family=request.family, config=config,
                faults=self.config.faults,
                tracer=self._tracer if self._tracer.enabled else None)
            self._engines[key] = engine
        return engine

    def _flush(self, bucket: _Bucket, reason: str) -> None:
        entries = bucket.entries
        merged = self._merge(entries)
        flush_start = time.monotonic()
        span = self._tracer.start_span(
            f"service.flush[{merged.task}:{merged.kernel}]", "flush",
            reason=reason, requests=len(entries), options=len(merged))
        self.metrics.flushes.inc()
        getattr(self.metrics, f"flush_{reason}").inc()
        self.metrics.flush_options.observe(float(len(merged)))
        try:
            engine = self._engine_for(merged)
            execute = span.child("execute", "engine", options=len(merged))
            try:
                result = run_request(engine, merged)
            finally:
                execute.end()
        except Exception:
            # A flush-level failure (not per-option quarantine — the
            # engine turns those into records) must not take out every
            # coalesced neighbour: re-run each request on its own so
            # only the guilty one carries the error.
            span.annotate("flush failed; re-running requests individually")
            self._flush_individually(entries, flush_start, span)
            span.end()
            return
        scatter = span.child("scatter", "scatter", requests=len(entries))
        lo = 0
        for pending in entries:
            hi = lo + len(pending.request)
            self._settle(pending, self._slice_result(
                pending, result, lo, hi, len(merged), flush_start))
            lo = hi
        scatter.end()
        span.end()

    def _slice_result(self, pending: _Pending, result, lo: int, hi: int,
                      batch_options: int, flush_start: float) -> ServiceResult:
        wait_s = max(0.0, flush_start - pending.enqueued)
        self.metrics.wait.observe(wait_s)
        failures = tuple(replace(record, index=record.index - lo)
                         for record in result.failures
                         if lo <= record.index < hi)
        columns = dict.fromkeys(_GREEKS_COLUMNS)
        if pending.request.task == "greeks":
            columns = {column: getattr(result, column)[lo:hi]
                       for column in _GREEKS_COLUMNS}
        return ServiceResult(
            prices=result.prices[lo:hi], route="service",
            stats=result.stats, failures=failures, cache_hit=False,
            batch_options=batch_options, wait_s=wait_s, **columns)

    def _flush_individually(self, entries: "list[_Pending]",
                            flush_start: float, span) -> None:
        for pending in entries:
            single = replace(pending.request, strict=False)
            try:
                engine = self._engine_for(single)
                result = run_request(engine, single)
            except Exception as exc:  # noqa: BLE001 - scoped to this request
                self._fail(pending, exc)
                continue
            self._settle(pending, self._slice_result(
                pending, result, 0, len(single), len(single), flush_start))

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> ServiceStats:
        """A live snapshot (the final one is returned by :meth:`close`)."""
        if self._final_stats is not None:
            return self._final_stats
        return ServiceStats.from_metrics(self.metrics)

    def close(self) -> ServiceStats:
        """Drain, flush, shut down; returns the final stats snapshot.

        New submits are rejected immediately; everything already
        admitted is flushed (``flush_drain``) so no future is left
        unresolved.  Engines the service owns are closed and the
        service metrics merge into the process-wide registry.
        Idempotent — later calls return the same snapshot.
        """
        with self._lock:
            if self._closed:
                if self._final_stats is not None:
                    return self._final_stats
            self._closed = True
        if self._thread.is_alive():
            self._queue.put(_CLOSE)
            self._thread.join()
        # Reject anything that raced past the closed check after the
        # sentinel (the coalescer has exited and will never see it).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _CLOSE:
                self._fail(item, ServiceError(
                    "this PricingService closed before the request ran"))
        for engine in self._engines.values():
            engine.close()
        if self._final_stats is None:
            self._final_stats = ServiceStats.from_metrics(self.metrics)
            self.metrics.publish()
        return self._final_stats

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
