"""The in-process pricing service: coalesce, batch, cache, scatter.

The paper's host/device split (Section IV.B) reduces the host to
write-params / enqueue / read-results — the shape of a serving system.
This module supplies the layer the data-centre deployment literature
(Inggs et al.) says makes accelerators pay off: many small concurrent
requests are **coalesced** into the large batches
:class:`~repro.engine.PricingEngine` is fast at, executed once, and
scattered back to per-request futures.

Life of a request::

    submit(PricingRequest)
      ├─ cache hit?        -> future resolves immediately (no engine)
      ├─ identical request -> joins the in-flight computation
      │  already queued?      (one execution, many futures)
      └─ else              -> bounded admission queue
                               │ coalescer thread
                               │ buckets by request.batch_key
                               │ flush on max_batch options or the
                               │ oldest entry's max_wait_ms deadline
                               ▼
                             run_request(engine, merged request)
                               ▼
                             scatter slices to futures, admit clean
                             slices to the content-keyed cache

Failure scoping is per request: the merged flush always runs with
``strict=False`` so the engine quarantines poisoned options to NaN +
:class:`~repro.engine.reliability.FailureRecord` instead of raising,
records are remapped into each request's own index space, and each
caller's ``strict`` flag is applied to *their slice only* when their
future resolves.  One bad option never fails its coalesced
neighbours.

Prices are bitwise-identical to a direct ``engine.run`` of the same
options: the engine's per-option math is row-independent, so batch
composition (and therefore coalescing) cannot change a single ULP.

Robustness (the serving contract under stress):

* **deadlines** — a request carrying ``deadline_ms`` is rejected with
  :class:`~repro.errors.DeadlineExceededError` the moment its budget
  expires in the queue or a bucket (no engine work is spent on it),
  and while live it bounds the per-chunk timeout of the flush that
  carries it;
* **cancellation** — ``future.cancel()`` on a not-yet-flushed request
  is honoured at claim time; a waiting in-flight follower is promoted
  to primary so the computation is only dropped when nobody wants it;
* **priority shedding** — the admission queue has two bands; when it
  is full, a ``priority="high"`` submit sheds the oldest
  normal-priority entry (its future fails with
  :class:`~repro.errors.ServiceOverloadedError`) instead of being
  rejected;
* **health & supervision** — a :class:`~repro.service.health.HealthMonitor`
  digests flush outcomes and engine degradation signals into
  ``HEALTHY/DEGRADED/UNHEALTHY`` (see :meth:`PricingService.health`),
  and a wedged shared engine is replaced under a bounded, backed-off
  restart budget;
* **chaos** — a :class:`~repro.service.chaos.ChaosPlan` in the config
  turns on deterministic fault injection across all of the above (the
  acceptance suite lives in ``tests/service/test_chaos.py``).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace

import numpy as np

from ..api import (
    GREEKS_COLUMNS,
    PricingRequest,
    ServiceResult,
    _engine_profile,
    raise_first_failure,
    run_request,
)
from ..engine import EngineConfig, PricingEngine
from ..engine.faults import FaultPlan
from ..errors import (
    DeadlineExceededError,
    EngineError,
    ServiceError,
    ServiceOverloadedError,
)
from ..obs import keys
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import as_tracer
from .cache import CacheEntry, ResultCache, request_key
from .chaos import ChaosInjector, ChaosPlan
from .health import (
    HEALTH_STATE_LEVEL,
    HealthMonitor,
    HealthPolicy,
    HealthReport,
    HealthState,
)

__all__ = ["PricingService", "ServiceConfig", "ServiceMetrics",
           "ServiceStats"]

_GREEKS_COLUMNS = GREEKS_COLUMNS

#: Sentinel the coalescer drains up to on :meth:`PricingService.close`.
_CLOSE = object()


@dataclass
class _DrainToken:
    """Control token: flush everything admitted before it, then signal."""

    done: threading.Event = field(default_factory=threading.Event)


class _AdmissionQueue:
    """Two-band bounded queue with priority shedding and control tokens.

    ``high``-priority entries always dequeue before ``normal`` ones.
    When the queue is full, admitting a high-priority entry *sheds*
    (removes and returns) the oldest normal-priority entry instead of
    raising; a full queue with no normal entries to shed — or any full
    queue receiving a normal-priority entry — raises
    :class:`queue.Full`, preserving the original backpressure
    contract.  Control tokens (:data:`_CLOSE`, :class:`_DrainToken`)
    live on an unbounded side channel so shutdown can never be blocked
    out by a full queue.

    The queue owns the ``repro_service_queue_depth`` gauge: every
    transition — enqueue, dequeue, shed — publishes the new depth
    under the queue lock, so the gauge can never lag a transition or
    overstate the backlog while the coalescer is busy flushing.
    Control tokens are not requests and are never counted.
    """

    def __init__(self, maxsize: int, depth_gauge=None):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._high: "deque[_Pending]" = deque()
        self._normal: "deque[_Pending]" = deque()
        self._control: deque = deque()
        self._depth_gauge = depth_gauge

    def _publish_depth(self) -> None:
        # caller holds self._lock
        if self._depth_gauge is not None:
            self._depth_gauge.set(float(len(self._high) + len(self._normal)))

    def qsize(self) -> int:
        with self._lock:
            return len(self._high) + len(self._normal)

    def put(self, pending: "_Pending") -> "list[_Pending]":
        """Admit ``pending``; returns the entries shed to make room.

        :raises queue.Full: no capacity and nothing shed-able.
        """
        with self._ready:
            shed: "list[_Pending]" = []
            if len(self._high) + len(self._normal) >= self.maxsize:
                if pending.request.priority == "high" and self._normal:
                    shed.append(self._normal.popleft())
                else:
                    raise queue.Full
            band = (self._high if pending.request.priority == "high"
                    else self._normal)
            band.append(pending)
            self._publish_depth()
            self._ready.notify()
            return shed

    def put_control(self, token) -> None:
        """Enqueue a control token (never full, never shed)."""
        with self._ready:
            self._control.append(token)
            self._ready.notify()

    def get(self, timeout: "float | None" = None):
        with self._ready:
            if not self._ready.wait_for(self._available, timeout=timeout):
                raise queue.Empty
            return self._pop()

    def get_nowait(self):
        with self._ready:
            if not self._available():
                raise queue.Empty
            return self._pop()

    def _available(self) -> bool:
        return bool(self._high or self._normal or self._control)

    def _pop(self):
        if self._high:
            item = self._high.popleft()
        elif self._normal:
            item = self._normal.popleft()
        else:
            return self._control.popleft()
        self._publish_depth()
        return item


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`PricingService`.

    :param max_batch: flush a bucket once it holds this many *options*
        (requests stay whole — a flush may overshoot by the last
        request's size).
    :param max_wait_ms: flush a bucket this long after its **oldest**
        entry arrived, even if under-full — the latency bound a
        request pays for the chance to be coalesced.
    :param max_queue: admission-queue capacity in requests; submits
        beyond it raise :class:`ServiceOverloadedError`.
    :param cache_bytes: result-cache payload budget (0 disables
        caching; in-flight dedup still works).
    :param workers: engine worker processes, shorthand for
        ``engine_config=EngineConfig(workers=...)``.
    :param engine_config: full :class:`~repro.engine.EngineConfig` for
        the engines the service owns; mutually exclusive with
        ``workers``.
    :param faults: deterministic :class:`~repro.engine.faults.FaultPlan`
        handed to every engine the service builds (testing/benching the
        retry/quarantine paths under coalescing; ``None`` in
        production).
    :param health: thresholds and restart budget of the service's
        :class:`~repro.service.health.HealthMonitor` (defaults applied
        when ``None``).
    :param chaos: deterministic
        :class:`~repro.service.chaos.ChaosPlan` injecting faults into
        the *service* surfaces — coalescer stalls, flush failures,
        engine wedges, cache corruption/eviction storms.  Installing
        one also turns on cache checksum verification so injected
        corruption is detected, not served.  ``None`` in production.
    """

    max_batch: int = 256
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    cache_bytes: int = 64 << 20
    workers: "int | None" = None
    engine_config: "EngineConfig | None" = None
    faults: "FaultPlan | None" = None
    health: "HealthPolicy | None" = None
    chaos: "ChaosPlan | None" = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServiceError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.cache_bytes < 0:
            raise ServiceError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.workers is not None and self.engine_config is not None:
            raise ServiceError("pass either workers or engine_config, not both")
        if self.workers is not None and self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")


class ServiceMetrics:
    """Service-scoped metrics, same pattern as the engine's RunMetrics.

    Counts into an owned :class:`MetricsRegistry`;
    :meth:`publish` folds it into the process-wide registry when the
    service closes, and :meth:`ServiceStats.from_metrics` freezes the
    public snapshot.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.requests = reg.counter(
            keys.SERVICE_REQUESTS_TOTAL, "Requests accepted by submit()")
        self.options = reg.counter(
            keys.SERVICE_OPTIONS_TOTAL, "Options across accepted requests")
        self.flushes = reg.counter(
            keys.SERVICE_FLUSHES_TOTAL, "Coalesced engine flushes executed")
        self.flush_full = reg.counter(
            keys.SERVICE_FLUSH_FULL_TOTAL, "Flushes triggered by max_batch")
        self.flush_deadline = reg.counter(
            keys.SERVICE_FLUSH_DEADLINE_TOTAL,
            "Flushes triggered by the max_wait_ms deadline")
        self.flush_drain = reg.counter(
            keys.SERVICE_FLUSH_DRAIN_TOTAL,
            "Flushes triggered by close() or drain()")
        self.cache_hits = reg.counter(
            keys.SERVICE_CACHE_HITS_TOTAL,
            "Requests answered from the result cache")
        self.cache_misses = reg.counter(
            keys.SERVICE_CACHE_MISSES_TOTAL,
            "Requests that had to be computed")
        self.cache_evictions = reg.counter(
            keys.SERVICE_CACHE_EVICTIONS_TOTAL,
            "Entries evicted to stay inside cache_bytes")
        self.inflight_joins = reg.counter(
            keys.SERVICE_INFLIGHT_JOINS_TOTAL,
            "Requests that joined an identical in-flight computation")
        self.rejected = reg.counter(
            keys.SERVICE_REJECTED_TOTAL,
            "Submits refused with ServiceOverloadedError")
        self.deadline_expired = reg.counter(
            keys.SERVICE_DEADLINE_EXPIRED_TOTAL,
            "Futures failed with DeadlineExceededError")
        self.shed = reg.counter(
            keys.SERVICE_SHED_TOTAL,
            "Queued normal-priority entries shed to admit high-priority "
            "work")
        self.cancelled = reg.counter(
            keys.SERVICE_CANCELLED_TOTAL,
            "Requests cancelled by their caller before flushing")
        self.engine_restarts = reg.counter(
            keys.SERVICE_ENGINE_RESTARTS_TOTAL,
            "Wedged shared engines replaced by the supervisor")
        self.health_transitions = reg.counter(
            keys.SERVICE_HEALTH_TRANSITIONS_TOTAL,
            "Health state-machine transitions")
        self.cache_bytes = reg.gauge(
            keys.SERVICE_CACHE_BYTES, "Result-cache payload bytes in use")
        self.queue_depth = reg.gauge(
            keys.SERVICE_QUEUE_DEPTH, "Admission-queue depth after the last "
            "enqueue/dequeue")
        self.health_state = reg.gauge(
            keys.SERVICE_HEALTH_STATE,
            "Service health (0 healthy, 1 degraded, 2 unhealthy)")
        self.wait = reg.histogram(
            keys.SERVICE_WAIT_SECONDS,
            "Per-request time from submit to flush start",
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.05, 0.1, 1.0))
        self.flush_options = reg.histogram(
            keys.SERVICE_FLUSH_OPTIONS,
            "Merged batch size per flush, in options",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024))
        for handle in (self.requests, self.options, self.flushes,
                       self.flush_full, self.flush_deadline,
                       self.flush_drain, self.cache_hits, self.cache_misses,
                       self.cache_evictions, self.inflight_joins,
                       self.rejected, self.deadline_expired, self.shed,
                       self.cancelled, self.engine_restarts,
                       self.health_transitions):
            handle.inc(0.0)
        self.cache_bytes.set(0.0)
        self.queue_depth.set(0.0)
        self.health_state.set(0.0)

    def publish(self) -> None:
        """Merge this service's registry into the process-wide one."""
        get_registry().merge(self.registry)


@dataclass(frozen=True)
class ServiceStats:
    """What one :class:`PricingService` did over its lifetime.

    Snapshot of the service registry under the stable
    ``repro-service-stats/v5`` schema
    (:data:`repro.obs.keys.SERVICE_STATS_KEYS`; documented in
    ``docs/stats_schema.md``).  v5 appends the robustness keys —
    ``deadline_expired``/``shed``/``cancelled``/``engine_restarts``/
    ``health_transitions``/``health`` — after the v3 set, which is
    unchanged in name, type and order.
    """

    requests: int = 0
    options: int = 0
    flushes: int = 0
    flush_full: int = 0
    flush_deadline: int = 0
    flush_drain: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_bytes: int = 0
    inflight_joins: int = 0
    rejected: int = 0
    mean_wait_s: float = 0.0
    mean_flush_options: float = 0.0
    deadline_expired: int = 0
    shed: int = 0
    cancelled: int = 0
    engine_restarts: int = 0
    health_transitions: int = 0
    health: str = HealthState.HEALTHY.value

    @classmethod
    def from_metrics(cls, metrics: ServiceMetrics,
                     health: str = HealthState.HEALTHY.value,
                     ) -> "ServiceStats":
        registry = metrics.registry
        counts = {
            stat: int(registry.value(metric))
            for stat, metric in keys.SERVICE_STATS_TO_METRIC.items()
        }
        wait = metrics.wait
        flush_options = metrics.flush_options
        return cls(
            mean_wait_s=(wait.sum / wait.count) if wait.count else 0.0,
            mean_flush_options=((flush_options.sum / flush_options.count)
                                if flush_options.count else 0.0),
            health=health,
            **counts,
        )

    @property
    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any lookup."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot in :data:`SERVICE_STATS_KEYS` order."""
        return {key: getattr(self, key) for key in keys.SERVICE_STATS_KEYS}

    def describe(self) -> str:
        """One-line ``key=value`` summary in canonical key order."""
        parts = []
        for key, value in self.as_dict().items():
            parts.append(f"{key}={value:.6g}" if isinstance(value, float)
                         else f"{key}={value}")
        return " ".join(parts)


@dataclass
class _Pending:
    """One admitted request waiting in the queue / a bucket.

    ``deadline`` is the absolute monotonic instant the caller's
    ``deadline_ms`` budget runs out (``None`` = wait forever).
    """

    request: PricingRequest
    future: Future
    key: str
    enqueued: float
    deadline: "float | None" = None


@dataclass
class _Bucket:
    """Requests with one batch_key accumulating toward a flush."""

    deadline: float
    entries: "list[_Pending]" = field(default_factory=list)
    n_options: int = 0


class PricingService:
    """Dynamic-batching front end over shared :class:`PricingEngine`\\ s.

    Thread-safe: any number of caller threads may :meth:`submit`
    concurrently; one internal coalescer thread owns batching and
    engine execution, so results are as deterministic as the engine
    itself (bitwise, in fact — see the module docstring).

    Use as a context manager or call :meth:`close` — it drains queued
    requests, flushes every partial bucket, closes the engines the
    service owns and publishes the service metrics::

        with PricingService(ServiceConfig(max_batch=512)) as service:
            futures = [service.submit(req) for req in requests]
            results = [f.result() for f in futures]

    :param config: a :class:`ServiceConfig` (default-constructed when
        ``None``).
    :param tracer: optional :class:`repro.obs.trace.Tracer`; records
        ``service.enqueue`` and ``service.flush`` (execute/scatter)
        spans, and is also handed to the engines so their
        run/group/chunk spans land in the same trace.
    """

    def __init__(self, config: "ServiceConfig | None" = None, *,
                 tracer=None):
        self.config = config if config is not None else ServiceConfig()
        self._tracer = as_tracer(tracer)
        self.metrics = ServiceMetrics()
        # A chaos plan injects silent cache corruption, so the cache
        # must verify; production services skip the checksum cost.
        self._cache = ResultCache(self.config.cache_bytes,
                                  verify=self.config.chaos is not None)
        self._queue = _AdmissionQueue(self.config.max_queue,
                                      depth_gauge=self.metrics.queue_depth)
        self._lock = threading.Lock()
        self._inflight: "dict[str, list[_Pending]]" = {}
        self._engines: "dict[tuple, PricingEngine]" = {}
        self._health = HealthMonitor(self.config.health)
        self._health_transitions_seen = 0
        self._chaos = (ChaosInjector(self.config.chaos)
                       if self.config.chaos is not None else None)
        self._closed = False
        self._final_stats: "ServiceStats | None" = None
        self._max_wait_s = self.config.max_wait_ms / 1000.0
        self._engine_config = self.config.engine_config
        if self.config.workers is not None:
            self._engine_config = EngineConfig(workers=self.config.workers)
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service-coalescer",
                                        daemon=True)
        self._thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, request: PricingRequest) -> "Future[ServiceResult]":
        """Admit one request; returns a future of :class:`ServiceResult`.

        Resolution order: content-cache hit (immediate) → join of an
        identical in-flight request (shares that computation) → the
        bounded queue (coalesced and flushed by the service thread).

        A full queue rejects normal-priority submits with
        :class:`ServiceOverloadedError`; a high-priority submit first
        tries to *shed* the oldest queued normal-priority entry (whose
        future then carries the overload error) and is only rejected
        when there is nothing left to shed.

        :raises ServiceError: the service is closed, or ``request`` is
            not a :class:`PricingRequest`.
        :raises ServiceOverloadedError: the admission queue is full.
        """
        if not isinstance(request, PricingRequest):
            raise ServiceError(
                f"submit() takes a PricingRequest, got "
                f"{type(request).__name__}")
        if self._closed:
            raise ServiceError("this PricingService is closed")
        span = self._tracer.start_span(
            "service.enqueue", "request", task=request.task,
            kernel=request.kernel, options=len(request))
        self.metrics.requests.inc()
        self.metrics.options.inc(float(len(request)))
        key = request_key(request)
        now = time.monotonic()
        deadline = (now + request.deadline_ms / 1000.0
                    if request.deadline_ms is not None else None)
        future: "Future[ServiceResult]" = Future()
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self.metrics.cache_hits.inc()
                span.set(outcome="cache_hit").end()
                future.set_result(self._entry_result(request, entry))
                return future
            followers = self._inflight.get(key)
            if followers is not None:
                followers.append(_Pending(request, future, key,
                                          now, deadline))
                self.metrics.inflight_joins.inc()
                span.set(outcome="inflight_join").end()
                return future
            self._inflight[key] = []
        pending = _Pending(request, future, key, now, deadline)
        try:
            shed = self._queue.put(pending)
        except queue.Full:
            with self._lock:
                orphans = self._inflight.pop(key, None) or []
            self.metrics.rejected.inc()
            span.set(outcome="rejected").end()
            detail = ("no normal-priority entries left to shed"
                      if request.priority == "high" else
                      "back off and retry, shed load, or raise "
                      "ServiceConfig.max_queue")
            overloaded = ServiceOverloadedError(
                f"admission queue is full ({self.config.max_queue} "
                f"requests); {detail}")
            # Followers that joined this key while the put was racing
            # the rejection would otherwise wait forever.
            for orphan in orphans:
                if not orphan.future.done():
                    orphan.future.set_exception(overloaded)
            raise overloaded from None
        for victim in shed:
            self.metrics.shed.inc()
            span.annotate("shed a normal-priority entry")
            self._fail(victim, ServiceOverloadedError(
                "shed from the admission queue to admit high-priority "
                "work under overload"))
        self.metrics.cache_misses.inc()
        span.set(outcome="queued").end()
        return future

    # -- results -----------------------------------------------------------

    def _entry_result(self, request: PricingRequest,
                      entry: CacheEntry) -> ServiceResult:
        columns = dict.fromkeys(_GREEKS_COLUMNS)
        if entry.greeks is not None:
            columns = dict(zip(_GREEKS_COLUMNS, entry.greeks))
        return ServiceResult(prices=entry.prices, route="service",
                             cache_hit=True, batch_options=0, wait_s=0.0,
                             **columns)

    def _resolve(self, pending: _Pending, result: ServiceResult) -> None:
        """Apply the caller's ``strict`` flag and resolve one future."""
        future = pending.future
        claimed_at_flush = future.running()
        if not claimed_at_flush:
            # A follower (never claimed at flush time): claim it now so
            # a racing caller-side cancel() is honoured atomically.
            if not future.set_running_or_notify_cancel():
                self.metrics.cancelled.inc()
                return
        if (pending.deadline is not None
                and time.monotonic() > pending.deadline):
            # Symmetric post-flush enforcement: the deadline bounds the
            # flush's per-chunk timeout, but a serial engine (or a
            # flush finishing just late) can still deliver after the
            # budget — primaries and followers alike get the error
            # they asked for instead of a result they stopped waiting
            # on.
            self.metrics.deadline_expired.inc()
            where = ("while its flush was executing" if claimed_at_flush
                     else "before the joined in-flight computation "
                          "finished")
            future.set_exception(DeadlineExceededError(
                f"deadline of {pending.request.deadline_ms:g} ms "
                f"expired {where}"))
            return
        if pending.request.strict and result.failures:
            try:
                raise_first_failure(result.failures)
            except Exception as exc:  # noqa: BLE001 - re-raised via future
                future.set_exception(exc)
                return
        future.set_result(result)

    def _settle(self, pending: _Pending, result: ServiceResult) -> None:
        """Resolve a primary plus every follower that joined its key.

        Clean results (no failures) are admitted to the content cache
        first, so the next identical request is a pure hit.
        """
        if not result.failures:
            greeks = None
            if pending.request.task == "greeks":
                greeks = tuple(CacheEntry.freeze(getattr(result, column))
                               for column in _GREEKS_COLUMNS)
            entry = CacheEntry(prices=CacheEntry.freeze(result.prices),
                               greeks=greeks)
            evicted = self._cache.put(pending.key, entry)
            if evicted:
                self.metrics.cache_evictions.inc(float(evicted))
            if self._chaos is not None:
                self._chaos.on_cache_store(self._cache, entry)
            self.metrics.cache_bytes.set(float(self._cache.bytes_used))
        with self._lock:
            followers = self._inflight.pop(pending.key, [])
        self._resolve(pending, result)
        for follower in followers:
            self._resolve(follower, replace(result, cache_hit=True))

    def _fail(self, pending: _Pending, exc: BaseException) -> None:
        with self._lock:
            followers = self._inflight.pop(pending.key, [])
        for target in (pending, *followers):
            if not target.future.done():
                target.future.set_exception(exc)

    # -- deadline / cancellation bookkeeping --------------------------------

    def _promote_follower(self, key: str) -> "_Pending | None":
        """Next live owner of ``key`` after its primary dropped out.

        Pops the oldest in-flight follower to become the new primary;
        when none is waiting, the key is retired so an identical later
        submit starts a fresh computation.
        """
        with self._lock:
            followers = self._inflight.get(key)
            if followers:
                return followers.pop(0)
            self._inflight.pop(key, None)
        return None

    def _expire(self, pending: _Pending, where: str) -> None:
        self.metrics.deadline_expired.inc()
        if not pending.future.done():
            elapsed_ms = (time.monotonic() - pending.enqueued) * 1e3
            pending.future.set_exception(DeadlineExceededError(
                f"deadline of {pending.request.deadline_ms:g} ms expired "
                f"after {elapsed_ms:.1f} ms {where}"))

    def _claim(self, pending: "_Pending | None",
               now: float, where: str) -> "_Pending | None":
        """Resolve who actually owns a queue/bucket slot right now.

        Walks the primary-then-followers chain: an entry whose
        deadline has expired fails with
        :class:`DeadlineExceededError` (before any engine work — the
        deadline contract), an entry whose future was cancelled is
        dropped, and in either case the oldest waiting follower is
        promoted.  The returned entry has been *claimed*
        (``set_running_or_notify_cancel``), so it can no longer be
        cancelled out from under the flush.
        """
        while pending is not None:
            if pending.deadline is not None and pending.deadline <= now:
                self._expire(pending, where)
                pending = self._promote_follower(pending.key)
                continue
            if not pending.future.set_running_or_notify_cancel():
                self.metrics.cancelled.inc()
                pending = self._promote_follower(pending.key)
                continue
            return pending
        return None

    # -- the coalescer thread ----------------------------------------------

    def _run(self) -> None:
        buckets: "dict[tuple, _Bucket]" = {}
        while True:
            timeout = None
            if buckets:
                deadline = min(b.deadline for b in buckets.values())
                timeout = max(0.0, deadline - time.monotonic())
            try:
                items = [self._queue.get(timeout=timeout)]
            except queue.Empty:
                items = []
            # Drain the whole backlog before looking at deadlines: a
            # request that queued up while a flush was executing has
            # "used up" its wait in the queue, and charging that wait
            # against its bucket's deadline would flush post-backlog
            # buckets one or two requests at a time — the opposite of
            # coalescing.  Backlog first, deadlines after.
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            closing = False
            drains: "list[_DrainToken]" = []
            for item in items:
                if item is _CLOSE:
                    closing = True
                    continue
                if isinstance(item, _DrainToken):
                    drains.append(item)
                    continue
                now = time.monotonic()
                # In-queue expiry/cancellation is settled here, before
                # the entry costs a bucket slot or any engine work;
                # promoted followers are re-checked the same way.
                while item is not None:
                    if item.future.cancelled():
                        self.metrics.cancelled.inc()
                        item = self._promote_follower(item.key)
                    elif (item.deadline is not None
                            and item.deadline <= now):
                        self._expire(item, "in the admission queue")
                        item = self._promote_follower(item.key)
                    else:
                        break
                if item is None:
                    continue
                bkey = item.request.batch_key
                bucket = buckets.get(bkey)
                if bucket is None:
                    bucket = buckets[bkey] = _Bucket(
                        deadline=now + self._max_wait_s)
                bucket.entries.append(item)
                bucket.n_options += len(item.request)
                if item.deadline is not None:
                    # A tight deadline pulls the whole bucket forward:
                    # flushing early beats failing the request.
                    bucket.deadline = min(bucket.deadline, item.deadline)
                if bucket.n_options >= self.config.max_batch:
                    del buckets[bkey]
                    self._flush(bucket, "full")
            if closing or drains:
                for bkey in list(buckets):
                    self._flush(buckets.pop(bkey), "drain")
                for token in drains:
                    token.done.set()
            if closing:
                return
            now = time.monotonic()
            for bkey in [k for k, b in buckets.items() if b.deadline <= now]:
                self._flush(buckets.pop(bkey), "deadline")

    def _merge(self, entries: "list[_Pending]") -> PricingRequest:
        """One engine-shaped request covering every bucket entry.

        Entries share a ``batch_key``, so kernel/precision/family/task
        (and greeks bumps) agree; options are concatenated and depths
        carried per option (``group_stream`` regroups heterogeneous
        depths inside the run).  Always ``strict=False`` — failures
        must come back as records to be scoped per request.
        """
        first = entries[0].request
        options: "list" = []
        steps: "list[int]" = []
        for pending in entries:
            options.extend(pending.request.options)
            steps.extend(pending.request.steps_per_option())
        steps_spec: "int | tuple[int, ...]" = (
            steps[0] if len(set(steps)) == 1 else tuple(steps))
        return PricingRequest(
            options=tuple(options), steps=steps_spec, kernel=first.kernel,
            precision=first.precision, family=first.family, task=first.task,
            strict=False, backend=first.backend,
            bump_vol=first.bump_vol, bump_rate=first.bump_rate)

    @staticmethod
    def _engine_key(request: PricingRequest) -> tuple:
        return (request.kernel, request.precision, request.family.value,
                request.backend)

    def _engine_for(self, request: PricingRequest) -> PricingEngine:
        key = self._engine_key(request)
        engine = self._engines.get(key)
        if engine is None:
            config = self._engine_config
            if request.backend != "auto":
                config = replace(config if config is not None
                                 else EngineConfig(),
                                 backend=request.backend)
            engine = PricingEngine(
                kernel=request.kernel,
                profile=_engine_profile(request.precision),
                family=request.family, config=config,
                faults=self.config.faults,
                tracer=self._tracer if self._tracer.enabled else None)
            self._engines[key] = engine
        return engine

    def _flush(self, bucket: _Bucket, reason: str) -> None:
        flush_start = time.monotonic()
        # Claim every entry up front: in-bucket expiry and caller-side
        # cancellation settle here (promoting in-flight followers), and
        # a claimed future can no longer be cancelled mid-flush.
        entries: "list[_Pending]" = []
        for pending in bucket.entries:
            claimed = self._claim(pending, flush_start,
                                  "in a coalescing bucket")
            if claimed is not None:
                entries.append(claimed)
        if not entries:
            return
        merged = self._merge(entries)
        # The tightest live deadline bounds how long any chunk of this
        # flush may hang (engine-side chunk timeout).
        deadline_s = None
        budgets = [p.deadline for p in entries if p.deadline is not None]
        if budgets:
            deadline_s = max(min(budgets) - flush_start, 1e-3)
        span = self._tracer.start_span(
            f"service.flush[{merged.task}:{merged.kernel}]", "flush",
            reason=reason, requests=len(entries), options=len(merged))
        self.metrics.flushes.inc()
        getattr(self.metrics, f"flush_{reason}").inc()
        self.metrics.flush_options.observe(float(len(merged)))
        try:
            engine = self._engine_for(merged)
            if self._chaos is not None:
                self._chaos.on_flush()
            execute = span.child("execute", "engine", options=len(merged))
            try:
                result = run_request(engine, merged, deadline_s=deadline_s)
            finally:
                execute.end()
        except Exception as exc:
            # A flush-level failure (not per-option quarantine — the
            # engine turns those into records) must not take out every
            # coalesced neighbour: re-run each request on its own so
            # only the guilty one carries the error.
            span.annotate("flush failed; re-running requests individually",
                          error=type(exc).__name__)
            self._note_flush(failed=True)
            if isinstance(exc, EngineError):
                # The engine itself raised (closed, wedged, backend
                # gone) — a per-request re-run on the same engine
                # would fail the same way; let the supervisor swap it.
                self._supervise(merged, f"flush-level {type(exc).__name__}")
            self._flush_individually(entries, flush_start, span)
            span.end()
            return
        stats = result.stats
        degraded = bool(stats is not None and (stats.degraded_to_serial
                                               or stats.pool_rebuilds))
        self._note_flush(failed=False, degraded=degraded)
        wedged = self._chaos is not None and self._chaos.wedge_engine()
        if degraded or wedged:
            self._supervise(merged, "chaos-injected wedge" if wedged
                            else "engine degraded to serial")
        scatter = span.child("scatter", "scatter", requests=len(entries))
        lo = 0
        for pending in entries:
            hi = lo + len(pending.request)
            self._settle(pending, self._slice_result(
                pending, result, lo, hi, len(merged), flush_start))
            lo = hi
        scatter.end()
        span.end()

    def _note_flush(self, *, failed: bool, degraded: bool = False) -> None:
        self._health.record_flush(failed=failed, degraded=degraded)
        self._sync_health()

    def _sync_health(self) -> None:
        """Mirror the health monitor into the service metrics."""
        transitions = self._health.transitions
        delta = transitions - self._health_transitions_seen
        if delta > 0:
            self.metrics.health_transitions.inc(float(delta))
            self._health_transitions_seen = transitions
        self.metrics.health_state.set(
            float(HEALTH_STATE_LEVEL[self._health.state]))

    def _supervise(self, request: PricingRequest, reason: str) -> None:
        """Replace the engine behind ``request`` if the budget allows.

        The monitor meters restarts (bounded per engine key, with
        exponential backoff); an exhausted budget pins the service
        ``UNHEALTHY`` and the wedged engine is kept — thrashing
        rebuilds is worse than honest unreadiness.  The next flush
        needing the engine rebuilds it lazily via ``_engine_for``.
        """
        key = self._engine_key(request)
        decision = self._health.request_restart(key)
        self._sync_health()
        if not decision.allowed:
            return
        engine = self._engines.pop(key, None)
        if engine is not None:
            engine.close()
        self.metrics.engine_restarts.inc()
        self._tracer.start_span(
            "service.engine_restart", "supervisor", reason=reason,
            backend=key[3], backoff_s=decision.backoff_s).end()
        if decision.backoff_s > 0:
            time.sleep(decision.backoff_s)

    def _slice_result(self, pending: _Pending, result, lo: int, hi: int,
                      batch_options: int, flush_start: float) -> ServiceResult:
        wait_s = max(0.0, flush_start - pending.enqueued)
        self.metrics.wait.observe(wait_s)
        failures = tuple(replace(record, index=record.index - lo)
                         for record in result.failures
                         if lo <= record.index < hi)
        columns = dict.fromkeys(_GREEKS_COLUMNS)
        if pending.request.task == "greeks":
            columns = {column: getattr(result, column)[lo:hi]
                       for column in _GREEKS_COLUMNS}
        return ServiceResult(
            prices=result.prices[lo:hi], route="service",
            stats=result.stats, failures=failures, cache_hit=False,
            batch_options=batch_options, wait_s=wait_s, **columns)

    def _flush_individually(self, entries: "list[_Pending]",
                            flush_start: float, span) -> None:
        for pending in entries:
            single = replace(pending.request, strict=False)
            deadline_s = None
            if pending.deadline is not None:
                deadline_s = max(pending.deadline - time.monotonic(), 1e-3)
            try:
                engine = self._engine_for(single)
                result = run_request(engine, single, deadline_s=deadline_s)
            except Exception as exc:  # noqa: BLE001 - scoped to this request
                self._fail(pending, exc)
                continue
            self._settle(pending, self._slice_result(
                pending, result, 0, len(single), len(single), flush_start))

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def ready(self) -> bool:
        """Readiness probe: open and not ``UNHEALTHY``.

        The shape a load balancer wants — ``DEGRADED`` still serves
        (prefer other replicas), ``UNHEALTHY`` or closed does not.
        """
        return (not self._closed
                and self._health.state is not HealthState.UNHEALTHY)

    def health(self) -> HealthReport:
        """Point-in-time health report (state, reason, counters)."""
        return self._health.report()

    def drain(self, timeout_s: "float | None" = None) -> bool:
        """Quiesce: flush everything admitted so far, bounded in time.

        Blocks until the coalescer has bucketed and flushed every
        request admitted before the call (later submits may ride
        along), or ``timeout_s`` elapsed — ``True`` when fully
        drained, ``False`` on timeout with work still in flight.  The
        service stays open either way; ``drain()`` then :meth:`close`
        is the graceful-shutdown sequence, and a ``False`` return is
        the signal to escalate (close anyway, or wait longer).
        Idempotent and safe from any thread; a closed service is
        already drained.
        """
        if self._closed or not self._thread.is_alive():
            return True
        token = _DrainToken()
        self._queue.put_control(token)
        return token.done.wait(timeout_s)

    def stats(self) -> ServiceStats:
        """A live snapshot (the final one is returned by :meth:`close`)."""
        if self._final_stats is not None:
            return self._final_stats
        return ServiceStats.from_metrics(self.metrics,
                                         health=self._health.state.value)

    def close(self) -> ServiceStats:
        """Drain, flush, shut down; returns the final stats snapshot.

        New submits are rejected immediately; everything already
        admitted is flushed (``flush_drain``) so no future is left
        unresolved.  Engines the service owns are closed and the
        service metrics merge into the process-wide registry.
        Idempotent — later calls return the same snapshot.
        """
        with self._lock:
            if self._closed:
                if self._final_stats is not None:
                    return self._final_stats
            self._closed = True
        if self._thread.is_alive():
            self._queue.put_control(_CLOSE)
            self._thread.join()
        # Reject anything that raced past the closed check after the
        # sentinel (the coalescer has exited and will never see it).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _DrainToken):
                item.done.set()  # drained-by-close: nothing is queued
            elif item is not _CLOSE:
                self._fail(item, ServiceError(
                    "this PricingService closed before the request ran"))
        for engine in self._engines.values():
            engine.close()
        if self._final_stats is None:
            self._final_stats = ServiceStats.from_metrics(
                self.metrics, health=self._health.state.value)
            self.metrics.publish()
        return self._final_stats

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
