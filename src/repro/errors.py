"""Exception hierarchy shared by all repro subpackages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subpackages
define more specific classes here rather than locally so that error
types never create import cycles between the finance, OpenCL-simulator
and HLS layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class FinanceError(ReproError):
    """Invalid financial instrument, market data or solver failure."""


class ConvergenceError(FinanceError):
    """An iterative solver (e.g. implied volatility) failed to converge."""


class OpenCLError(ReproError):
    """Base class for errors raised by the OpenCL platform simulator.

    Mirrors the role of non-``CL_SUCCESS`` status codes in the real CL
    API; :attr:`code` carries the symbolic status name.
    """

    #: Symbolic CL status name, e.g. ``"CL_INVALID_KERNEL_ARGS"``.
    code = "CL_ERROR"

    def __init__(self, message: str = "", code: str | None = None):
        super().__init__(message or self.code)
        if code is not None:
            self.code = code


class InvalidArgumentError(OpenCLError):
    """A kernel was launched with unset or ill-typed arguments."""

    code = "CL_INVALID_KERNEL_ARGS"


class InvalidWorkGroupError(OpenCLError):
    """NDRange/work-group shape violates a device or API constraint."""

    code = "CL_INVALID_WORK_GROUP_SIZE"


class MemoryError_(OpenCLError):
    """Out-of-bounds buffer access or allocation beyond device limits."""

    code = "CL_MEM_OBJECT_ALLOCATION_FAILURE"


class BarrierDivergenceError(OpenCLError):
    """Work-items of one work-group did not all reach the same barrier."""

    code = "CL_BARRIER_DIVERGENCE"


class TransportFaultError(OpenCLError):
    """A (simulated) host<->device transfer or kernel launch failed.

    Real runtimes surface these conditions as ``CL_OUT_OF_RESOURCES``
    or ``CL_DEVICE_NOT_AVAILABLE``; the fault-injection layer raises
    this type so host programs can distinguish *recoverable* transport
    errors (worth a retry, per the data-centre FPGA deployment
    literature) from programming errors, which stay fatal.
    """

    code = "CL_OUT_OF_RESOURCES"


class EngineError(ReproError):
    """Base class for batched-pricing-engine failures.

    Chunk-level failures inside :class:`~repro.engine.PricingEngine`
    (worker exceptions, deadline overruns, crashed processes, poison
    inputs) are normalised to this taxonomy so callers never see a bare
    ``RuntimeError`` or a ``concurrent.futures`` internal leak through
    the API boundary.
    """


class ChunkTimeoutError(EngineError):
    """A chunk exceeded its wall-clock deadline (``chunk_timeout_s``)."""


class WorkerCrashError(EngineError):
    """A worker process died mid-chunk (e.g. ``BrokenProcessPool``)."""


class PoisonChunkError(EngineError):
    """A chunk kept failing (or produced non-finite prices) after retries."""


class BackendUnavailableError(EngineError):
    """A requested :class:`~repro.backends.KernelBackend` cannot run here.

    Raised when a backend's toolchain is missing (no ``numba`` import,
    no working C compiler) or its compilation fails.  ``auto``
    resolution catches this and falls through to the next candidate,
    ending at the always-available NumPy backend; an *explicitly*
    requested backend propagates it so a pinned configuration never
    silently runs on different code.
    """


class ServiceError(ReproError):
    """Base class for pricing-service failures.

    Raised by :class:`~repro.service.PricingService` for request-level
    conditions that are the *caller's* to handle — submitting to a
    closed service, malformed requests — as opposed to per-option
    pricing failures, which travel inside
    :class:`~repro.api.ServiceResult.failures` exactly like the
    engine's :class:`~repro.engine.reliability.FailureRecord` contract.
    """


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full (backpressure).

    The bounded request queue protects the coalescer from unbounded
    memory growth under overload; callers should back off and retry,
    shed load, or raise ``ServiceConfig.max_queue``.  Under overload
    the service also *sheds*: admitting a high-priority request may
    evict the oldest normal-priority entry from the queue, whose
    future then fails with this error.
    """


class DeadlineExceededError(ServiceError):
    """A request's ``deadline_ms`` expired before its result was ready.

    Raised on the request's future when the deadline passes while the
    request is still queued or bucketed (the engine never runs it), or
    when a joined in-flight computation finishes past the deadline.
    A deadline that is still live at flush time bounds the engine's
    per-chunk timeout for the flush that carries the request.
    """


class ChaosInjectedError(ServiceError):
    """A failure injected by the service chaos harness.

    Only ever raised when a :class:`~repro.service.chaos.ChaosPlan` is
    installed on the service under test; production configurations
    never see it.  Typed under :class:`ServiceError` so the service's
    per-request failure scoping recovers from it exactly like a real
    flush-level fault.
    """


class ShardCrashError(ServiceError):
    """A serving-tier shard died (or was wedged) while holding requests.

    Raised on the futures of every request that was in flight on the
    shard when its worker process exited, stopped answering health
    pings, or was replaced by the supervisor.  The request itself may
    have been perfectly valid — callers should retry against the
    (restarted) server, exactly like any partial-outage error.
    """


class StreamError(ReproError):
    """Invalid streaming-risk configuration or tick data.

    Raised for malformed tick records (unknown field, non-finite
    value, unreadable tick file), ticks addressed to instruments the
    :class:`~repro.stream.PositionBook` does not hold, and aggregate
    queries against a book that has never been priced.
    """


class SweepError(ReproError):
    """Invalid scenario-sweep specification or run-store state.

    Raised by :mod:`repro.sweep` for malformed :class:`SweepSpec`
    documents (unknown axis, unregistered constraint, wrong schema
    tag), corrupt run-store files (an undecodable row that is not the
    crash-truncated final line), and spec/store mismatches (resuming a
    store against a spec with a different fingerprint).  Per-cell
    *pricing* failures are not this type — they keep their own engine
    and service error codes inside the failed row.
    """


class HLSError(ReproError):
    """Base class for HLS compiler-model errors."""


class FitError(HLSError):
    """The design does not fit on the selected FPGA part."""


class CompileOptionError(HLSError):
    """Inconsistent compiler options (e.g. SIMD width not a power of two)."""


class DeviceModelError(ReproError):
    """Invalid device-model configuration or query."""


# ---------------------------------------------------------------------------
# The wire error table — the serving tier's error contract.
#
# Every error the service/engine stack can hand a remote caller has one
# stable wire code (what external clients switch on; never renamed once
# published) and one HTTP status (what load balancers and generic HTTP
# tooling act on).  ``docs/wire_schema.md`` documents the table;
# ``tests/serve/test_wire.py`` asserts it is total over the serving
# error surface and stable.

#: ``exception class -> (wire code, HTTP status)``, most-derived first.
#: Lookup walks the MRO, so subclasses not listed here inherit their
#: nearest ancestor's code — a *new* error type degrades to a coarse
#: code instead of breaking clients.
WIRE_ERRORS: "dict[type, tuple[str, int]]" = {
    # service-level delivery errors
    ShardCrashError: ("shard_crash", 503),
    ChaosInjectedError: ("chaos_injected", 500),
    DeadlineExceededError: ("deadline_exceeded", 504),
    ServiceOverloadedError: ("overloaded", 503),
    ServiceError: ("service_error", 500),
    # engine-level pricing failures
    BackendUnavailableError: ("backend_unavailable", 501),
    PoisonChunkError: ("poison_chunk", 422),
    WorkerCrashError: ("worker_crash", 500),
    ChunkTimeoutError: ("chunk_timeout", 504),
    EngineError: ("engine_error", 500),
    # simulated-platform and model errors (flow through FailureRecords)
    TransportFaultError: ("transport_fault", 503),
    OpenCLError: ("opencl_error", 500),
    HLSError: ("hls_error", 500),
    DeviceModelError: ("device_model_error", 500),
    # request/content errors
    ConvergenceError: ("no_convergence", 422),
    FinanceError: ("invalid_market_data", 400),
    SweepError: ("sweep_error", 400),
    ReproError: ("bad_request", 400),
}

#: Wire code used for exceptions outside the :class:`ReproError`
#: hierarchy (a bug, not a contract violation by the caller).
INTERNAL_WIRE_CODE = "internal"
INTERNAL_HTTP_STATUS = 500

#: Wire code for a request the caller abandoned (client disconnect /
#: explicit cancel); 499 is the de-facto "client closed request"
#: status (nginx), which no stdlib table names.
CANCELLED_WIRE_CODE = "cancelled"
CANCELLED_HTTP_STATUS = 499


def wire_error(exc: BaseException) -> "tuple[str, int]":
    """The ``(wire code, HTTP status)`` of any exception.

    Walks the exception's MRO through :data:`WIRE_ERRORS`, so every
    :class:`ReproError` subclass maps to its nearest listed ancestor;
    anything else is :data:`INTERNAL_WIRE_CODE`.
    """
    for klass in type(exc).__mro__:
        entry = WIRE_ERRORS.get(klass)
        if entry is not None:
            return entry
    return (INTERNAL_WIRE_CODE, INTERNAL_HTTP_STATUS)


def error_from_wire(code: str, message: str) -> ReproError:
    """Rebuild a typed exception from its wire code (client side).

    Returns the *most derived* exception class registered under
    ``code`` (the table is ordered most-derived first), so a client
    catching :class:`DeadlineExceededError` behaves identically
    whether the deadline expired locally or across the network.
    Unknown codes come back as plain :class:`ReproError` — a newer
    server must not crash an older client.
    """
    for klass, (wire_code, _status) in WIRE_ERRORS.items():
        if wire_code == code:
            return klass(message)
    return ReproError(f"[{code}] {message}")
